#!/usr/bin/env python3
"""Active measurement study (paper §4 / Table 1).

Crawls the synthetic "Alexa" top sites with seven instrumented browser
profiles — Vanilla, three Adblock Plus configurations and three
Ghostery configurations — captures each browser's traffic, then runs
the passive classification over the captures.  Prints the Table 1
analogue and the Fig 2 ad-ratio separation that motivates the paper's
5% detection threshold.

    python examples/active_measurement.py [n_sites]
"""

from __future__ import annotations

import random
import sys

from repro.analysis.report import render_boxplot_row, render_table
from repro.browser import Crawler
from repro.core import AdClassificationPipeline
from repro.filterlist import build_lists
from repro.filterlist.lists import EASYLIST, EASYPRIVACY
from repro.web import Ecosystem, EcosystemConfig


def main(n_sites: int = 200) -> None:
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=max(300, n_sites)))
    lists = build_lists(ecosystem.list_spec())
    pipeline = AdClassificationPipeline(lists)

    print(f"crawling top-{n_sites} sites under 7 browser profiles ...")
    crawler = Crawler(ecosystem, lists, seed=4)
    results = crawler.crawl(n_sites=n_sites)

    rows = []
    for name in ("Vanilla", "AdBP-Pa", "AdBP-Ad", "AdBP-Pr",
                 "Ghostery-Pa", "Ghostery-Ad", "Ghostery-Pr"):
        result = results[name]
        entries = pipeline.process(result.records.http)
        easylist = sum(
            1 for e in entries
            if (e.blacklist_name or "").startswith(EASYLIST)
            or (e.is_whitelisted and not e.classification.is_blacklisted)
        )
        easyprivacy = sum(1 for e in entries if e.blacklist_name == EASYPRIVACY)
        rows.append(
            {
                "Browser Mode": name,
                "#HTTPS": result.https_connections,
                "#HTTP": result.http_requests,
                "#ELhits": easylist,
                "#EPhits": easyprivacy,
            }
        )
    print()
    print(render_table(rows, title="Table 1 (reproduction): aggregate crawl results"))

    # Fig 2: ad-ratio spread for 1 / 5 / 10 random page loads.
    rng = random.Random(11)
    box_rows = []
    for loads in (1, 5, 10):
        for name in ("Vanilla", "AdBP-Pa", "Ghostery-Pa"):
            samples = []
            for _ in range(300):
                picked = rng.sample(results[name].visits, loads)
                requests = ads = 0
                for visit in picked:
                    for request in visit.requests:
                        requests += 1
                        ads += request.obj.intent in ("ad", "tracker")
                samples.append(100.0 * ads / max(1, requests))
            box_rows.append(render_boxplot_row(f"{name} @ {loads:2d} loads", samples))
    print(render_table(box_rows, title="Figure 2 (reproduction): % ad requests per config"))
    print("=> with ~10 page loads a 5% threshold separates blockers from non-blockers.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
