#!/usr/bin/env python3
"""Ad-blocker usage study (paper §6, Tables 3 + Figs 3/4).

Simulates the RBN-2 vantage point, identifies active browsers from
(IP, User-Agent) pairs, applies the paper's two indicators — low
EasyList hit ratio and HTTPS connections to Adblock Plus download
servers — and prints the four usage classes plus the §6.3
configuration estimates.  Finally it grades the detector against the
simulator's ground truth (something the paper could not do).

    python examples/adblock_usage_study.py [scale]
"""

from __future__ import annotations

import sys

from repro.analysis.report import render_table
from repro.analysis.usage import ad_ratio_ecdf, usage_table
from repro.core import (
    AdClassificationPipeline,
    acceptable_ads_optout_shares,
    aggregate_users,
    annotate_browsers,
    classify_usage,
    easyprivacy_subscription_shares,
    heavy_hitters,
)
from repro.trace import RBNTraceGenerator, abp_server_ips, easylist_download_clients, rbn2_config
from repro.web import Ecosystem, EcosystemConfig


def main(scale: float = 0.006) -> None:
    print(f"simulating RBN-2 at scale {scale} ...")
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=300))
    generator = RBNTraceGenerator(rbn2_config(scale=scale), ecosystem=ecosystem)
    trace = generator.generate()
    print(f"  {generator.subscribers} households, {len(trace.http)} HTTP requests")

    pipeline = AdClassificationPipeline(generator.lists)
    entries = pipeline.process(trace.http)
    total_ads = sum(1 for entry in entries if entry.is_ad)
    print(f"  ad-related: {total_ads / len(entries):.1%} of requests (paper: 18.89%)")

    stats = aggregate_users(entries)
    active = heavy_hitters(stats)
    annotation = annotate_browsers(active)
    print(
        f"  {len(stats)} (IP, UA) pairs; {len(active)} active (>1K requests); "
        f"{len(annotation.browsers)} annotated browsers "
        f"({len(annotation.desktop)} desktop / {len(annotation.mobile)} mobile)"
    )

    # Fig 4 summary: low-ratio share per family.
    print()
    fig4_rows = [
        {
            "family": series.label,
            "n": len(series.values),
            "% below 5%": f"{100 * series.share_below(5.0):.0f}%",
        }
        for series in ad_ratio_ecdf(annotation.by_family())
    ]
    print(render_table(fig4_rows, title="Figure 4: blocker candidates per browser family"))

    downloads = easylist_download_clients(trace.tls, abp_server_ips(ecosystem))
    print(
        f"households contacting Adblock Plus servers: "
        f"{len(downloads) / generator.subscribers:.1%} (paper: 19.7%)\n"
    )

    usages = classify_usage(list(annotation.browsers.values()), downloads)
    rows = usage_table(usages, total_requests=len(entries), total_ads=total_ads)
    print(render_table(rows, title="Table 3: usage classes (paper: A 46.8/B 15.7/C 22.2/D 15.3)"))

    ep_abp, ep_plain = easyprivacy_subscription_shares(usages, max_hits=10)
    aa_abp, aa_plain = acceptable_ads_optout_shares(usages, max_hits=0)
    print(f"S6.3 EasyPrivacy subscription estimate: {ep_abp:.1%} of likely-ABP users "
          f"(baseline {ep_plain:.1%}; paper 13.1% vs ~0.1%)")
    print(f"S6.3 acceptable-ads opt-out estimate:   {aa_abp:.1%} of likely-ABP users "
          f"(baseline {aa_plain:.1%}; paper <=20%)\n")

    # Grade the detector against ground truth.
    profiles = {
        (household.ip, device.user_agent): device.profile
        for household in generator.households
        for device in household.devices
    }
    true_positive = false_positive = false_negative = 0
    for usage in usages:
        profile = profiles.get(usage.stats.user)
        has_abp = bool(profile and profile.has_abp)
        if usage.likely_adblock and has_abp:
            true_positive += 1
        elif usage.likely_adblock:
            false_positive += 1
        elif has_abp:
            false_negative += 1
    precision = true_positive / max(1, true_positive + false_positive)
    recall = true_positive / max(1, true_positive + false_negative)
    print(f"detector vs ground truth (class C == ABP installed): "
          f"precision {precision:.1%}, recall {recall:.1%}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.006)
