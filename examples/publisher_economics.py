#!/usr/bin/env python3
"""Publisher economics under ad-blocking (paper §11 future work).

Loads the same pages under every browser profile and runs the
revenue-proxy model: what does each blocking configuration cost the
publishers, and how much does the acceptable-ads programme claw back
(and skim)?

    python examples/publisher_economics.py
"""

from __future__ import annotations

import random

from repro.analysis.economics import revenue_report
from repro.analysis.report import render_table
from repro.browser import BrowserEmulator, GhosteryDatabase, STANDARD_PROFILES
from repro.filterlist import build_lists
from repro.web import Ecosystem, EcosystemConfig, build_page


def main(n_pages: int = 200) -> None:
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=200))
    lists = build_lists(ecosystem.list_spec())
    ghostery = GhosteryDatabase.from_ecosystem(ecosystem)

    rng = random.Random(42)
    publishers = [
        p for p in ecosystem.publishers
        if p.ad_networks and not p.ad_free and not p.https_landing
    ]
    pages = [build_page(rng.choice(publishers), ecosystem, rng) for _ in range(n_pages)]
    print(f"rendering {n_pages} page views under {len(STANDARD_PROFILES)} profiles ...\n")

    rows = []
    category_loss: dict[str, float] = {}
    for profile in STANDARD_PROFILES:
        emulator = BrowserEmulator(
            profile, lists,
            ghostery_db=ghostery if profile.ghostery_categories else None,
            rng=random.Random(7),
        )
        visits = [emulator.visit(page, list_update=False) for page in pages]
        report = revenue_report(visits)
        rows.append(
            {
                "profile": profile.name,
                "earned": f"${report.earned:,.2f}",
                "blocked": f"${report.blocked:,.2f}",
                "loss": f"{100 * report.loss_share:.1f}%",
                "AA recovered": f"${report.acceptable_earned:,.2f}",
                "AA fees": f"${report.acceptable_fees:,.2f}",
            }
        )
        if profile.name == "AdBP-Pa":
            category_loss = dict(report.blocked_by_category)

    print(render_table(rows, title="Revenue per profile (identical page views)"))

    loss_rows = [
        {"category": category, "blocked revenue": f"${value:,.2f}"}
        for category, value in sorted(category_loss.items(), key=lambda kv: -kv[1])[:8]
    ]
    print(render_table(loss_rows, title="Who loses when everyone runs AdBP-Paranoia"))
    print("=> the acceptable-ads programme converts a total loss into a fee-sharing")
    print("   arrangement — the economics behind the controversy the paper describes.")


if __name__ == "__main__":
    main()
