#!/usr/bin/env python3
"""Ad infrastructure & real-time bidding (paper §8: Table 5, Fig 7).

Simulates RBN traffic, maps ad-serving IPs to autonomous systems,
finds exclusive ad/tracking servers, and detects real-time bidding
from the gap between the HTTP and TCP handshake times.

    python examples/rtb_detection.py [scale]
"""

from __future__ import annotations

import sys

from repro.analysis.infrastructure import as_table, server_statistics
from repro.analysis.report import render_histogram, render_table
from repro.analysis.rtb import handshake_gaps, rtb_host_contributions
from repro.core import AdClassificationPipeline
from repro.trace import RBNTraceGenerator, rbn2_config
from repro.web import Ecosystem, EcosystemConfig


def main(scale: float = 0.005) -> None:
    print(f"simulating RBN-2 at scale {scale} ...")
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=300))
    generator = RBNTraceGenerator(rbn2_config(scale=scale), ecosystem=ecosystem)
    trace = generator.generate()
    pipeline = AdClassificationPipeline(generator.lists)
    entries = pipeline.process(trace.http)

    # Table 5: ASes serving ads.
    rows = [
        {
            "AS": row.name,
            "%ads reqs": f"{100 * row.share_of_trace_ad_requests:.1f}%",
            "%ads bytes": f"{100 * row.share_of_trace_ad_bytes:.1f}%",
            "ads/all in AS (reqs)": f"{100 * row.ad_request_ratio_within_as:.1f}%",
            "ads/all in AS (bytes)": f"{100 * row.ad_byte_ratio_within_as:.1f}%",
        }
        for row in as_table(entries, ecosystem.asdb)
    ]
    print()
    print(render_table(rows, title="Table 5: ad traffic by AS (top 10)"))

    servers = server_statistics(entries)
    exclusive_count, exclusive_share = servers.exclusive_ad_servers()
    tracking_count, tracking_share = servers.tracking_servers()
    print(f"S8.1: {servers.n_servers} servers; {servers.easylist_servers} serve EasyList "
          f"objects, {servers.easyprivacy_servers} EasyPrivacy, {servers.servers_with_both} both")
    print(f"      exclusive ad servers: {exclusive_count} delivering "
          f"{exclusive_share:.1%} of ads; tracking servers: {tracking_count} "
          f"delivering {tracking_share:.1%} of EP objects")

    # Fig 7: handshake-gap densities.
    analysis = handshake_gaps(entries)
    print(f"\nFig 7: share of requests with back-end delay >= 100 ms — "
          f"ads {analysis.share_above(100, ads=True):.2%} vs "
          f"non-ads {analysis.share_above(100, ads=False):.2%}")
    print(f"       ad-gap density modes at (ms): "
          f"{[round(m, 1) for m in analysis.modes_ms(ads=True)]} (paper: ~1 / ~10 / ~120)")

    density, edges = analysis.density(ads=True, bins=30)
    print()
    print(render_histogram(density, edges,
                           title="ad requests: density of log10(HTTP - TCP handshake, ms)",
                           label=lambda e: f"10^{e:4.1f}ms"))

    ranked = rtb_host_contributions(entries)
    rtb_rows = [
        {"host": host, "share of >=90ms ad gaps": f"{100 * share:.1f}%"}
        for host, share in ranked[:8]
    ]
    print(render_table(rtb_rows, title="Hosts behind the RTB latency mode (S8.2)"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
