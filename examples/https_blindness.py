#!/usr/bin/env python3
"""HTTPS blindness: the methodology's expiry date (paper §10).

The paper's classification only sees port-80 headers.  This example
grows HTTPS adoption in the synthetic web and shows how the passive
vantage point's picture degrades — fewer observable requests, unstable
ad-share estimates — while the methodology itself produces numbers
that *look* fine.  (Historically accurate: HTTPS passed 50% of page
loads within two years of the paper.)

    python examples/https_blindness.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.sensitivity import https_sensitivity
from repro.trace import RBNTraceGenerator, rbn2_config
from repro.web import Ecosystem, EcosystemConfig


def make_generator(https_share: float) -> RBNTraceGenerator:
    ecosystem = Ecosystem.generate(
        EcosystemConfig(n_publishers=120, seed=5, https_landing_share=https_share)
    )
    config = rbn2_config(scale=0.0, seed=9)
    config.population.n_households = 30
    config.duration_s = 4 * 3600.0
    return RBNTraceGenerator(config, ecosystem=ecosystem)


def main() -> None:
    print("sweeping HTTPS adoption (each point regenerates & reclassifies a trace) ...")
    points = https_sensitivity(
        make_generator, https_shares=(0.0, 0.12, 0.3, 0.5, 0.7)
    )
    rows = [
        {
            "HTTPS share": f"{100 * p.https_share:.0f}%",
            "observable HTTP requests": p.observed_requests,
            "measured ad share": f"{100 * p.ad_request_share:.1f}%",
            "likely-ABP share of actives": f"{100 * p.likely_abp_share:.1f}%",
        }
        for p in points
    ]
    print()
    print(render_table(rows, title="What the port-80 vantage point still sees"))
    baseline = points[0].observed_requests
    final = points[-1].observed_requests
    print(f"at 70% HTTPS adoption the vantage point observes only "
          f"{final / baseline:.0%} of the traffic it saw at 0% —")
    print("the methodology never signals its own blindness (S10).")


if __name__ == "__main__":
    main()
