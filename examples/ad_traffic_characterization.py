#!/usr/bin/env python3
"""Ad traffic in the wild (paper §7: Fig 5, Table 4, Fig 6, §7.3).

Simulates the 4-day RBN-1 capture and characterizes the classified ad
traffic: diurnal patterns of the ad-request share, the Content-Type
mix, the characteristic object sizes, and the effect of the
non-intrusive-ads whitelist.

    python examples/ad_traffic_characterization.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.report import render_table
from repro.analysis.traffic import (
    ad_timeseries,
    content_type_table,
    object_size_distributions,
    traffic_summary,
)
from repro.analysis.whitelist import whitelist_summary
from repro.core import AdClassificationPipeline
from repro.filterlist.lists import EASYLIST, EASYPRIVACY
from repro.trace import RBNTraceGenerator, rbn1_config
from repro.web import Ecosystem, EcosystemConfig


def main(scale: float = 0.002) -> None:
    print(f"simulating RBN-1 (4 days) at scale {scale} ...")
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=300))
    generator = RBNTraceGenerator(rbn1_config(scale=scale), ecosystem=ecosystem)
    trace = generator.generate()
    pipeline = AdClassificationPipeline(generator.lists)
    entries = pipeline.process(trace.http)

    summary = traffic_summary(entries)
    print(f"\nS7.1 headline numbers (paper: 17.25% requests / 1.13% bytes):")
    print(f"  ad share of requests: {summary.ad_request_share:.2%}")
    print(f"  ad share of bytes:    {summary.ad_byte_share:.2%}")
    print(f"  by list: EasyList {summary.easylist_share_of_ads:.1%} (paper 55.9%), "
          f"EasyPrivacy {summary.easyprivacy_share_of_ads:.1%} (35.1%), "
          f"non-intrusive {summary.non_intrusive_share_of_ads:.1%}")

    # Fig 5: diurnal share swing.
    series = ad_timeseries(entries)
    shares = np.array(series.share(EASYLIST)) + np.array(series.share(EASYPRIVACY))
    interior = shares[1:-1]
    print(f"\nFig 5: ad-request share swings {interior.min():.1%} .. {interior.max():.1%} "
          f"over the day (paper: 6% .. 12%)")

    rows = [
        {
            "Content-type": row.content_type,
            "Ads Reqs": f"{100 * row.ad_request_share:.1f}%",
            "Ads Bytes": f"{100 * row.ad_byte_share:.1f}%",
            "Non-Ads Reqs": f"{100 * row.nonad_request_share:.1f}%",
            "Non-Ads Bytes": f"{100 * row.nonad_byte_share:.1f}%",
        }
        for row in content_type_table(entries)
    ]
    print()
    print(render_table(rows, title="Table 4: traffic by Content-Type"))

    distribution = object_size_distributions(entries)
    size_rows = []
    for klass in ("image", "text", "video", "app"):
        for is_ad, label in ((True, "ad"), (False, "non-ad")):
            mode = distribution.mode_bytes(is_ad, klass)
            median = distribution.median_bytes(is_ad, klass)
            size_rows.append(
                {
                    "class": klass,
                    "kind": label,
                    "mode": f"{mode:,.0f} B" if mode else "-",
                    "median": f"{median:,.0f} B" if median else "-",
                }
            )
    print(render_table(size_rows, title="Figure 6: characteristic object sizes"))
    print("=> ad images spike at ~43 B (tracking pixels); ad videos are unchunked megabyte spots.")

    wl = whitelist_summary(entries)
    print(f"\nS7.3 whitelist: {wl.whitelisted_share_of_ads:.1%} of ad requests whitelisted "
          f"(paper 9.2%); only {wl.blacklisted_share_of_whitelisted:.1%} of whitelisted "
          f"requests would otherwise be blocked (paper 57.3%)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
