#!/usr/bin/env python3
"""One-shot reproduction report: every headline number in one run.

Generates both traces at a small scale, runs the active crawl, applies
the classification pipeline, and writes a single REPORT.txt covering
each section of the paper with paper-vs-measured values.  A compact
version of what `pytest benchmarks/` does with full assertions.

    python examples/full_reproduction_report.py [output-path]
"""

from __future__ import annotations

import io
import sys

from repro.analysis.report import render_table
from repro.analysis.rtb import handshake_gaps
from repro.analysis.traffic import content_type_table, traffic_summary
from repro.analysis.whitelist import whitelist_summary
from repro.browser import Crawler
from repro.core import (
    AdClassificationPipeline,
    aggregate_users,
    annotate_browsers,
    classify_usage,
    grade_classification,
    heavy_hitters,
    usage_breakdown,
)
from repro.core.pageviews import attribution_accuracy
from repro.filterlist import build_lists
from repro.trace import (
    RBNTraceGenerator,
    abp_server_ips,
    easylist_download_clients,
    rbn1_config,
    rbn2_config,
)
from repro.web import Ecosystem, EcosystemConfig


def main(output_path: str = "REPORT.txt") -> None:
    out = io.StringIO()

    def emit(text: str = "") -> None:
        print(text)
        out.write(text + "\n")

    emit("REPRODUCTION REPORT — 'Annoyed Users' (IMC 2015)")
    emit("=" * 60)

    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=250))
    lists = build_lists(ecosystem.list_spec())
    pipeline = AdClassificationPipeline(lists)

    # --- §4 active measurements -------------------------------------
    emit("\n[S4] active crawl, 150 sites x 7 profiles")
    crawl = Crawler(ecosystem, lists, seed=4).crawl(n_sites=150)
    vanilla = crawl["Vanilla"]
    paranoia = crawl["AdBP-Pa"]
    emit(f"  AdBP-Pa HTTP requests = {paranoia.http_requests / vanilla.http_requests:.0%} "
         f"of Vanilla (paper ~80%)")

    # --- §5/§7 RBN-1 traffic characterization ------------------------
    emit("\n[S5/S7] RBN-1 (4 days)")
    generator1 = RBNTraceGenerator(rbn1_config(scale=0.002), ecosystem=ecosystem, lists=lists)
    trace1 = generator1.generate()
    entries1 = pipeline.process(trace1.http)
    summary = traffic_summary(entries1)
    emit(f"  ad share: {summary.ad_request_share:.2%} of requests (paper 17.25%), "
         f"{summary.ad_byte_share:.2%} of bytes (paper 1.13%)")
    emit(f"  list split EL/EP/AA: {summary.easylist_share_of_ads:.1%} / "
         f"{summary.easyprivacy_share_of_ads:.1%} / "
         f"{summary.non_intrusive_share_of_ads:.1%} (paper 55.9/35.1/9)")
    matrix = grade_classification(entries1, trace1.truth)
    emit(f"  vs ground truth: precision {matrix.precision:.3f}, recall {matrix.recall:.3f}")
    accuracy = attribution_accuracy(entries1, trace1.truth)
    emit(f"  page attribution: {accuracy.summary}")
    rows = [
        {"Content-type": r.content_type, "Ads Reqs": f"{100 * r.ad_request_share:.1f}%"}
        for r in content_type_table(entries1, top=5)
    ]
    emit(render_table(rows, title="  top ad content types (paper: gif 35.1, plain 28.7)"))

    # --- §6 RBN-2 usage study ----------------------------------------
    emit("[S6] RBN-2 (15.5 h)")
    generator2 = RBNTraceGenerator(rbn2_config(scale=0.006), ecosystem=ecosystem, lists=lists)
    trace2 = generator2.generate()
    entries2 = pipeline.process(trace2.http)
    downloads = easylist_download_clients(trace2.tls, abp_server_ips(ecosystem))
    emit(f"  households contacting ABP servers: "
         f"{len(downloads) / generator2.subscribers:.1%} (paper 19.7%)")
    stats = aggregate_users(entries2)
    annotation = annotate_browsers(heavy_hitters(stats))
    usages = classify_usage(list(annotation.browsers.values()), downloads)
    table_rows = [
        {"Type": row.usage_type, "share": f"{100 * row.instance_share:.1f}%"}
        for row in usage_breakdown(usages)
    ]
    emit(render_table(table_rows,
                      title="  usage classes (paper A 46.8 / B 15.7 / C 22.2 / D 15.3)"))

    # --- §7.3 whitelist -----------------------------------------------
    wl = whitelist_summary(entries2)
    emit("[S7.3] acceptable ads")
    emit(f"  whitelisted share of ads: {wl.whitelisted_share_of_ads:.1%} (paper 9.2%)")
    emit(f"  whitelisted matching blacklist: "
         f"{wl.blacklisted_share_of_whitelisted:.1%} (paper 57.3%)")

    # --- §8.2 RTB ------------------------------------------------------
    gaps = handshake_gaps(entries2)
    emit("\n[S8.2] real-time bidding")
    emit(f"  back-end delay >=100 ms: ads {gaps.share_above(100, ads=True):.2%} vs "
         f"non-ads {gaps.share_above(100, ads=False):.2%}")
    emit(f"  ad-gap modes (ms): {[round(m, 1) for m in gaps.modes_ms(ads=True)]} "
         f"(paper ~1/~10/~120)")

    with open(output_path, "w") as handle:
        handle.write(out.getvalue())
    emit(f"\nreport written to {output_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "REPORT.txt")
