#!/usr/bin/env python3
"""Quickstart: classify ad traffic in a synthetic RBN header trace.

Runs the whole stack in miniature — build a synthetic web ecosystem,
simulate a few dozen households browsing it for a couple of hours,
then apply the paper's passive classification pipeline and print what
an ISP vantage point would learn.

    python examples/quickstart.py
"""

from __future__ import annotations

from collections import Counter

from repro.core import AdClassificationPipeline
from repro.trace import RBNTraceGenerator, rbn2_config
from repro.web import Ecosystem, EcosystemConfig


def main() -> None:
    print("1. generating synthetic web ecosystem ...")
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=150, seed=7))
    print(
        f"   {len(ecosystem.publishers)} publishers, "
        f"{len(ecosystem.ad_networks)} ad networks, "
        f"{len(ecosystem.trackers)} trackers"
    )

    print("2. simulating a residential broadband capture ...")
    config = rbn2_config(scale=0.0, seed=1)
    config.population.n_households = 40
    config.duration_s = 3 * 3600.0
    generator = RBNTraceGenerator(config, ecosystem=ecosystem)
    trace = generator.generate()
    print(
        f"   {generator.subscribers} households -> "
        f"{len(trace.http)} HTTP requests, {len(trace.tls)} TLS connections"
    )

    print("3. classifying with the passive pipeline (synthetic EasyList etc.) ...")
    pipeline = AdClassificationPipeline(generator.lists)
    entries = pipeline.process(trace.http)

    ads = [entry for entry in entries if entry.is_ad]
    by_list = Counter(entry.blacklist_name or "whitelist-only" for entry in ads)
    whitelisted = sum(1 for entry in ads if entry.is_whitelisted)

    print()
    print(f"ad-related requests: {len(ads)} / {len(entries)} "
          f"({len(ads) / len(entries):.1%}; the paper reports 18.89% for RBN-2)")
    for name, count in by_list.most_common():
        print(f"  {name:>16}: {count:6d}  ({count / len(ads):.1%} of ad requests)")
    print(f"  whitelisted (acceptable ads): {whitelisted} "
          f"({whitelisted / len(ads):.1%} of ad requests)")

    accuracy = sum(
        1
        for entry, truth in zip(entries, trace.truth)
        if entry.classification.is_blacklisted == (truth.intent in ("ad", "tracker"))
        or (entry.is_ad and truth.intent in ("ad", "tracker"))
    ) / len(entries)
    print(f"\nagreement with generative ground truth: {accuracy:.1%}")


if __name__ == "__main__":
    main()
