"""The single exit-code registry for every ``repro`` process.

Exit codes are a *contract*: operators script against them (the CI
jobs do, the README documents them, ``tests/test_cli_exitcodes.py``
pins them), so a literal ``sys.exit(3)`` scattered through the tree is
a latent drift bug — renumber one site and the contract silently
forks.  Every ``sys.exit``/``os._exit`` in ``src/repro/`` must
therefore name a constant from this module (directly or via the
re-exports in :mod:`repro.robustness.health` /
:mod:`repro.robustness.crash`, which predate it); the RC010 gate in
``repro lint --self`` enforces both directions:

* an integer literal passed to ``sys.exit`` / ``os._exit`` /
  ``SystemExit`` anywhere in the package is a lint error;
* the README's "Exit codes" table must list *exactly* the public codes
  registered here — documentation drift is a lint finding, not a
  support ticket.

``public=True`` entries are the CLI contract (the README table);
``public=False`` entries are process-internal codes (worker-pool
plumbing, the chaos harness) that never surface to an operator's shell
from the ``repro`` command itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "ExitCode",
    "REGISTRY",
    "public_codes",
    "EXIT_CLEAN",
    "EXIT_STRICT_ABORT",
    "EXIT_MISSING_INPUT",
    "EXIT_DEGRADED",
    "EXIT_MANIFEST_MISMATCH",
    "EXIT_WORKER_FAILURE",
    "EXIT_SNAPSHOT_INVALID",
    "EXIT_INTERRUPTED",
    "EXIT_CHAOS_CRASH",
    "EXIT_WORKER_TERMINATED",
    "EXIT_WORKER_ORPHANED",
]


@dataclass(frozen=True, slots=True)
class ExitCode:
    """One registered exit code: its number, visibility, and meaning."""

    name: str
    code: int
    public: bool
    description: str


# -- the CLI contract (README "Exit codes" table) ---------------------------

EXIT_CLEAN = 0
EXIT_STRICT_ABORT = 1
EXIT_MISSING_INPUT = 2
EXIT_DEGRADED = 3
EXIT_MANIFEST_MISMATCH = 4
EXIT_WORKER_FAILURE = 5
EXIT_SNAPSHOT_INVALID = 6
EXIT_INTERRUPTED = 130

# -- process-internal codes (never the repro CLI's own exit status) ---------

# A worker killed by the chaos harness's crash-hard fault (DESIGN.md §12):
# distinguishable from every real failure mode in the chaos tests.
EXIT_CHAOS_CRASH = 87
# A shard worker that died politely to the supervisor's SIGTERM
# (shell convention for "terminated by signal 15": 128 + 15).
EXIT_WORKER_TERMINATED = 143
# A shard worker that hard-exited because its parent vanished; the value
# deliberately shares 1 with EXIT_STRICT_ABORT — nobody observes an
# orphan's status, the name exists so the call site is greppable.
EXIT_WORKER_ORPHANED = 1


REGISTRY: Mapping[str, ExitCode] = {
    entry.name: entry
    for entry in (
        ExitCode(
            "EXIT_CLEAN",
            EXIT_CLEAN,
            True,
            "clean run (for `serve`: drained cleanly on SIGTERM)",
        ),
        ExitCode(
            "EXIT_STRICT_ABORT",
            EXIT_STRICT_ABORT,
            True,
            "strict-mode abort on the first bad line; `serve` startup failure",
        ),
        ExitCode("EXIT_MISSING_INPUT", EXIT_MISSING_INPUT, True, "input file not found"),
        ExitCode(
            "EXIT_DEGRADED",
            EXIT_DEGRADED,
            True,
            "completed degraded: dropped records or lost shards",
        ),
        ExitCode(
            "EXIT_MANIFEST_MISMATCH",
            EXIT_MANIFEST_MISMATCH,
            True,
            "--resume refused on a run-manifest mismatch",
        ),
        ExitCode(
            "EXIT_WORKER_FAILURE",
            EXIT_WORKER_FAILURE,
            True,
            "a shard worker failed terminally and the run aborted",
        ),
        ExitCode(
            "EXIT_SNAPSHOT_INVALID",
            EXIT_SNAPSHOT_INVALID,
            True,
            "engine snapshot corrupt/version-incompatible under --snapshot-policy=refuse",
        ),
        ExitCode(
            "EXIT_INTERRUPTED",
            EXIT_INTERRUPTED,
            True,
            "interrupted (SIGINT/SIGTERM); durable state kept for --resume",
        ),
        ExitCode(
            "EXIT_CHAOS_CRASH",
            EXIT_CHAOS_CRASH,
            False,
            "worker killed by the chaos harness's crash-hard fault",
        ),
        ExitCode(
            "EXIT_WORKER_TERMINATED",
            EXIT_WORKER_TERMINATED,
            False,
            "worker died politely to the supervisor's SIGTERM (128+15)",
        ),
        ExitCode(
            "EXIT_WORKER_ORPHANED",
            EXIT_WORKER_ORPHANED,
            False,
            "worker hard-exited because its parent process vanished",
        ),
    )
}


def public_codes() -> dict[int, ExitCode]:
    """The operator-facing contract, keyed by numeric code."""
    return {entry.code: entry for entry in REGISTRY.values() if entry.public}
