"""Browser configuration profiles of the active measurement study (§4.1).

Seven profiles, exactly the paper's matrix:

* ``Vanilla`` — no extension.
* ``AdBP-Ads`` — Adblock Plus with EasyList + the acceptable-ads
  whitelist (the out-of-the-box install).
* ``AdBP-Privacy`` — Adblock Plus with EasyPrivacy only.
* ``AdBP-Paranoia`` — Adblock Plus with EasyList + EasyPrivacy.
* ``Ghostery-Ads`` / ``Ghostery-Privacy`` / ``Ghostery-Paranoia`` —
  Ghostery blocking the Advertisements / Privacy / all categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.ghostery import GhosteryCategory
from repro.filterlist.lists import ACCEPTABLE_ADS, EASYLIST, EASYPRIVACY

__all__ = ["BrowserProfile", "STANDARD_PROFILES", "profile_by_name"]


@dataclass(frozen=True, slots=True)
class BrowserProfile:
    """One browser configuration the emulator can run.

    Attributes:
        name: paper's profile name (Table 1 rows).
        abp_lists: Adblock Plus subscriptions; empty means ABP absent.
        ghostery_categories: Ghostery blocking categories; empty means
            Ghostery absent.
    """

    name: str
    abp_lists: tuple[str, ...] = ()
    ghostery_categories: tuple[GhosteryCategory, ...] = ()

    @property
    def has_adblocker(self) -> bool:
        return bool(self.abp_lists) or bool(self.ghostery_categories)

    @property
    def has_abp(self) -> bool:
        return bool(self.abp_lists)


STANDARD_PROFILES: tuple[BrowserProfile, ...] = (
    BrowserProfile("Vanilla"),
    BrowserProfile("AdBP-Ad", abp_lists=(EASYLIST, ACCEPTABLE_ADS)),
    BrowserProfile("AdBP-Pr", abp_lists=(EASYPRIVACY,)),
    BrowserProfile("AdBP-Pa", abp_lists=(EASYLIST, EASYPRIVACY)),
    BrowserProfile(
        "Ghostery-Ad", ghostery_categories=(GhosteryCategory.ADVERTISING,)
    ),
    BrowserProfile(
        "Ghostery-Pr",
        ghostery_categories=(GhosteryCategory.ANALYTICS, GhosteryCategory.BEACONS),
    ),
    BrowserProfile(
        "Ghostery-Pa",
        ghostery_categories=(
            GhosteryCategory.ADVERTISING,
            GhosteryCategory.ANALYTICS,
            GhosteryCategory.BEACONS,
            GhosteryCategory.WIDGETS,
        ),
    ),
)


def profile_by_name(name: str) -> BrowserProfile:
    for profile in STANDARD_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown browser profile: {name!r}")
