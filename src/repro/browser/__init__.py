"""Instrumented browser emulation substrate (active measurements, §4)."""

from repro.browser.crawler import Crawler, CrawlResult
from repro.browser.emulator import (
    ABP_UPDATE_HOSTS,
    BrowserEmulator,
    BrowserVisit,
    EmulatedRequest,
)
from repro.browser.ghostery import GhosteryCategory, GhosteryDatabase
from repro.browser.profiles import STANDARD_PROFILES, BrowserProfile, profile_by_name

__all__ = [
    "Crawler",
    "CrawlResult",
    "ABP_UPDATE_HOSTS",
    "BrowserEmulator",
    "BrowserVisit",
    "EmulatedRequest",
    "GhosteryCategory",
    "GhosteryDatabase",
    "STANDARD_PROFILES",
    "BrowserProfile",
    "profile_by_name",
]
