"""Active-measurement crawl driver (§4.1).

Reproduces the Selenium/Chromium experiment: for each URL of the
"Alexa" top list, start a fresh browser instance under each of the
seven profiles, load the page, and capture the traffic — both as
capture-level records and (optionally) as wire-level TCP segments the
Bro-like analyzer can re-parse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.emulator import BrowserEmulator, BrowserVisit
from repro.browser.ghostery import GhosteryDatabase
from repro.browser.profiles import STANDARD_PROFILES, BrowserProfile
from repro.filterlist.lists import FilterList
from repro.trace.records import RttModel, TraceRecords, render_visit
from repro.web.alexa import alexa_top
from repro.web.ecosystem import Ecosystem
from repro.web.page import PageFetch, build_page

__all__ = ["CrawlResult", "Crawler"]

_CRAWLER_UA = (
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chromium/43.0.2357.81 Safari/537.36"
)
_CRAWLER_IP = "172.16.0.10"  # the measurement machine


@dataclass(slots=True)
class CrawlResult:
    """All visits and rendered traces of one profile's crawl."""

    profile: BrowserProfile
    visits: list[BrowserVisit] = field(default_factory=list)
    records: TraceRecords = field(default_factory=TraceRecords)

    @property
    def http_requests(self) -> int:
        return len(self.records.http)

    @property
    def https_connections(self) -> int:
        return len(self.records.tls)


class Crawler:
    """Crawls the top-``n`` list under every standard profile.

    The same page materialization (object tree) is used across the
    seven profiles of a site — exactly like the paper loads the same
    URL seven times — so differences between profiles are pure blocker
    effects, not sampling noise.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        lists: dict[str, FilterList],
        *,
        seed: int = 4,
        profiles: tuple[BrowserProfile, ...] = STANDARD_PROFILES,
    ):
        self.ecosystem = ecosystem
        self.lists = lists
        self.profiles = profiles
        self._seed = seed
        self._ghostery = GhosteryDatabase.from_ecosystem(ecosystem)

    def crawl(self, n_sites: int = 1000, *, pages_per_site: int = 1) -> dict[str, CrawlResult]:
        """Run the full experiment; returns results keyed by profile."""
        rng = random.Random(self._seed)
        rtt = RttModel(seed=self._seed + 1)
        pages: list[PageFetch] = []
        for publisher in alexa_top(self.ecosystem, n_sites):
            for _ in range(pages_per_site):
                pages.append(build_page(publisher, self.ecosystem, rng, page_path="/"))

        results: dict[str, CrawlResult] = {}
        for profile in self.profiles:
            emulator = BrowserEmulator(
                profile,
                self.lists,
                ghostery_db=self._ghostery if profile.ghostery_categories else None,
                rng=random.Random(self._seed + 7),
            )
            result = CrawlResult(profile=profile)
            base_ts = 0.0
            for page in pages:
                # Fresh browser instance per URL: empty cache, ABP
                # fetches its lists on bootstrap (§4.1's methodology).
                visit = emulator.visit(page, list_update=True)
                result.visits.append(visit)
                rendered = render_visit(
                    visit,
                    client_ip=_CRAWLER_IP,
                    user_agent=_CRAWLER_UA,
                    base_ts=base_ts,
                    ecosystem=self.ecosystem,
                    rtt=rtt,
                    rng=rng,
                    device_id=f"crawler-{profile.name}",
                )
                result.records.extend(rendered)
                base_ts += 15.0  # 5 s settle + load + 5 s linger
            results[profile.name] = result
        return results
