"""Instrumented browser emulator.

Plays the role of the paper's Selenium-driven Chromium (§4.1): given a
page's ground-truth object tree and a :class:`BrowserProfile`, it
decides — with full DOM knowledge, like a real extension — which
requests are actually issued, which are blocked, and which in-HTML
text ads are element-hidden.  The output is the browser-side truth the
passive methodology is validated against.

Blocking cascades: a blocked ad tag never executes, so its descendant
requests (auction calls, creatives, pixels) are never issued — the
paper's "cascaded effects" bias (§10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.ghostery import GhosteryDatabase
from repro.browser.profiles import BrowserProfile
from repro.filterlist.engine import FilterEngine, RequestContext
from repro.filterlist.filter import ElementHidingRule
from repro.filterlist.lists import FilterList
from repro.http.url import split_url
from repro.web.page import ObjectKind, PageFetch, WebObject

__all__ = ["EmulatedRequest", "BrowserVisit", "BrowserEmulator", "ABP_UPDATE_HOSTS"]

# The Adblock Plus filter-download endpoints (synthetic stand-ins for
# easylist-downloads.adblockplus.org); subscribed browsers contact them
# over HTTPS — the paper's second usage indicator (§3.2).
ABP_UPDATE_HOSTS: tuple[str, ...] = (
    "easylist-downloads.adblock-plus.example",
    "notification.adblock-plus.example",
)


@dataclass(slots=True)
class EmulatedRequest:
    """One HTTP(S) request the emulated browser issued."""

    obj: WebObject
    url: str
    referer: str | None
    ts_offset: float  # seconds since visit start
    https: bool
    location: str | None = None  # redirect target, when a 3xx
    status: int = 200

    @property
    def declared_mime(self) -> str | None:
        return self.obj.declared_mime

    @property
    def size(self) -> int:
        return self.obj.size


@dataclass(slots=True)
class TlsConnection:
    """An HTTPS connection visible only at the TCP level."""

    host: str
    ts_offset: float
    purpose: str  # "page" | "abp_update"


@dataclass(slots=True)
class BrowserVisit:
    """Result of loading one page under one profile."""

    page: PageFetch
    profile: BrowserProfile
    requests: list[EmulatedRequest] = field(default_factory=list)
    blocked: list[WebObject] = field(default_factory=list)
    hidden_text_ads: int = 0
    tls_connections: list[TlsConnection] = field(default_factory=list)
    # Objects fetched over HTTPS: delivered to the user but invisible
    # to the port-80 header trace (§4.2 / §10).
    encrypted: list[WebObject] = field(default_factory=list)

    @property
    def page_url(self) -> str:
        return self.page.page_url


class BrowserEmulator:
    """Loads pages under a configured profile.

    Args:
        profile: browser configuration to emulate.
        lists: full list bundle by name; the profile picks its subset.
        ghostery_db: required when the profile enables Ghostery.
        rng: drives timing jitter and HTTPS upgrade decisions.
    """

    def __init__(
        self,
        profile: BrowserProfile,
        lists: dict[str, FilterList],
        *,
        ghostery_db: GhosteryDatabase | None = None,
        rng: random.Random | None = None,
    ):
        self.profile = profile
        self._rng = rng or random.Random(0)
        self._ghostery_db = ghostery_db
        if profile.ghostery_categories and ghostery_db is None:
            raise ValueError(f"profile {profile.name} needs a Ghostery database")

        self._engine: FilterEngine | None = None
        self._hiding_rules: list[ElementHidingRule] = []
        if profile.abp_lists:
            engine = FilterEngine()
            for name in profile.abp_lists:
                filter_list = lists[name]
                engine.add_filters(filter_list.filters, list_name=name)
                self._hiding_rules.extend(filter_list.hiding_rules)
            self._engine = engine

    def visit(self, page: PageFetch, *, list_update: bool = True) -> BrowserVisit:
        """Load ``page``, returning the issued/blocked request record.

        ``list_update`` adds the ABP filter-download HTTPS connections
        a freshly started browser performs (§3.2: on bootstrap or soft
        expiry) — the crawler starts a fresh instance per URL, so the
        default is on.
        """
        visit = BrowserVisit(page=page, profile=self.profile)
        if self.profile.has_abp and list_update:
            for index, host in enumerate(ABP_UPDATE_HOSTS[:1]):
                for list_index, _name in enumerate(self.profile.abp_lists):
                    visit.tls_connections.append(
                        TlsConnection(
                            host=host,
                            ts_offset=0.05 * (index + list_index + 1),
                            purpose="abp_update",
                        )
                    )

        issued_ts: dict[int, float] = {}
        skipped: set[int] = set()
        for obj in page.objects:
            if obj.parent_id is not None and obj.parent_id in skipped:
                # Parent was blocked (or skipped transitively): this
                # request is never triggered.
                skipped.add(obj.object_id)
                continue
            if self._blocks(obj, page):
                visit.blocked.append(obj)
                skipped.add(obj.object_id)
                continue
            ts = self._schedule(obj, issued_ts)
            issued_ts[obj.object_id] = ts
            https = self._is_https(obj, page)
            if https:
                visit.encrypted.append(obj)
                visit.tls_connections.append(
                    TlsConnection(host=split_url(obj.url).host, ts_offset=ts, purpose="page")
                )
                continue
            visit.requests.append(
                EmulatedRequest(
                    obj=obj,
                    url=obj.url,
                    referer=self._referer(obj, page),
                    ts_offset=ts,
                    https=False,
                    location=self._location(obj, page),
                    status=302 if obj.redirect_to is not None else 200,
                )
            )

        visit.hidden_text_ads = self._hidden_text_ads(page)
        return visit

    # ------------------------------------------------------------------

    def _blocks(self, obj: WebObject, page: PageFetch) -> bool:
        if obj.kind is ObjectKind.MAIN_DOC:
            return False
        if self._engine is not None:
            context = RequestContext(content_type=obj.abp_type, page_url=page.page_url)
            if self._engine.should_block(obj.url, context):
                return True
        if self._ghostery_db is not None and self.profile.ghostery_categories:
            if self._ghostery_db.should_block(obj.url, self.profile.ghostery_categories):
                return True
        return False

    def _schedule(self, obj: WebObject, issued_ts: dict[int, float]) -> float:
        if obj.parent_id is None:
            return 0.0
        parent_ts = issued_ts.get(obj.parent_id, 0.0)
        # Parent must complete (including server think time) before a
        # dependent request fires; siblings fan out with jitter.
        parent_delay = 0.0
        return parent_ts + parent_delay + self._rng.uniform(0.02, 0.5)

    def _is_https(self, obj: WebObject, page: PageFetch) -> bool:
        host = split_url(obj.url).host
        # Some ad infrastructure serves TLS regardless of the page
        # (secure.* endpoints, early HTTPS exchanges) — §4.2 observed
        # ad traffic over HTTPS that the methodology cannot classify,
        # and Table 1 shows blockers REDUCING HTTPS connection counts.
        if obj.is_ad_intent:
            if host.startswith("secure."):
                return True
            if self._rng.random() < 0.05:
                return True
        if not page.publisher.https_landing:
            return False
        page_host = split_url(page.page_url).host
        if obj.kind is ObjectKind.MAIN_DOC or host.endswith(page_host):
            return True
        # Mixed content: most third parties stay HTTP, some upgrade.
        return self._rng.random() < 0.35

    def _referer(self, obj: WebObject, page: PageFetch) -> str | None:
        if obj.kind is ObjectKind.MAIN_DOC:
            return None
        if obj.referer_stripped:
            return None
        if obj.parent_id is None:
            return page.page_url
        parent = page.by_id(obj.parent_id)
        if parent.redirect_to == obj.object_id:
            # Requests following a redirection carry no referer (§3.1)
            # — the Location header is the only link.
            return None
        if parent.kind is ObjectKind.MAIN_DOC:
            return page.page_url
        return parent.url

    def _location(self, obj: WebObject, page: PageFetch) -> str | None:
        if obj.redirect_to is None:
            return None
        return page.by_id(obj.redirect_to).url

    def _hidden_text_ads(self, page: PageFetch) -> int:
        if not page.text_ads or not self._hiding_rules:
            return 0
        page_host = split_url(page.page_url).host
        for rule in self._hiding_rules:
            if not rule.is_exception and rule.applies_to(page_host):
                return page.text_ads
        return 0
