"""Ghostery-like category blocker.

Ghostery blocks by a curated company/domain database organized into
categories (Advertisements, Analytics, Beacons, Widgets) rather than
by URL patterns.  Its database covers the ecosystem *incompletely* —
which is why the paper's Table 1 still counts EasyList hits in the
Ghostery-Paranoia traces: requests Ghostery's DB misses but EasyList's
patterns catch.

The synthetic database is derived deterministically from the ecosystem
with configurable coverage.
"""

from __future__ import annotations

import hashlib
from enum import Enum

from repro.http.url import hostname_of, registrable_domain
from repro.web.ecosystem import Ecosystem

__all__ = ["GhosteryCategory", "GhosteryDatabase"]


class GhosteryCategory(str, Enum):
    ADVERTISING = "advertising"
    ANALYTICS = "analytics"
    BEACONS = "beacons"
    WIDGETS = "widgets"


def _covered(domain: str, coverage: float) -> bool:
    """Deterministic pseudo-random coverage decision per domain."""
    digest = hashlib.sha1(domain.encode()).digest()
    return (digest[0] / 255.0) < coverage


class GhosteryDatabase:
    """Domain -> category map with partial coverage of the ecosystem."""

    def __init__(self, domain_categories: dict[str, GhosteryCategory]):
        self._by_domain = {
            registrable_domain(domain): category
            for domain, category in domain_categories.items()
        }

    @classmethod
    def from_ecosystem(
        cls,
        ecosystem: Ecosystem,
        *,
        ad_coverage: float = 0.8,
        tracker_coverage: float = 0.75,
    ) -> "GhosteryDatabase":
        """Build the database the way Ghostery's curators would.

        Coverage below 1.0 leaves the long tail of ad/tracker domains
        unknown to Ghostery — pattern-based EasyList still catches
        their requests (Table 1's Ghostery-Pa row).
        """
        mapping: dict[str, GhosteryCategory] = {}
        for network in ecosystem.ad_networks:
            for domain in network.serving_domains:
                if _covered(domain, ad_coverage):
                    mapping[domain] = GhosteryCategory.ADVERTISING
        for tracker in ecosystem.trackers:
            for domain in tracker.serving_domains:
                if _covered(domain, tracker_coverage):
                    category = (
                        GhosteryCategory.BEACONS
                        if "pixel" in domain
                        else GhosteryCategory.ANALYTICS
                    )
                    mapping[domain] = category
        return cls(mapping)

    def category_of(self, url: str) -> GhosteryCategory | None:
        return self._by_domain.get(registrable_domain(hostname_of(url)))

    def should_block(self, url: str, blocked: tuple[GhosteryCategory, ...]) -> bool:
        category = self.category_of(url)
        return category is not None and category in blocked

    def __len__(self) -> int:
        return len(self._by_domain)
