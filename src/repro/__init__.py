"""repro — reproduction of "Annoyed Users: Ads and Ad-Block Usage in
the Wild" (Pujol, Hohlfeld, Feldmann — ACM IMC 2015).

Subpackages:

* :mod:`repro.filterlist` — AdBlock-Plus-compatible filter engine and
  synthetic EasyList / EasyPrivacy / acceptable-ads generators.
* :mod:`repro.http` — Bro-like HTTP analysis (TCP reassembly, HTTP
  parsing, log records, User-Agent annotation).
* :mod:`repro.web` — synthetic web + ad-tech ecosystem (publishers,
  exchanges, trackers, CDNs, AS registry).
* :mod:`repro.browser` — instrumented browser emulator and the active
  measurement crawler (7 profiles over the top-1K sites).
* :mod:`repro.trace` — residential broadband trace generator with
  household/NAT/device population and diurnal activity.
* :mod:`repro.core` — the paper's contribution: the passive ad
  classification pipeline and the ad-blocker usage indicators.
* :mod:`repro.analysis` — the evaluation analyses behind every table
  and figure.

Quick start::

    from repro.web import Ecosystem
    from repro.trace import rbn2_config, RBNTraceGenerator
    from repro.core import AdClassificationPipeline

    ecosystem = Ecosystem.generate()
    generator = RBNTraceGenerator(rbn2_config(scale=0.005), ecosystem=ecosystem)
    trace = generator.generate()
    pipeline = AdClassificationPipeline(generator.lists)
    classified = pipeline.process(trace.http)
    ads = sum(1 for entry in classified if entry.is_ad)
    print(f"{ads / len(classified):.1%} of requests are ad-related")
"""

__version__ = "1.0.0"

from repro.core import AdClassificationPipeline, PipelineConfig
from repro.filterlist import ContentType, FilterEngine, RequestContext, build_lists
from repro.trace import RBNTraceGenerator, rbn1_config, rbn2_config
from repro.web import Ecosystem, EcosystemConfig

__all__ = [
    "__version__",
    "AdClassificationPipeline",
    "PipelineConfig",
    "ContentType",
    "FilterEngine",
    "RequestContext",
    "build_lists",
    "RBNTraceGenerator",
    "rbn1_config",
    "rbn2_config",
    "Ecosystem",
    "EcosystemConfig",
]
