"""Diurnal and weekly activity model.

Reproduces the temporal structure §7.1 reports: the characteristic
time-of-day and day-of-week pattern of residential networks (quiet
nights, evening peak right before midnight, visible lunch dip, quieter
weekends — especially Saturday), plus the user-mix effect behind the
*ad-ratio* diurnal pattern: at peak time active non-ad-block users
outnumber active Adblock Plus users 2:1, while off-hours the counts
are roughly equal.  The latter is modelled with a flatter,
night-shifted "night owl" rate curve that ad-block users draw more
often (see :class:`~repro.trace.population.PopulationConfig`).
"""

from __future__ import annotations

__all__ = [
    "hour_of_day",
    "day_of_week",
    "diurnal_rate",
    "weekly_factor",
    "activity_rate",
]

# Hourly relative request rates, casual profile (index = local hour).
# Evening peak before midnight, night trough, lunch dip at 13h.
_CASUAL_HOURLY = (
    0.40, 0.22, 0.12, 0.08, 0.06, 0.07, 0.12, 0.25,
    0.45, 0.60, 0.70, 0.75, 0.72, 0.62, 0.70, 0.78,
    0.85, 0.90, 0.98, 1.00, 1.00, 0.98, 0.85, 0.60,
)

# Night-owl profile: flatter, substantial night activity.
_NIGHT_OWL_HOURLY = (
    0.80, 0.70, 0.55, 0.40, 0.30, 0.25, 0.25, 0.30,
    0.40, 0.50, 0.55, 0.60, 0.60, 0.55, 0.60, 0.65,
    0.70, 0.75, 0.85, 0.95, 1.00, 1.00, 0.95, 0.90,
)

# Day-of-week factors, Monday = 0.  Weekends quieter, Saturday most.
_WEEKDAY_FACTORS = (1.00, 1.00, 1.00, 1.00, 0.95, 0.78, 0.88)


def hour_of_day(ts: float) -> float:
    """Local hour (fractional) of an epoch-like timestamp."""
    return (ts % 86400.0) / 3600.0


def day_of_week(ts: float) -> int:
    """Day index with day 0 = a Monday (ts 0 is midnight Monday)."""
    return int(ts // 86400.0) % 7


def diurnal_rate(ts: float, *, night_owl: bool = False) -> float:
    """Relative activity rate at time ``ts`` (linear interpolation)."""
    table = _NIGHT_OWL_HOURLY if night_owl else _CASUAL_HOURLY
    hour = hour_of_day(ts)
    low = int(hour) % 24
    high = (low + 1) % 24
    frac = hour - int(hour)
    return table[low] * (1.0 - frac) + table[high] * frac


def weekly_factor(ts: float) -> float:
    return _WEEKDAY_FACTORS[day_of_week(ts)]


def activity_rate(ts: float, base_rate: float, *, night_owl: bool = False) -> float:
    """Page views per second for a device at time ``ts``.

    ``base_rate`` is the device's peak-hour page-view rate; the
    diurnal and weekly shapes scale it down elsewhere.
    """
    return base_rate * diurnal_rate(ts, night_owl=night_owl) * weekly_factor(ts)


def expected_views(
    start_ts: float, end_ts: float, base_rate: float, *, night_owl: bool = False, step: float = 900.0
) -> float:
    """Integral of :func:`activity_rate` over [start, end] (midpoint rule)."""
    total = 0.0
    ts = start_ts
    while ts < end_ts:
        width = min(step, end_ts - ts)
        total += activity_rate(ts + width / 2, base_rate, night_owl=night_owl) * width
        ts += width
    return total
