"""Binary serialization for TCP segment captures ("mini-pcap").

The wire-level path of the pipeline produces
:class:`~repro.http.tcp.TcpSegment` streams; this module persists them
to a compact binary format so captures can be staged to disk and
replayed through :class:`~repro.http.analyzer.HttpAnalyzer` later —
the tcpdump-file role in the paper's active measurement setup (§4.1).

Format (little-endian), per segment after an 8-byte magic header:

========  =====================================
f64       timestamp (epoch seconds)
4B 4B     src, dst IPv4
u16 u16   sport, dport
u32       seq
u8        flags (SYN=1, ACK=2, FIN=4, RST=8)
u32       payload length, then the payload
========  =====================================
"""

from __future__ import annotations

import socket
import struct
from typing import BinaryIO, Iterable, Iterator

from repro.http.tcp import TcpSegment

__all__ = ["MAGIC", "write_segments", "read_segments", "PcapFormatError"]

MAGIC = b"RPCAP\x01\x00\x00"
_HEADER = struct.Struct("<d4s4sHHIBI")

_SYN, _ACK, _FIN, _RST = 1, 2, 4, 8


class PcapFormatError(ValueError):
    """Raised for corrupt or truncated capture files."""


def _pack_ip(ip: str) -> bytes:
    try:
        return socket.inet_aton(ip)
    except OSError as exc:
        raise PcapFormatError(f"not an IPv4 address: {ip!r}") from exc


def _unpack_ip(raw: bytes) -> str:
    return socket.inet_ntoa(raw)


def write_segments(segments: Iterable[TcpSegment], stream: BinaryIO) -> int:
    """Write segments to ``stream``; returns the segment count."""
    stream.write(MAGIC)
    count = 0
    for segment in segments:
        flags = (
            (_SYN if segment.syn else 0)
            | (_ACK if segment.ack else 0)
            | (_FIN if segment.fin else 0)
            | (_RST if segment.rst else 0)
        )
        stream.write(
            _HEADER.pack(
                segment.ts,
                _pack_ip(segment.src),
                _pack_ip(segment.dst),
                segment.sport,
                segment.dport,
                segment.seq,
                flags,
                len(segment.payload),
            )
        )
        stream.write(segment.payload)
        count += 1
    return count


def read_segments(stream: BinaryIO) -> Iterator[TcpSegment]:
    """Stream segments back from a capture written by
    :func:`write_segments`."""
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise PcapFormatError(f"bad magic: {magic!r}")
    while True:
        header = stream.read(_HEADER.size)
        if not header:
            return
        if len(header) < _HEADER.size:
            raise PcapFormatError("truncated segment header")
        ts, src, dst, sport, dport, seq, flags, length = _HEADER.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            raise PcapFormatError("truncated segment payload")
        yield TcpSegment(
            ts=ts,
            src=_unpack_ip(src),
            dst=_unpack_ip(dst),
            sport=sport,
            dport=dport,
            seq=seq,
            payload=payload,
            syn=bool(flags & _SYN),
            ack=bool(flags & _ACK),
            fin=bool(flags & _FIN),
            rst=bool(flags & _RST),
        )
