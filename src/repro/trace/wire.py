"""Wire-level rendering: browser visits -> TCP segments.

The alternative, packet-faithful path of the pipeline: instead of
emitting log records directly (:func:`repro.trace.records.render_visit`),
materialize every HTTP transaction as actual TCP segments carrying
HTTP/1.1 bytes, which :class:`repro.http.analyzer.HttpAnalyzer`
reassembles like Bro would.  Tests assert both paths agree; the active
measurement study uses this path end-to-end (its "tcpdump" capture).
"""

from __future__ import annotations

import random

from repro.browser.emulator import BrowserVisit
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import serialize_request, serialize_response
from repro.http.tcp import TcpSegment
from repro.http.url import split_url
from repro.trace.records import RttModel
from repro.web.ecosystem import Ecosystem

__all__ = ["render_visit_segments"]

_MAX_SEGMENT = 1460  # standard Ethernet MSS


def _segmentize(
    ts: float,
    src: str,
    dst: str,
    sport: int,
    dport: int,
    seq_start: int,
    payload: bytes,
    per_segment_delay: float,
) -> list[TcpSegment]:
    segments = []
    offset = 0
    ts_cursor = ts
    while offset < len(payload):
        chunk = payload[offset : offset + _MAX_SEGMENT]
        segments.append(
            TcpSegment(
                ts=ts_cursor,
                src=src,
                dst=dst,
                sport=sport,
                dport=dport,
                seq=seq_start + offset,
                payload=chunk,
            )
        )
        offset += len(chunk)
        ts_cursor += per_segment_delay
    return segments


def render_visit_segments(
    visit: BrowserVisit,
    *,
    client_ip: str,
    user_agent: str,
    base_ts: float,
    ecosystem: Ecosystem,
    rtt: RttModel,
    rng: random.Random,
    max_body_bytes: int = 16 * 1024,
    reorder_probability: float = 0.02,
) -> list[TcpSegment]:
    """Render one visit as a time-ordered TCP segment capture.

    Bodies larger than ``max_body_bytes`` are truncated on the wire
    but keep a truthful ``Content-Length`` header — mirroring header
    traces, where stored payload is capped but lengths are logged.
    A small fraction of data segments is emitted out of order to
    exercise the analyzer's reassembly.
    """
    segments: list[TcpSegment] = []
    # Per-host connection state: (sport, client_seq, server_seq).
    connections: dict[str, list] = {}
    next_port = 40000 + (rng.randrange(1000))

    for request in visit.requests:
        parts = split_url(request.url)
        host = parts.host
        server_ip = ecosystem.ip_for_host(host)
        rtt_ms = rtt.handshake_ms(server_ip, rng)
        rtt_s = rtt_ms / 1000.0
        ts = base_ts + request.ts_offset

        state = connections.get(host)
        if state is None:
            sport = next_port
            next_port += 1
            # TCP handshake: SYN at ts, SYN-ACK rtt later, ACK after.
            segments.append(
                TcpSegment(ts=ts, src=client_ip, dst=server_ip, sport=sport, dport=80, syn=True)
            )
            segments.append(
                TcpSegment(
                    ts=ts + rtt_s,
                    src=server_ip,
                    dst=client_ip,
                    sport=80,
                    dport=sport,
                    syn=True,
                    ack=True,
                )
            )
            ts = ts + rtt_s  # request goes out after the handshake
            state = [sport, 0, 0]
            connections[host] = state
        sport, client_seq, server_seq = state

        headers = Headers()
        headers.set("Host", host)
        headers.set("User-Agent", user_agent)
        if request.referer:
            headers.set("Referer", request.referer)
        headers.set("Accept", "*/*")
        http_request = HttpRequest(method="GET", uri=parts.path_and_query or "/", headers=headers)
        request_bytes = serialize_request(http_request)

        response_headers = Headers()
        if request.declared_mime is not None:
            response_headers.set("Content-Type", request.declared_mime)
        response_headers.set("Content-Length", str(request.size))
        if request.location is not None:
            response_headers.set("Location", request.location)
        status = request.status
        truncated = request.size > max_body_bytes
        body = b"x" * min(request.size, max_body_bytes)
        response = HttpResponse(status=status, reason="OK" if status == 200 else "Found",
                                headers=response_headers)
        # The Content-Length header stays truthful (the analyzer logs
        # it); when the shipped body is truncated — like a capture with
        # a snap length — the connection is closed after this response
        # so the shortened stream stays parseable.
        response_bytes = serialize_response(response, body)

        segments.extend(
            _segmentize(ts, client_ip, server_ip, sport, 80, client_seq, request_bytes, 1e-5)
        )
        client_seq += len(request_bytes)

        server_ts = ts + rtt_s * rng.uniform(0.98, 1.1) + request.obj.server_delay_ms / 1000.0
        response_segments = _segmentize(
            server_ts, server_ip, client_ip, 80, sport, server_seq, response_bytes, 2e-5
        )
        server_seq += len(response_bytes)

        # Occasionally swap two adjacent data segments (reordering).
        if len(response_segments) > 2 and rng.random() < reorder_probability:
            index = rng.randrange(1, len(response_segments) - 1)
            response_segments[index], response_segments[index + 1] = (
                response_segments[index + 1],
                response_segments[index],
            )
        segments.extend(response_segments)
        state[1], state[2] = client_seq, server_seq
        if truncated:
            del connections[host]

    segments.sort(key=lambda s: s.ts)
    return segments
