"""Seeded fault injection for TSV capture logs.

A real RBN vantage point never hands the pipeline a pristine log
(paper §3.1, §5): lines arrive truncated mid-write, fields garbled by
capture loss, columns dropped or doubled by splicing, timestamps
mangled, streams locally out of order, whole segments clock-skewed.
:class:`TraceCorruptor` injects exactly these pathologies into a clean
trace deterministically (seeded), so robustness is testable and
benchmarkable: corrupt a golden trace, run it through the pipeline in
``skip``/``quarantine`` mode, and compare against the clean run.

The corruptor operates on the *text* representation (the on-disk TSV),
not on parsed records — damage happens to bytes, not to dataclasses.
"""

from __future__ import annotations

import random
import string
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "CorruptionConfig",
    "CorruptionStats",
    "TraceCorruptor",
    "LINE_PATHOLOGIES",
    "ByteCorruptor",
    "BYTE_PATHOLOGIES",
]

# Line-level pathologies; each hit line gets one, chosen uniformly.
LINE_PATHOLOGIES = (
    "truncate",
    "garble",
    "drop_column",
    "dup_column",
    "bad_timestamp",
    "oversize",
)

_BAD_TIMESTAMPS = ("2015-10-28T16:03:22Z", "??", "1446047002,118", "nan", "")


@dataclass(slots=True)
class CorruptionConfig:
    """Knobs of the fault injector.

    ``rate`` is the fraction of data lines hit by a line-level
    pathology (unparseable damage); ``duplicate_rate`` re-emits lines
    verbatim; ``jitter_s`` locally shuffles records within a timestamp
    window; ``skew_segments``/``skew_s`` shift the clock of contiguous
    stretches of the capture (parseable but wrong).
    """

    rate: float = 0.1
    duplicate_rate: float = 0.0
    jitter_s: float = 0.0
    skew_segments: int = 0
    skew_s: float = 0.0
    seed: int = 1337


@dataclass(slots=True)
class CorruptionStats:
    """What the corruptor actually did (for reporting and assertions)."""

    lines_seen: int = 0
    lines_corrupted: int = 0
    lines_duplicated: int = 0
    lines_skewed: int = 0
    lines_jittered: int = 0
    by_pathology: Counter = field(default_factory=Counter)


class TraceCorruptor:
    """Injects capture pathologies into TSV log lines, deterministically."""

    def __init__(self, config: CorruptionConfig | None = None, **overrides):
        self.config = config or CorruptionConfig(**overrides)
        if config is not None and overrides:
            raise TypeError("pass either a CorruptionConfig or overrides, not both")
        self.stats = CorruptionStats()

    # -- line-level damage ------------------------------------------------

    def _truncate(self, line: str, rng: random.Random) -> str:
        # Keep ≥1 char so the damaged line stays a countable data line.
        return line[: rng.randrange(1, max(2, len(line)))]

    def _garble(self, line: str, rng: random.Random) -> str:
        if len(line) < 2:
            return "\x00"
        start = rng.randrange(0, len(line) - 1)
        end = min(len(line), start + rng.randrange(1, 40))
        junk = "".join(rng.choice(string.printable[:-6]) for _ in range(end - start))
        garbled = line[:start] + junk + line[end:]
        if garbled.startswith("#"):  # don't turn a data line into a comment
            garbled = "@" + garbled[1:]
        return garbled

    def _drop_column(self, line: str, rng: random.Random) -> str:
        tokens = line.split("\t")
        if len(tokens) < 2:
            return ""
        del tokens[rng.randrange(len(tokens))]
        return "\t".join(tokens)

    def _dup_column(self, line: str, rng: random.Random) -> str:
        tokens = line.split("\t")
        index = rng.randrange(len(tokens))
        tokens.insert(index, tokens[index])
        return "\t".join(tokens)

    def _bad_timestamp(self, line: str, rng: random.Random) -> str:
        tokens = line.split("\t")
        tokens[0] = rng.choice(_BAD_TIMESTAMPS)
        return "\t".join(tokens)

    def _oversize(self, line: str, rng: random.Random) -> str:
        tokens = line.split("\t")
        index = rng.randrange(len(tokens))
        filler = (tokens[index] or "A") * (1 + 16384 // max(1, len(tokens[index])))
        tokens[index] = filler
        return "\t".join(tokens)

    def _corrupt_line(self, line: str, rng: random.Random) -> str:
        pathology = rng.choice(LINE_PATHOLOGIES)
        self.stats.by_pathology[pathology] += 1
        self.stats.lines_corrupted += 1
        return getattr(self, f"_{pathology}")(line, rng)

    # -- stream-level damage ----------------------------------------------

    def _apply_skew(self, lines: list[str], rng: random.Random) -> list[str]:
        config = self.config
        for _ in range(config.skew_segments):
            if len(lines) < 2:
                break
            start = rng.randrange(0, len(lines) - 1)
            length = rng.randrange(1, max(2, len(lines) // 10))
            for i in range(start, min(len(lines), start + length)):
                tokens = lines[i].split("\t")
                try:
                    tokens[0] = f"{float(tokens[0]) + config.skew_s:.6f}"
                except ValueError:
                    continue
                lines[i] = "\t".join(tokens)
                self.stats.lines_skewed += 1
        return lines

    def _apply_jitter(self, lines: list[str], rng: random.Random) -> list[str]:
        """Re-sort by ``ts + U(-jitter, +jitter)`` — local reordering only."""
        jitter = self.config.jitter_s

        def perturbed_key(indexed: tuple[int, str]) -> tuple[float, int]:
            index, line = indexed
            try:
                ts = float(line.split("\t", 1)[0])
            except ValueError:
                return (float(index), index)  # unparseable: keep position
            return (ts + rng.uniform(-jitter, jitter), index)

        reordered = [line for _, line in sorted(enumerate(lines), key=perturbed_key)]
        self.stats.lines_jittered += sum(1 for a, b in zip(lines, reordered) if a != b)
        return reordered

    # -- public API --------------------------------------------------------

    def corrupt_lines(self, lines: Iterable[str]) -> list[str]:
        """Corrupt data lines; comment/header lines pass through untouched."""
        rng = random.Random(self.config.seed)
        header: list[str] = []
        data: list[str] = []
        for line in lines:
            line = line.rstrip("\n")
            if line.startswith("#"):
                header.append(line)
            else:
                data.append(line)
        self.stats.lines_seen += len(data)

        if self.config.skew_segments:
            data = self._apply_skew(data, rng)
        if self.config.jitter_s > 0:
            data = self._apply_jitter(data, rng)

        out = list(header)
        for line in data:
            if rng.random() < self.config.rate:
                out.append(self._corrupt_line(line, rng))
            else:
                out.append(line)
            if rng.random() < self.config.duplicate_rate:
                out.append(line)
                self.stats.lines_duplicated += 1
        return out

    def corrupt_text(self, text: str) -> str:
        lines = self.corrupt_lines(text.splitlines())
        return "\n".join(lines) + ("\n" if lines else "")

    def corrupt_file(self, src: str, dst: str) -> CorruptionStats:
        from repro.robustness.atomic import atomic_writer

        with open(src) as stream:
            text = stream.read()
        # Atomic replace: corrupting a trace onto itself (src == dst) or
        # dying mid-write must never leave a half-written file behind.
        with atomic_writer(dst) as stream:
            stream.write(self.corrupt_text(text))
        return self.stats


# Binary-artifact pathologies; each names one storage failure mode the
# framed formats (checkpoints, engine snapshots) must *detect*.
BYTE_PATHOLOGIES = ("truncate", "bitflip", "zero_run", "append")


class ByteCorruptor:
    """Seeded damage for framed binary artifacts (snapshots, checkpoints).

    The TSV corruptor above models capture loss; this one models
    storage loss — a copy cut short, a flipped bit on a bad sector, a
    zeroed page, garbage appended by a torn write.  Every pathology is
    deterministic under ``seed`` so fault-injection tests shrink and
    replay (tests/test_snapshot.py); the framed formats' contract is
    that each of these is *detected*, never deserialized into silently
    different state.
    """

    def __init__(self, seed: int = 1337) -> None:
        self._seed = seed

    def _rng(self, salt: str) -> random.Random:
        return random.Random(f"{self._seed}:{salt}")

    def truncate(self, data: bytes) -> bytes:
        """Cut the artifact short mid-write (keeps at least one byte)."""
        if len(data) <= 1:
            return data[:0]
        return data[: self._rng("truncate").randrange(1, len(data))]

    def bitflip(self, data: bytes) -> bytes:
        """Flip one bit somewhere in the artifact."""
        if not data:
            return data
        rng = self._rng("bitflip")
        position = rng.randrange(len(data))
        damaged = bytearray(data)
        damaged[position] ^= 1 << rng.randrange(8)
        return bytes(damaged)

    def zero_run(self, data: bytes, length: int = 64) -> bytes:
        """Zero a run of bytes, like a lost page."""
        if not data:
            return data
        rng = self._rng("zero_run")
        start = rng.randrange(len(data))
        end = min(len(data), start + length)
        return data[:start] + b"\x00" * (end - start) + data[end:]

    def append(self, data: bytes, length: int = 32) -> bytes:
        """Append trailing garbage, like a torn rewrite."""
        rng = self._rng("append")
        return data + bytes(rng.randrange(256) for _ in range(length))

    def corrupt(self, data: bytes, pathology: str) -> bytes:
        """Apply one named pathology from :data:`BYTE_PATHOLOGIES`."""
        if pathology not in BYTE_PATHOLOGIES:
            raise ValueError(f"unknown byte pathology {pathology!r}")
        method: Callable[[bytes], bytes] = getattr(self, pathology)
        return method(data)

    def corrupt_file(self, src: str, dst: str, pathology: str) -> None:
        from repro.robustness.atomic import atomic_writer

        with open(src, "rb") as stream:
            data = stream.read()
        with atomic_writer(dst, mode="wb") as stream:
            stream.write(self.corrupt(data, pathology))
