"""RBN trace generation & capture substrate.

Population model (households/NAT/devices), diurnal activity, the trace
generator driving browser emulators over the synthetic web, capture
semantics (port-based HTTP visibility, TLS connection records, ABP
server detection) and the paper's privacy measures.
"""

from repro.trace.activity import activity_rate, diurnal_rate, weekly_factor
from repro.trace.anonymize import (
    IpAnonymizer,
    anonymize_records,
    truncate_records,
    truncate_to_fqdn,
)
from repro.trace.capture import (
    CaptureStats,
    abp_server_ips,
    capture_stats,
    easylist_download_clients,
)
from repro.trace.corruption import CorruptionConfig, CorruptionStats, TraceCorruptor
from repro.trace.generator import (
    RBNTraceConfig,
    RBNTraceGenerator,
    generate_trace,
    rbn1_config,
    rbn2_config,
)
from repro.trace.population import Device, Household, PopulationConfig, generate_population
from repro.trace.records import (
    GroundTruth,
    RttModel,
    TlsConnectionRecord,
    TraceRecords,
    render_visit,
)
from repro.trace.pcap import PcapFormatError, read_segments, write_segments
from repro.trace.wire import render_visit_segments

__all__ = [
    "PcapFormatError",
    "read_segments",
    "write_segments",
    "activity_rate",
    "diurnal_rate",
    "weekly_factor",
    "IpAnonymizer",
    "anonymize_records",
    "truncate_records",
    "truncate_to_fqdn",
    "CaptureStats",
    "abp_server_ips",
    "capture_stats",
    "easylist_download_clients",
    "CorruptionConfig",
    "CorruptionStats",
    "TraceCorruptor",
    "RBNTraceConfig",
    "RBNTraceGenerator",
    "generate_trace",
    "rbn1_config",
    "rbn2_config",
    "Device",
    "Household",
    "PopulationConfig",
    "generate_population",
    "GroundTruth",
    "RttModel",
    "TlsConnectionRecord",
    "TraceRecords",
    "render_visit",
    "render_visit_segments",
]
