"""Trace record formats and visit-to-trace rendering.

A captured trace, as the paper's monitoring sees it, consists of

* HTTP transactions on port 80 — flattened to
  :class:`~repro.http.log.HttpLogRecord`;
* HTTPS visible only as TLS connection records (client, server IP,
  port 443, timestamp) — :class:`TlsConnectionRecord`;

plus — only in the simulator, never in a real capture — a
:class:`GroundTruth` sidecar aligned with the HTTP records, carrying
the generative truth (intent, list ground truth, device identity) that
validation tests compare the passive methodology against.

:func:`render_visit` turns a :class:`~repro.browser.emulator.BrowserVisit`
into these records, modelling per-server RTT, persistent connections
and the HTTP-vs-TCP handshake timing that §8.2 exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.emulator import BrowserVisit, EmulatedRequest
from repro.http.log import HttpLogRecord
from repro.http.url import split_url
from repro.web.ecosystem import Ecosystem

__all__ = [
    "TlsConnectionRecord",
    "GroundTruth",
    "TraceRecords",
    "RttModel",
    "render_visit",
]


@dataclass(frozen=True, slots=True)
class TlsConnectionRecord:
    """One HTTPS connection (no payload visibility, §5)."""

    ts: float
    client: str
    server: str
    server_port: int = 443


@dataclass(slots=True)
class GroundTruth:
    """Simulator-side truth for one HTTP record (validation only)."""

    intent: str  # "content" | "ad" | "tracker" | "app"
    acceptable: bool
    network_name: str
    page_url: str
    device_id: str
    profile_name: str
    has_adblocker: bool


@dataclass(slots=True)
class TraceRecords:
    """A captured (simulated) trace plus its ground-truth sidecar."""

    http: list[HttpLogRecord] = field(default_factory=list)
    truth: list[GroundTruth] = field(default_factory=list)
    tls: list[TlsConnectionRecord] = field(default_factory=list)

    def extend(self, other: "TraceRecords") -> None:
        self.http.extend(other.http)
        self.truth.extend(other.truth)
        self.tls.extend(other.tls)

    def sort_by_time(self) -> None:
        order = sorted(range(len(self.http)), key=lambda i: self.http[i].ts)
        self.http = [self.http[i] for i in order]
        self.truth = [self.truth[i] for i in order]
        self.tls.sort(key=lambda record: record.ts)

    @property
    def total_http_bytes(self) -> int:
        """Body bytes plus a flat per-message header estimate."""
        total = 0
        for record in self.http:
            total += (record.content_length or 0) + 600
        return total

    def __len__(self) -> int:
        return len(self.http)


class RttModel:
    """Stable per-server network RTT (the TCP-handshake time, §8.2).

    Each server IP gets a base RTT drawn once from a EU/US/Asia
    mixture — the monitor sits in a European aggregation network, so
    most CDN traffic is near and cloud/exchange traffic may be far.
    Per-connection jitter is added on top.
    """

    def __init__(self, seed: int = 7):
        self._seed = seed
        self._base: dict[str, float] = {}

    def base_rtt_ms(self, server_ip: str) -> float:
        base = self._base.get(server_ip)
        if base is None:
            rng = random.Random(f"{self._seed}:{server_ip}")
            roll = rng.random()
            if roll < 0.55:
                base = rng.uniform(6.0, 35.0)  # European edge
            elif roll < 0.90:
                base = rng.uniform(85.0, 140.0)  # transatlantic
            else:
                base = rng.uniform(160.0, 280.0)  # far east
            self._base[server_ip] = base
        return base

    def handshake_ms(self, server_ip: str, rng: random.Random) -> float:
        return self.base_rtt_ms(server_ip) * rng.uniform(0.95, 1.15)


def render_visit(
    visit: BrowserVisit,
    *,
    client_ip: str,
    user_agent: str,
    base_ts: float,
    ecosystem: Ecosystem,
    rtt: RttModel,
    rng: random.Random,
    device_id: str = "",
    flow_id_start: int = 1,
) -> TraceRecords:
    """Render a browser visit into capture-level trace records.

    Persistent connections: all requests of a visit to the same host
    reuse one flow (and hence one TCP-handshake measurement) — exactly
    the assumption the paper makes when using the flow's handshake for
    later transactions on it.
    """
    records = TraceRecords()
    flows: dict[str, tuple[int, float]] = {}
    next_flow = flow_id_start

    for request in visit.requests:
        host = split_url(request.url).host
        server_ip = ecosystem.ip_for_host(host)
        flow = flows.get(host)
        if flow is None:
            handshake = rtt.handshake_ms(server_ip, rng)
            flow = (next_flow, handshake)
            flows[host] = flow
            next_flow += 1
        flow_id, tcp_handshake_ms = flow

        ts_request = base_ts + request.ts_offset
        server_ms = request.obj.server_delay_ms
        http_handshake_ms = tcp_handshake_ms * rng.uniform(0.98, 1.1) + server_ms

        records.http.append(
            HttpLogRecord(
                ts=ts_request,
                client=client_ip,
                server=server_ip,
                method="GET",
                host=host,
                uri=_request_uri(request),
                referrer=request.referer,
                user_agent=user_agent,
                status=request.status,
                content_type=request.declared_mime,
                content_length=request.size,
                location=request.location,
                tcp_handshake_ms=tcp_handshake_ms,
                http_handshake_ms=http_handshake_ms,
                flow_id=flow_id,
            )
        )
        records.truth.append(
            GroundTruth(
                intent=request.obj.intent,
                acceptable=request.obj.acceptable,
                network_name=request.obj.network_name,
                page_url=visit.page_url,
                device_id=device_id,
                profile_name=visit.profile.name,
                has_adblocker=visit.profile.has_adblocker,
            )
        )

    for tls in visit.tls_connections:
        server_ip = ecosystem.ip_for_host(tls.host)
        records.tls.append(
            TlsConnectionRecord(
                ts=base_ts + tls.ts_offset,
                client=client_ip,
                server=server_ip,
            )
        )
    return records


def _request_uri(request: EmulatedRequest) -> str:
    parts = split_url(request.url)
    return parts.path_and_query or "/"
