"""Privacy measures of the capture pipeline (§5).

The paper anonymizes client IPs *at capture time* (real addresses
never reach disk) and, after classification completes, truncates every
URL in the logs to its fully qualified domain name.  Both operations
are reproduced so downstream analyses can be written against the same
reduced views the authors retained.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import replace

from repro.http.log import HttpLogRecord
from repro.http.url import split_url

__all__ = ["IpAnonymizer", "truncate_to_fqdn", "truncate_records", "anonymize_records"]


class IpAnonymizer:
    """Keyed, deterministic IP pseudonymization.

    Stable within one capture (the same client keeps one pseudonym, so
    per-user aggregation still works) but unlinkable across captures
    with different keys — the property the paper's setup relies on.
    """

    def __init__(self, key: bytes | str = b"capture-key"):
        if isinstance(key, str):
            key = key.encode()
        self._key = key
        self._cache: dict[str, str] = {}

    def anonymize(self, ip: str) -> str:
        pseudonym = self._cache.get(ip)
        if pseudonym is None:
            digest = hmac.new(self._key, ip.encode(), hashlib.sha256).digest()
            pseudonym = "anon-" + digest[:6].hex()
            self._cache[ip] = pseudonym
        return pseudonym

    def __len__(self) -> int:
        return len(self._cache)


def anonymize_records(
    records: list[HttpLogRecord], anonymizer: IpAnonymizer
) -> list[HttpLogRecord]:
    """Capture-time pseudonymization of client addresses.

    Real client IPs "were never stored to disk" (§5) — apply this
    before any log leaves the capture stage.  Per-user aggregation
    still works because pseudonyms are stable within the capture.
    """
    return [replace(record, client=anonymizer.anonymize(record.client)) for record in records]


def truncate_to_fqdn(url: str) -> str:
    """Strip a URL to scheme + FQDN, removing path/query (§5)."""
    parts = split_url(url)
    scheme = parts.scheme or "http"
    return f"{scheme}://{parts.host}/"


def truncate_records(records: list[HttpLogRecord]) -> list[HttpLogRecord]:
    """Post-classification log reduction: URLs -> FQDNs.

    Run after the ad classification finishes — classification needs
    full URLs; retention does not.
    """
    reduced = []
    for record in records:
        reduced.append(
            replace(
                record,
                uri="/",
                referrer=truncate_to_fqdn(record.referrer) if record.referrer else None,
                location=truncate_to_fqdn(record.location) if record.location else None,
            )
        )
    return reduced
