"""Residential broadband network (RBN) trace generator.

Drives the whole substrate stack: the population model browses the
synthetic web through per-profile browser emulators, and every visit
is rendered into capture-level records (HTTP log records on port 80,
TLS connection records on port 443, plus the ground-truth sidecar).

Presets :func:`rbn1_config` and :func:`rbn2_config` mirror the paper's
two data sets (Table 2):

* RBN-1 — 4 days starting Saturday 00:00 (11 Apr 2015 was a
  Saturday), ~7.5K subscribers, used for traffic characterization;
* RBN-2 — 15.5 hours starting Tuesday 15:30 (11 Aug 2015 was a
  Tuesday), ~19.7K subscribers, used for the ad-blocker usage study.

``scale`` shrinks subscriber counts so experiments run on a laptop;
every reported quantity in the reproduction is a ratio or distribution
and is stable under scaling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.browser.emulator import ABP_UPDATE_HOSTS, BrowserEmulator, BrowserVisit
from repro.browser.ghostery import GhosteryDatabase
from repro.browser.profiles import BrowserProfile
from repro.filterlist.easylist import build_lists
from repro.filterlist.lists import DEFAULT_EXPIRES, FilterList
from repro.http.log import HttpLogRecord
from repro.trace.activity import activity_rate
from repro.trace.population import Device, Household, PopulationConfig, generate_population
from repro.trace.records import GroundTruth, RttModel, TlsConnectionRecord, TraceRecords, render_visit
from repro.web.ecosystem import Ecosystem, EcosystemConfig
from repro.web.page import PageFetch, build_page

__all__ = ["RBNTraceConfig", "RBNTraceGenerator", "rbn1_config", "rbn2_config", "generate_trace"]

_SATURDAY = 5 * 86400.0
_TUESDAY_1530 = 1 * 86400.0 + 15.5 * 3600.0


@dataclass(slots=True)
class RBNTraceConfig:
    """Parameters of one simulated capture."""

    start_ts: float = _TUESDAY_1530
    duration_s: float = 4 * 3600.0
    population: PopulationConfig = field(default_factory=PopulationConfig)
    ecosystem: EcosystemConfig = field(default_factory=EcosystemConfig)
    seed: int = 42
    # Peak-hour page views per hour for a device with activity == 1.
    pages_per_hour: float = 1.8
    # Cap of distinct cached pages per publisher (visit reuse).
    page_pool_size: int = 3
    # Mean non-browser request bursts per device per hour at peak.
    app_bursts_per_hour: float = 1.0
    # Model browser caching on page revisits: static content objects
    # are not re-fetched, ads/trackers are (cache-busted).  Off by
    # default — it biases the measured ad ratio upward, one of §10's
    # caveats, and is exercised by dedicated tests.
    browser_cache: bool = False

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.duration_s


def rbn1_config(scale: float = 0.02, **overrides) -> RBNTraceConfig:
    """RBN-1 preset: 4-day weekend-to-Tuesday trace (§5, Table 2)."""
    population = PopulationConfig(n_households=max(10, int(7500 * scale)), seed=111)
    config = RBNTraceConfig(
        start_ts=_SATURDAY,
        duration_s=4 * 86400.0,
        population=population,
        seed=1001,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def rbn2_config(scale: float = 0.02, **overrides) -> RBNTraceConfig:
    """RBN-2 preset: 15.5-hour peak-time trace (§5, Table 2)."""
    population = PopulationConfig(n_households=max(10, int(19700 * scale)), seed=222)
    config = RBNTraceConfig(
        start_ts=_TUESDAY_1530,
        duration_s=15.5 * 3600.0,
        population=population,
        seed=1002,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class RBNTraceGenerator:
    """Simulates one capture window over a population and ecosystem."""

    def __init__(
        self,
        config: RBNTraceConfig,
        *,
        ecosystem: Ecosystem | None = None,
        lists: dict[str, FilterList] | None = None,
    ):
        self.config = config
        self.ecosystem = ecosystem or Ecosystem.generate(config.ecosystem)
        self.lists = lists or build_lists(self.ecosystem.list_spec())
        self.households = generate_population(config.population)
        self._ghostery = GhosteryDatabase.from_ecosystem(self.ecosystem)
        self._rng = random.Random(config.seed)
        self._rtt = RttModel(seed=config.seed + 1)
        self._emulators: dict[tuple, BrowserEmulator] = {}
        self._page_pool: dict[str, list[PageFetch]] = {}
        self._visit_cache: dict[tuple, BrowserVisit] = {}
        self._revisit_cache: dict[tuple, BrowserVisit] = {}
        self._seen_pages: set[tuple] = set()
        self._next_flow = 1

    # ------------------------------------------------------------------

    def generate(self) -> TraceRecords:
        """Run the simulation and return the time-sorted trace."""
        records = TraceRecords()
        for household in self.households:
            for device in household.devices:
                if device.is_browser:
                    self._browse(device, household, records)
                else:
                    self._app_traffic(device, household, records)
                self._list_updates(device, household, records)
        records.sort_by_time()
        return records

    @property
    def subscribers(self) -> int:
        return len(self.households)

    # ------------------------------------------------------------------
    # Browsing devices

    def _browse(self, device: Device, household: Household, records: TraceRecords) -> None:
        times = self._event_times(device, self.config.pages_per_hour)
        for ts in times:
            visit = self._visit_for(device, household)
            # Per-visit rendering RNG: timing jitter never perturbs the
            # global stream, so config toggles (e.g. browser_cache)
            # leave the rest of the simulation bit-identical.
            render_rng = random.Random(f"{self.config.seed}:{device.device_id}:{ts:.3f}")
            rendered = render_visit(
                visit,
                client_ip=household.ip,
                user_agent=device.user_agent,
                base_ts=ts,
                ecosystem=self.ecosystem,
                rtt=self._rtt,
                rng=render_rng,
                device_id=device.device_id,
                flow_id_start=self._next_flow,
            )
            self._next_flow += 64  # leave room for the visit's flows
            # Stamp the true device identity/profile over cached data.
            proxied = household.proxy_blocker
            for truth in rendered.truth:
                truth.device_id = device.device_id
                truth.profile_name = (
                    f"ProxyFiltered+{device.profile.name}" if proxied else device.profile.name
                )
                truth.has_adblocker = device.profile.has_adblocker or proxied
            records.extend(rendered)

    # Household-level ad stripping: an EasyList-like policy applied by
    # the middlebox to every device's traffic (§10's proxy confound).
    _PROXY_PROFILE = BrowserProfile("ProxyFiltered", abp_lists=("easylist",))

    def _visit_for(self, device: Device, household: Household) -> BrowserVisit:
        """Fetch (or reuse) a page visit under the effective profile.

        Page views and blocking outcomes are cached per (page,
        profile-key): the trace needs volume, not unique URLs, and
        real users revisit pages constantly anyway.  A proxy-filtered
        household overrides every device's own profile.
        """
        profile = self._PROXY_PROFILE if household.proxy_blocker else device.profile
        publisher = self._sample_publisher_for(device)
        pool = self._page_pool.get(publisher.domain)
        if pool is None:
            pool = []
            self._page_pool[publisher.domain] = pool
        if len(pool) < self.config.page_pool_size:
            pool.append(build_page(publisher, self.ecosystem, self._rng))
        page_index = self._rng.randrange(len(pool))
        page = pool[page_index]

        key = self._profile_key(profile)
        cache_key = (publisher.domain, page_index, key)
        visit = self._visit_cache.get(cache_key)
        if visit is None:
            emulator = self._emulator_for(profile)
            visit = emulator.visit(page, list_update=False)
            self._visit_cache[cache_key] = visit

        if self.config.browser_cache:
            seen_key = (device.device_id, cache_key)
            if seen_key in self._seen_pages:
                return self._revisit_variant(cache_key, visit)
            self._seen_pages.add(seen_key)
        return visit

    @staticmethod
    def _is_cacheable(obj) -> bool:
        from repro.web.page import ObjectKind

        if obj.intent != "content":
            return False  # ads/trackers are cache-busted per request
        if obj.kind not in (
            ObjectKind.IMAGE,
            ObjectKind.STYLESHEET,
            ObjectKind.SCRIPT,
            ObjectKind.FONT,
        ):
            return False
        return hash(obj.url) % 10 < 6  # ~60% carry cache headers

    def _revisit_variant(self, cache_key: tuple, visit: BrowserVisit) -> BrowserVisit:
        """The visit as replayed from a warm browser cache."""
        variant = self._revisit_cache.get(cache_key)
        if variant is None:
            variant = BrowserVisit(
                page=visit.page,
                profile=visit.profile,
                requests=[r for r in visit.requests if not self._is_cacheable(r.obj)],
                blocked=visit.blocked,
                hidden_text_ads=visit.hidden_text_ads,
                tls_connections=visit.tls_connections,
            )
            self._revisit_cache[cache_key] = variant
        return variant

    _LOW_AD_CATEGORIES = frozenset(
        {"video_streaming", "audio_streaming", "search", "reference", "translation"}
    )

    def _sample_publisher_for(self, device: Device):
        """Zipf draw, biased hard to ad-free sites for diet devices."""
        publisher = self.ecosystem.sample_publisher(self._rng)
        if not device.low_ad_diet or self._rng.random() > 0.92:
            return publisher
        for _ in range(40):
            if publisher.ad_free:
                return publisher
            publisher = self.ecosystem.sample_publisher(self._rng)
        return publisher

    def _profile_key(self, profile: BrowserProfile) -> tuple:
        return (profile.abp_lists, profile.ghostery_categories)

    def _emulator_for(self, profile: BrowserProfile) -> BrowserEmulator:
        key = self._profile_key(profile)
        emulator = self._emulators.get(key)
        if emulator is None:
            emulator = BrowserEmulator(
                profile,
                self.lists,
                ghostery_db=self._ghostery if profile.ghostery_categories else None,
                rng=random.Random(self.config.seed + hash(key) % 10000),
            )
            self._emulators[key] = emulator
        return emulator

    # ------------------------------------------------------------------
    # Non-browser devices (consoles, TVs, updaters, apps)

    def _app_traffic(self, device: Device, household: Household, records: TraceRecords) -> None:
        times = self._event_times(device, self.config.app_bursts_per_hour)
        lower_ua = device.user_agent.lower()
        is_streaming = any(
            token in lower_ua
            for token in ("playstation", "spotify", "vlc", "itunes", "roku", "smarttv", "hbbtv")
        )
        for ts in times:
            if is_streaming:
                # Consoles/TVs/media players stream chunked media:
                # many requests, essentially no ads — the dense
                # bottom-right cloud of Fig 3.
                n_requests = 15 + int(self._rng.paretovariate(1.2))
            else:
                n_requests = 1 + int(self._rng.paretovariate(1.5))
            host = self._app_host(device)
            server_ip = self.ecosystem.ip_for_host(host)
            handshake = self._rtt.handshake_ms(server_ip, self._rng)
            for index in range(min(n_requests, 120)):
                # A household middlebox strips in-app ads as well.
                is_ad = self._rng.random() < 0.02 and not household.proxy_blocker
                if is_ad:
                    network = self._rng.choice(self.ecosystem.ad_networks)
                    ad_host = network.serving_domains[0]
                    url_host, uri = ad_host, f"/adtag/show.js?ad_slot={self._rng.randrange(10**6)}"
                    intent, mime, size = "ad", "application/javascript", 4000
                else:
                    url_host, uri = host, f"/api/sync?seq={index}"
                    intent, mime, size = "app", "application/octet-stream", int(
                        self._rng.lognormvariate(8.0, 2.0)
                    )
                records.http.append(
                    HttpLogRecord(
                        ts=ts + 0.2 * index,
                        client=household.ip,
                        server=self.ecosystem.ip_for_host(url_host),
                        method="GET",
                        host=url_host,
                        uri=uri,
                        referrer=None,
                        user_agent=device.user_agent,
                        status=200,
                        content_type=mime,
                        content_length=size,
                        location=None,
                        tcp_handshake_ms=handshake,
                        http_handshake_ms=handshake * 1.05 + self._rng.lognormvariate(0.0, 0.6),
                        flow_id=self._next_flow,
                    )
                )
                records.truth.append(
                    GroundTruth(
                        intent=intent,
                        acceptable=False,
                        network_name="",
                        page_url="",
                        device_id=device.device_id,
                        profile_name=device.profile.name,
                        has_adblocker=False,
                    )
                )
            self._next_flow += 1

    def _app_host(self, device: Device) -> str:
        lower = device.user_agent.lower()
        if "playstation" in lower or "steam" in lower:
            return "update.gamecdn.example"
        if "spotify" in lower or "vlc" in lower or "itunes" in lower:
            return "media.streamapi.example"
        if "update" in lower or "cryptoapi" in lower or "avast" in lower:
            return "swupdate.vendor.example"
        return "api.mobileapp.example"

    # ------------------------------------------------------------------
    # ABP filter-list update connections (indicator 2, §3.2)

    def _list_updates(self, device: Device, household: Household, records: TraceRecords) -> None:
        if not device.profile.has_abp:
            return
        config = self.config
        abp_ip = self.ecosystem.ip_for_host(ABP_UPDATE_HOSTS[0])
        # A fraction of ABP installs never contacts the download
        # servers inside the window (browser session predates the
        # capture, cached lists not yet soft-expired) — the source of
        # the paper's type-D inconsistency (ABP installed but no
        # download seen).
        if random.Random(f"{config.seed}:{device.device_id}:upd").random() < 0.22:
            return
        bootstrap_ts = config.start_ts + device.bootstrap_offset_s
        for index, _name in enumerate(device.profile.abp_lists):
            ts = bootstrap_ts + index
            if config.start_ts <= ts <= config.end_ts:
                records.tls.append(
                    TlsConnectionRecord(ts=ts, client=household.ip, server=abp_ip)
                )
        # List re-checks on soft expiry (EasyList 4 d, EasyPrivacy 1 d)
        # plus the daily notification ping every ABP install performs —
        # together the "typically upon bootstrap or once per day"
        # contact frequency of §3.2.
        intervals = [DEFAULT_EXPIRES.get(name, 4 * 86400.0) for name in device.profile.abp_lists]
        intervals.append(6 * 3600.0)  # notification pings, several per day
        for interval in intervals:
            ts = bootstrap_ts + interval
            while ts <= config.end_ts:
                if ts >= config.start_ts:
                    records.tls.append(
                        TlsConnectionRecord(ts=ts, client=household.ip, server=abp_ip)
                    )
                ts += interval

    # ------------------------------------------------------------------
    # Event-time sampling

    def _event_times(self, device: Device, per_hour: float) -> list[float]:
        """Sample event timestamps from the device's rate curve."""
        config = self.config
        base_rate = device.activity * per_hour / 3600.0
        # Integrate the rate in 30-minute bins, then sample a Poisson
        # count and place events proportionally to bin mass.
        bin_width = 1800.0
        n_bins = max(1, int(math.ceil(config.duration_s / bin_width)))
        masses: list[float] = []
        total_mass = 0.0
        for index in range(n_bins):
            mid = config.start_ts + (index + 0.5) * bin_width
            width = min(bin_width, config.end_ts - (config.start_ts + index * bin_width))
            mass = activity_rate(mid, base_rate, night_owl=device.night_owl) * width
            masses.append(mass)
            total_mass += mass
        count = self._poisson(total_mass)
        times: list[float] = []
        for _ in range(count):
            point = self._rng.random() * total_mass
            acc = 0.0
            for index, mass in enumerate(masses):
                acc += mass
                if acc >= point:
                    start = config.start_ts + index * bin_width
                    times.append(start + self._rng.random() * bin_width)
                    break
        times.sort()
        return times

    def _poisson(self, lam: float) -> int:
        """Poisson sample (normal approximation for large lambda)."""
        if lam <= 0:
            return 0
        if lam > 50:
            return max(0, int(self._rng.gauss(lam, math.sqrt(lam)) + 0.5))
        threshold = math.exp(-lam)
        count, product = 0, self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count


def generate_trace(config: RBNTraceConfig, **kwargs) -> tuple[TraceRecords, RBNTraceGenerator]:
    """One-shot convenience: build generator, run, return both."""
    generator = RBNTraceGenerator(config, **kwargs)
    return generator.generate(), generator
