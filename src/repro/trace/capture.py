"""DAG-like port-based capture semantics and ABP server detection.

The monitoring cards classify traffic by port (§5): TCP/80 is parsed
as HTTP; TCP/443 is only visible as connections.  HTTPS connections to
the Adblock Plus download servers are recognized by destination IP,
using an IP list obtained out-of-band ("multiple DNS resolvers",
§3.2) — :func:`abp_server_ips` plays that role against the synthetic
ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.emulator import ABP_UPDATE_HOSTS
from repro.trace.records import TlsConnectionRecord, TraceRecords
from repro.web.ecosystem import Ecosystem

__all__ = ["abp_server_ips", "CaptureStats", "capture_stats", "easylist_download_clients"]


def abp_server_ips(ecosystem: Ecosystem) -> frozenset[str]:
    """IPs of the Adblock Plus filter-download servers.

    In the paper this list comes from resolving the ABP download
    hostnames with multiple resolvers before and after the capture
    (they did not change); here the ecosystem's stable resolution
    provides the same thing.
    """
    return frozenset(ecosystem.ip_for_host(host) for host in ABP_UPDATE_HOSTS)


@dataclass(frozen=True, slots=True)
class CaptureStats:
    """Table 2's per-trace summary row."""

    duration_s: float
    subscribers: int
    http_requests: int
    http_bytes: int
    tls_connections: int

    @property
    def duration_hours(self) -> float:
        return self.duration_s / 3600.0


def capture_stats(records: TraceRecords, *, subscribers: int) -> CaptureStats:
    """Summarize a trace the way Table 2 reports data sets."""
    if records.http:
        first = min(record.ts for record in records.http)
        last = max(record.ts for record in records.http)
        duration = last - first
    else:
        duration = 0.0
    return CaptureStats(
        duration_s=duration,
        subscribers=subscribers,
        http_requests=len(records.http),
        http_bytes=records.total_http_bytes,
        tls_connections=len(records.tls),
    )


def easylist_download_clients(
    tls_records: list[TlsConnectionRecord], abp_ips: frozenset[str]
) -> set[str]:
    """Client IPs (households) with at least one connection to an ABP
    filter server — §6.2's second indicator, which can only be
    attributed per household because HTTPS hides the User-Agent."""
    return {record.client for record in tls_records if record.server in abp_ips}
