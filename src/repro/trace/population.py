"""Residential broadband population model: households, NAT, devices.

§5-§6 describe the vantage point: DSL lines with NAT home gateways
multiplexing many devices onto one IP, identified by (IP, User-Agent)
pairs.  The paper finds >25 User-Agent strings per household on
average — browsers alongside consoles, smart TVs, updaters and mobile
apps — and restricts the ad-blocker analysis to annotated browsers.

This module generates that population with configurable ad-blocker
penetration per browser family (ABP is harder to install on Safari/IE,
§6.2) and ABP configuration shares (EasyPrivacy adoption ~13%,
acceptable-ads opt-out ~20%, §6.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.profiles import BrowserProfile
from repro.filterlist.lists import ACCEPTABLE_ADS, EASYLIST, EASYPRIVACY
from repro.http.useragent import BrowserFamily

__all__ = ["Device", "Household", "PopulationConfig", "generate_population"]


# ---------------------------------------------------------------------------
# User-Agent string factories per device type.

_FIREFOX_UA = (
    "Mozilla/5.0 (Windows NT {nt}; rv:{v}.0) Gecko/20100101 Firefox/{v}.0"
)
_CHROME_UA = (
    "Mozilla/5.0 (Windows NT {nt}) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chrome/{v}.0.{b}.100 Safari/537.36"
)
_IE_UA = "Mozilla/5.0 (Windows NT {nt}; Trident/7.0; rv:11.0) like Gecko"
_IE_OLD_UA = "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT {nt})"
_SAFARI_UA = (
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_{minor}) AppleWebKit/600.{b}.1 "
    "(KHTML, like Gecko) Version/8.0.{b} Safari/600.{b}.1"
)
_IPHONE_UA = (
    "Mozilla/5.0 (iPhone; CPU iPhone OS 8_{minor} like Mac OS X) AppleWebKit/600.1.4 "
    "(KHTML, like Gecko) Version/8.0 Mobile/12F70 Safari/600.1.4"
)
_ANDROID_UA = (
    "Mozilla/5.0 (Linux; Android 5.{minor}; SM-G900F) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/{v}.0.{b}.90 Mobile Safari/537.36"
)

_NONBROWSER_UAS = (
    "PlayStation 4 3.11",
    "Mozilla/5.0 (PLAYSTATION 3; 4.76)",
    "Opera/9.80 (Linux mips; U; HbbTV/1.1.1) SmartTV",
    "Roku/DVP-6.2",
    "Microsoft-CryptoAPI/6.1",
    "Avast Antivirus update agent",
    "Dalvik/1.6.0 (Linux; U; Android 4.4.2)",
    "CFNetwork/711.3.18 Darwin/14.0.0",
    "okhttp/2.4.0",
    "Spotify/1.0.9 Linux",
    "VLC/2.2.1 LibVLC/2.2.1",
    "iTunes/12.2 (Macintosh; OS X 10.10.4)",
    "Valve/Steam HTTP Client 1.0",
    "WhatsApp/2.12.176 Android",
    "Windows-Update-Agent/7.6",
)


def _browser_ua(family: BrowserFamily, rng: random.Random) -> str:
    if family == BrowserFamily.FIREFOX:
        return _FIREFOX_UA.format(nt=rng.choice(["6.1", "6.3", "10.0"]), v=rng.randrange(36, 40))
    if family == BrowserFamily.CHROME:
        return _CHROME_UA.format(
            nt=rng.choice(["6.1", "6.3", "10.0"]),
            v=rng.randrange(41, 45),
            b=rng.randrange(2000, 2500),
        )
    if family == BrowserFamily.IE:
        template = _IE_UA if rng.random() < 0.7 else _IE_OLD_UA
        return template.format(nt=rng.choice(["6.1", "6.3"]))
    if family == BrowserFamily.SAFARI:
        return _SAFARI_UA.format(minor=rng.randrange(8, 11), b=rng.randrange(1, 8))
    if family == BrowserFamily.MOBILE:
        if rng.random() < 0.5:
            return _IPHONE_UA.format(minor=rng.randrange(1, 4))
        return _ANDROID_UA.format(
            minor=rng.randrange(0, 2), v=rng.randrange(40, 44), b=rng.randrange(2000, 2400)
        )
    return _NONBROWSER_UAS[rng.randrange(len(_NONBROWSER_UAS))]


# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Device:
    """One end device behind a household NAT."""

    device_id: str
    household_id: int
    user_agent: str
    family: BrowserFamily
    is_browser: bool
    profile: BrowserProfile
    activity: float  # relative page-view rate (heavy-tailed)
    night_owl: bool = False  # flatter diurnal curve (§7.1 discussion)
    bootstrap_offset_s: float = 0.0  # when the device first comes up
    low_ad_diet: bool = False  # browsing skews to low-ad categories


@dataclass(slots=True)
class Household:
    """One DSL line: a NAT IP shared by several devices."""

    household_id: int
    ip: str
    devices: list[Device] = field(default_factory=list)
    # An ad-blocking proxy/middlebox filters ALL of this household's
    # traffic (no per-device extension, no ABP server contacts).
    proxy_blocker: bool = False

    @property
    def has_abp_device(self) -> bool:
        return any(device.profile.has_abp for device in self.devices)


@dataclass(slots=True)
class PopulationConfig:
    """Knobs of :func:`generate_population`.

    Ad-blocker penetration defaults follow §6.2's findings: ~30% of
    Firefox/Chrome, markedly less for Safari/IE (cumbersome install),
    little on mobile.  ABP configuration shares follow §6.3:
    EasyPrivacy adoption ~13%, acceptable-ads opt-out ~20%.
    """

    n_households: int = 200
    seed: int = 11
    mean_devices: float = 4.2
    # Ad-block adoption is household-correlated: the same person
    # installs the extension on every browser they use.  A household
    # "adopts" with `household_abp_rate`; within adopting households
    # each browser gets ABP with the per-family rate (install friction
    # orders Firefox/Chrome > Safari > IE > mobile, §6.2).
    household_abp_rate: float = 0.30
    abp_rate_by_family: dict[str, float] = field(
        default_factory=lambda: {
            BrowserFamily.FIREFOX.value: 0.35,
            BrowserFamily.CHROME.value: 0.33,
            BrowserFamily.SAFARI.value: 0.18,
            BrowserFamily.IE.value: 0.09,
            BrowserFamily.MOBILE.value: 0.03,
        }
    )
    # Ad-block users skew tech-savvy and more active: among *active*
    # browsers they are overrepresented relative to the population.
    abp_activity_multiplier: float = 2.2
    ghostery_rate: float = 0.03
    easyprivacy_share: float = 0.13
    acceptable_ads_optout_share: float = 0.15
    activity_pareto_alpha: float = 1.3
    night_owl_share_abp: float = 0.45
    night_owl_share_plain: float = 0.20
    # Devices whose browsing skews to low-ad categories (streaming,
    # search, reference): ad-blocker lookalikes, the paper's type-D
    # explanation ("requested content from sites with few ads", §6.2).
    low_ad_diet_share: float = 0.30
    # Chance that a sibling browser reuses an earlier device's exact
    # User-Agent string (same OS + browser build in one home): the two
    # devices collapse into ONE (IP, UA) pair at the vantage point —
    # the paper's other type-B mechanism ("many users in the same
    # household, some using ABP and others not").
    ua_collision_share: float = 0.08
    # Households behind an ad-blocking middlebox/proxy: every device's
    # traffic is filtered regardless of installed extensions — §10's
    # overestimation confound ("confusing Adblock Plus instances with
    # ad blocking proxies will lead to overestimation").
    adblock_proxy_share: float = 0.01


_FAMILY_WEIGHTS: tuple[tuple[BrowserFamily, float], ...] = (
    (BrowserFamily.FIREFOX, 0.30),
    (BrowserFamily.CHROME, 0.22),
    (BrowserFamily.IE, 0.07),
    (BrowserFamily.SAFARI, 0.12),
    (BrowserFamily.MOBILE, 0.29),
)


def _abp_profile(config: PopulationConfig, rng: random.Random) -> BrowserProfile:
    """Draw an ABP configuration per §6.3's adoption shares.

    Privacy-conscious users who add EasyPrivacy overwhelmingly also
    opt out of the acceptable-ads whitelist — which is what keeps
    EasyPrivacy subscribers "quiet" in the paper's estimator even
    though whitelisted beacons can match EasyPrivacy rules (§7.3).
    """
    lists = [EASYLIST]
    has_easyprivacy = rng.random() < config.easyprivacy_share
    if has_easyprivacy:
        lists.append(EASYPRIVACY)
    optout = config.acceptable_ads_optout_share if not has_easyprivacy else 0.75
    if rng.random() >= optout:
        lists.append(ACCEPTABLE_ADS)
    return BrowserProfile("AdBP-user", abp_lists=tuple(lists))


def generate_population(config: PopulationConfig | None = None) -> list[Household]:
    """Generate the household/device population deterministically."""
    config = config or PopulationConfig()
    rng = random.Random(config.seed)
    vanilla = BrowserProfile("Vanilla")
    nonbrowser = BrowserProfile("NonBrowser")
    from repro.browser.ghostery import GhosteryCategory

    ghostery_profile = BrowserProfile(
        "Ghostery-user",
        ghostery_categories=(GhosteryCategory.ADVERTISING, GhosteryCategory.ANALYTICS),
    )

    families = [family for family, _ in _FAMILY_WEIGHTS]
    family_weights = [weight for _, weight in _FAMILY_WEIGHTS]

    households: list[Household] = []
    for household_id in range(config.n_households):
        ip = f"10.{(household_id >> 16) & 255}.{(household_id >> 8) & 255}.{household_id & 255}"
        household = Household(
            household_id=household_id,
            ip=ip,
            proxy_blocker=rng.random() < config.adblock_proxy_share,
        )

        n_browsers = max(1, round(rng.gauss(config.mean_devices * 0.6, 1.0)))
        n_other = max(0, round(rng.gauss(config.mean_devices * 0.4, 1.2)))
        household_adopts = rng.random() < config.household_abp_rate
        browser_families = rng.choices(families, weights=family_weights, k=n_browsers)
        # The adopter's primary browser definitely runs ABP; sibling
        # browsers only per family rate — mixed households are the
        # norm (the paper's type-B explanation, §6.2).  The primary
        # browser skews to the low-friction families (Firefox/Chrome).
        primary_index = -1
        if household_adopts:
            friction = [
                config.abp_rate_by_family.get(family.value, 0.0) + 0.01
                for family in browser_families
            ]
            primary_index = rng.choices(range(n_browsers), weights=friction)[0]

        for index in range(n_browsers):
            family = browser_families[index]
            abp_rate = (
                config.abp_rate_by_family.get(family.value, 0.0) if household_adopts else 0.0
            )
            roll = rng.random()
            if household_adopts and index == primary_index:
                profile = _abp_profile(config, rng)
            elif roll < abp_rate:
                profile = _abp_profile(config, rng)
            elif roll < abp_rate + config.ghostery_rate:
                profile = ghostery_profile
            else:
                profile = vanilla
            night_owl_share = (
                config.night_owl_share_abp
                if profile.has_adblocker
                else config.night_owl_share_plain
            )
            activity = rng.paretovariate(config.activity_pareto_alpha) * 0.3
            if profile.has_abp:
                activity *= config.abp_activity_multiplier
            # Sibling devices may run the identical browser build: at
            # the vantage point the two devices merge into one pair.
            user_agent = _browser_ua(family, rng)
            same_family = [
                d for d in household.devices if d.is_browser and d.family == family
            ]
            if same_family and rng.random() < config.ua_collision_share:
                user_agent = same_family[0].user_agent
            household.devices.append(
                Device(
                    device_id=f"h{household_id}b{index}",
                    household_id=household_id,
                    user_agent=user_agent,
                    family=family,
                    is_browser=True,
                    profile=profile,
                    activity=activity,
                    night_owl=rng.random() < night_owl_share,
                    # Browser last (re)started up to a day before the
                    # capture window — drives which ABP list downloads
                    # fall inside the trace (§3.2).
                    bootstrap_offset_s=rng.uniform(-86400.0, 3600.0),
                    low_ad_diet=rng.random() < config.low_ad_diet_share,
                )
            )
        for index in range(n_other):
            household.devices.append(
                Device(
                    device_id=f"h{household_id}x{index}",
                    household_id=household_id,
                    user_agent=_NONBROWSER_UAS[rng.randrange(len(_NONBROWSER_UAS))],
                    family=BrowserFamily.OTHER,
                    is_browser=False,
                    profile=nonbrowser,
                    activity=rng.paretovariate(config.activity_pareto_alpha) * 0.25,
                    bootstrap_offset_s=rng.uniform(-86400.0, 3600.0),
                )
            )
        households.append(household)
    return households
