"""Crash injection for the durable-runs equivalence tests.

The checkpoint subsystem's correctness claim — *a run killed anywhere
and resumed is byte-identical to an uninterrupted run* — is only
testable if runs can be killed at exact, reproducible points.
:class:`CrashInjector` counts records as the durable runner feeds them
and aborts the process after record N.

``HARD`` mode calls :func:`os._exit`, which skips ``atexit`` handlers,
buffered-stream flushing and ``finally`` blocks — the closest
in-process stand-in for a SIGKILL/OOM kill, and the mode the
subprocess test driver and the CI crash matrix use.  ``RAISE`` mode
raises :class:`InjectedCrash` instead, for in-process tests that want
to observe state after the "crash".
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

__all__ = ["CrashInjector", "CrashMode", "InjectedCrash", "CRASH_EXIT_CODE"]

# Distinctive exit code for an injected hard crash, so test drivers can
# tell "crashed as planned" (87) from real failures (1/2/tracebacks).
CRASH_EXIT_CODE = 87


class InjectedCrash(RuntimeError):
    """Raised by :class:`CrashInjector` in ``RAISE`` mode."""


class CrashMode(str, enum.Enum):
    HARD = "hard"  # os._exit: no flush, no cleanup — simulates SIGKILL/OOM
    RAISE = "raise"  # exception: unwinds normally — for in-process tests

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class CrashInjector:
    """Aborts the process after ``after_records`` ticks.

    The durable runner ticks once per input record *after* that
    record's effects (output rows, possible checkpoint) have been
    applied, so ``after_records=N`` means "die with exactly N records
    processed" — which may be mid-interval or exactly on a checkpoint
    boundary, both of which resume must survive.
    """

    after_records: int
    mode: CrashMode = CrashMode.HARD
    seen: int = field(default=0, init=False)

    def tick(self) -> None:
        self.seen += 1
        if self.seen >= self.after_records:
            if self.mode is CrashMode.HARD:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(f"injected crash after {self.seen} records")
