"""Crash and fault injection for the resilience equivalence tests.

The checkpoint subsystem's correctness claim — *a run killed anywhere
and resumed is byte-identical to an uninterrupted run* — is only
testable if runs can be killed at exact, reproducible points.
:class:`CrashInjector` counts records as the durable runner feeds them
and aborts the process after record N.

``HARD`` mode calls :func:`os._exit`, which skips ``atexit`` handlers,
buffered-stream flushing and ``finally`` blocks — the closest
in-process stand-in for a SIGKILL/OOM kill, and the mode the
subprocess test driver and the CI crash matrix use.  ``RAISE`` mode
raises :class:`InjectedCrash` instead, for in-process tests that want
to observe state after the "crash".

The *worker* fault layer (DESIGN.md §12) extends the same idea to the
shard pool: :class:`WorkerFaultInjector` arms per-worker faults parsed
from a chaos spec (the ``REPRO_CHAOS`` env var or ``--chaos``) and
fires them inside the worker run loop, so the supervision tests can
prove that a run with injected worker faults and retries enabled
produces output byte-identical to a fault-free run.  Spec grammar —
semicolon-separated faults, colon-separated ``key=value`` params::

    crash-hard:worker=1:after=2500;hang:worker=2:after=4000
    hang:worker=0:after=100:attempt=any        # fires on every respawn
    slow:worker=3:after=0:delay=0.01:for=500   # stays alive, just slow

``attempt`` defaults to 0 (first incarnation only), so a respawned
shard replays clean — which is exactly what the headline equivalence
property needs; ``attempt=any`` makes the fault permanent, for the
retries-exhausted / degrade paths.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field

__all__ = [
    "CrashInjector",
    "CrashMode",
    "InjectedCrash",
    "CRASH_EXIT_CODE",
    "CHAOS_ENV",
    "ChaosSpecError",
    "FaultAction",
    "ServeActions",
    "ServeFault",
    "ServeFaultInjector",
    "ServeFaultMode",
    "WorkerFault",
    "WorkerFaultInjector",
    "WorkerFaultMode",
    "parse_chaos",
    "parse_serve_chaos",
]

# Distinctive exit code for an injected hard crash, so test drivers can
# tell "crashed as planned" (87) from real failures (1/2/tracebacks).
# Registered centrally; this module's historical name is a re-export.
from repro.exitcodes import EXIT_CHAOS_CRASH as CRASH_EXIT_CODE


class InjectedCrash(RuntimeError):
    """Raised by :class:`CrashInjector` in ``RAISE`` mode."""


class CrashMode(str, enum.Enum):
    HARD = "hard"  # os._exit: no flush, no cleanup — simulates SIGKILL/OOM
    RAISE = "raise"  # exception: unwinds normally — for in-process tests

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class CrashInjector:
    """Aborts the process after ``after_records`` ticks.

    The durable runner ticks once per input record *after* that
    record's effects (output rows, possible checkpoint) have been
    applied, so ``after_records=N`` means "die with exactly N records
    processed" — which may be mid-interval or exactly on a checkpoint
    boundary, both of which resume must survive.
    """

    after_records: int
    mode: CrashMode = CrashMode.HARD
    seen: int = field(default=0, init=False)

    def tick(self) -> None:
        self.seen += 1
        if self.seen >= self.after_records:
            if self.mode is CrashMode.HARD:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(f"injected crash after {self.seen} records")


# ---------------------------------------------------------------------------
# Worker fault modes (DESIGN.md §12)


# Environment variable the shard workers read their chaos spec from
# (the CLI's hidden --chaos flag sets the same spec explicitly).
CHAOS_ENV = "REPRO_CHAOS"

# `attempt=any`: the fault re-arms on every incarnation of the shard.
ANY_ATTEMPT = -1

_SLOW_DEFAULT_DELAY_S = 0.02
_SLOW_DEFAULT_RECORDS = 200
_HANG_NAP_S = 60.0


class ChaosSpecError(ValueError):
    """A chaos spec string failed to parse."""


class WorkerFaultMode(str, enum.Enum):
    CRASH_HARD = "crash-hard"  # os._exit mid-shard, like an OOM kill
    HANG = "hang"  # stop making progress (and heartbeating) forever
    SLOW = "slow"  # stay alive and correct, just pathologically slow
    GARBAGE = "garbage-message"  # emit an unintelligible queue message

    def __str__(self) -> str:
        return self.value


class FaultAction(enum.Enum):
    """What the worker run loop must do on behalf of the injector.

    Hang and slow execute inside :meth:`WorkerFaultInjector.tick`
    itself; crash and garbage need the worker's queue plumbing — a
    producer must never die while its queue feeder thread may hold the
    shared write lock (that would silently block every other worker's
    ``put``), so the worker flushes the feeder before ``os._exit`` and
    quiesces after emitting garbage.
    """

    CRASH = "crash"
    GARBAGE = "garbage"


@dataclass(slots=True)
class WorkerFault:
    """One armed fault: fire ``mode`` in ``worker`` after ``after`` records."""

    mode: WorkerFaultMode
    worker: int
    after: int = 0
    attempt: int = 0  # which incarnation fires; ANY_ATTEMPT = all of them
    delay_s: float = _SLOW_DEFAULT_DELAY_S  # slow: per-record stall
    records: int = _SLOW_DEFAULT_RECORDS  # slow: how many records stay slow

    def arms(self, worker_id: int, attempt: int) -> bool:
        return self.worker == worker_id and (
            self.attempt == ANY_ATTEMPT or self.attempt == attempt
        )


def _split_clauses(spec: str) -> list[tuple[str, dict[str, str], str]]:
    """Shared grammar front end: ``mode:key=value:...;...`` clauses."""
    clauses = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        head, _, tail = clause.partition(":")
        params: dict[str, str] = {}
        if tail:
            for pair in tail.split(":"):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ChaosSpecError(f"malformed fault param {pair!r} in {clause!r}")
                params[key.strip()] = value.strip()
        clauses.append((head.strip(), params, clause))
    return clauses


def parse_chaos(spec: str) -> list[WorkerFault]:
    """Parse a chaos spec string (see module docstring for the grammar)."""
    faults = []
    for head, params, clause in _split_clauses(spec):
        try:
            mode = WorkerFaultMode(head)
        except ValueError:
            raise ChaosSpecError(
                f"unknown fault mode {head!r} (expected one of "
                f"{', '.join(m.value for m in WorkerFaultMode)})"
            ) from None
        if "worker" not in params:
            raise ChaosSpecError(f"fault {clause!r} needs worker=<id>")
        try:
            attempt_raw = params.pop("attempt", "0")
            fault = WorkerFault(
                mode=mode,
                worker=int(params.pop("worker")),
                after=int(params.pop("after", "0")),
                attempt=ANY_ATTEMPT if attempt_raw == "any" else int(attempt_raw),
                delay_s=float(params.pop("delay", str(_SLOW_DEFAULT_DELAY_S))),
                records=int(params.pop("for", str(_SLOW_DEFAULT_RECORDS))),
            )
        except ValueError as exc:
            raise ChaosSpecError(f"bad fault param in {clause!r}: {exc}") from None
        if params:
            raise ChaosSpecError(
                f"unknown fault param(s) {sorted(params)} in {clause!r}"
            )
        faults.append(fault)
    return faults


class WorkerFaultInjector:
    """Fires armed faults from inside a shard worker's run loop.

    The worker calls :meth:`tick` once per parsed record.  Hang
    executes here (deliberately stopping the heartbeat clock along with
    everything else); slow stalls each of the next ``records`` ticks by
    ``delay_s``; crash returns :data:`FaultAction.CRASH` and garbage
    returns :data:`FaultAction.GARBAGE` exactly once, because both need
    the worker's own queue plumbing (see :class:`FaultAction`).
    """

    def __init__(self, faults: list[WorkerFault]) -> None:
        self.faults = faults
        self.seen = 0
        self._slow_until: int | None = None
        self._slow_delay = 0.0
        self._garbage_sent = False

    @classmethod
    def for_worker(
        cls, spec: str | None, worker_id: int, attempt: int
    ) -> "WorkerFaultInjector | None":
        """The injector for one worker incarnation, or ``None`` if no
        fault in ``spec`` arms for it."""
        if not spec:
            return None
        armed = [fault for fault in parse_chaos(spec) if fault.arms(worker_id, attempt)]
        return cls(armed) if armed else None

    def tick(self) -> FaultAction | None:
        self.seen += 1
        if self._slow_until is not None and self.seen <= self._slow_until:
            time.sleep(self._slow_delay)
        for fault in self.faults:
            if self.seen != max(1, fault.after):
                continue
            if fault.mode is WorkerFaultMode.CRASH_HARD:
                return FaultAction.CRASH
            if fault.mode is WorkerFaultMode.HANG:
                self.nap()
            if fault.mode is WorkerFaultMode.SLOW:
                self._slow_until = self.seen + fault.records
                self._slow_delay = fault.delay_s
            elif fault.mode is WorkerFaultMode.GARBAGE and not self._garbage_sent:
                self._garbage_sent = True
                return FaultAction.GARBAGE
        return None

    @staticmethod
    def nap() -> None:
        """Stop making progress — and heartbeating — forever."""
        while True:
            time.sleep(_HANG_NAP_S)


# ---------------------------------------------------------------------------
# Serve-path fault modes (DESIGN.md §13)


class ServeFaultMode(str, enum.Enum):
    """Faults the ``repro serve`` daemon injects into its own request path.

    Same ``REPRO_CHAOS`` grammar as the worker faults, different modes::

        slow-handler:after=0:delay=0.05:for=100   # stall each classify
        reload-storm:after=10:every=5:for=20      # reload every 5 requests
        malformed-body:after=3:every=7:for=10     # corrupt request bodies

    ``slow-handler`` drives the admission queue into backpressure and
    deadline territory; ``reload-storm`` exercises engine swap under
    load; ``malformed-body`` proves client-error accounting stays exact.
    """

    SLOW_HANDLER = "slow-handler"
    RELOAD_STORM = "reload-storm"
    MALFORMED_BODY = "malformed-body"

    def __str__(self) -> str:
        return self.value


_SERVE_SLOW_DEFAULT_DELAY_S = 0.05
_SERVE_DEFAULT_RECORDS = 100


@dataclass(slots=True)
class ServeFault:
    """One armed serve fault, counted in admitted classify requests.

    ``slow-handler`` is active for requests ``after < n <= after+records``;
    the periodic modes fire on every ``every``-th request in that window.
    """

    mode: ServeFaultMode
    after: int = 0
    every: int = 1
    delay_s: float = _SERVE_SLOW_DEFAULT_DELAY_S
    records: int = _SERVE_DEFAULT_RECORDS

    def active(self, seen: int) -> bool:
        if not self.after < seen <= self.after + self.records:
            return False
        if self.mode is ServeFaultMode.SLOW_HANDLER:
            return True
        return (seen - self.after) % max(1, self.every) == 0


@dataclass(slots=True)
class ServeActions:
    """What the request path must do on behalf of the injector."""

    delay_s: float = 0.0
    reload: bool = False
    mangle_body: bool = False


def parse_serve_chaos(spec: str) -> list[ServeFault]:
    """Parse a serve chaos spec (see :class:`ServeFaultMode`)."""
    faults = []
    for head, params, clause in _split_clauses(spec):
        try:
            mode = ServeFaultMode(head)
        except ValueError:
            raise ChaosSpecError(
                f"unknown serve fault mode {head!r} (expected one of "
                f"{', '.join(m.value for m in ServeFaultMode)})"
            ) from None
        try:
            fault = ServeFault(
                mode=mode,
                after=int(params.pop("after", "0")),
                every=int(params.pop("every", "1")),
                delay_s=float(params.pop("delay", str(_SERVE_SLOW_DEFAULT_DELAY_S))),
                records=int(params.pop("for", str(_SERVE_DEFAULT_RECORDS))),
            )
        except ValueError as exc:
            raise ChaosSpecError(f"bad fault param in {clause!r}: {exc}") from None
        if params:
            raise ChaosSpecError(
                f"unknown fault param(s) {sorted(params)} in {clause!r}"
            )
        if fault.every < 1 or fault.records < 1:
            raise ChaosSpecError(f"every/for must be >= 1 in {clause!r}")
        faults.append(fault)
    return faults


class ServeFaultInjector:
    """Fires armed serve faults from the daemon's admission path.

    The app calls :meth:`observe` once per admitted classify request
    (before the body is parsed) and applies the returned actions: sleep
    ``delay_s`` inside the handler, schedule an engine reload, corrupt
    the request body before JSON decoding.  Unlike the worker injector
    this never kills anything — the serve robustness claim is about
    exact accounting, not crash recovery.
    """

    def __init__(self, faults: list[ServeFault]) -> None:
        self.faults = faults
        self.seen = 0

    @classmethod
    def from_spec(cls, spec: str | None) -> "ServeFaultInjector | None":
        if not spec:
            return None
        faults = parse_serve_chaos(spec)
        return cls(faults) if faults else None

    def observe(self) -> ServeActions:
        self.seen += 1
        actions = ServeActions()
        for fault in self.faults:
            if not fault.active(self.seen):
                continue
            if fault.mode is ServeFaultMode.SLOW_HANDLER:
                actions.delay_s += fault.delay_s
            elif fault.mode is ServeFaultMode.RELOAD_STORM:
                actions.reload = True
            elif fault.mode is ServeFaultMode.MALFORMED_BODY:
                actions.mangle_body = True
        return actions

    @staticmethod
    def mangle(body: bytes) -> bytes:
        """Deterministically corrupt a request body (drives the 400 path)."""
        return b"\xff\x00<not-json>" + body[: len(body) // 2]
