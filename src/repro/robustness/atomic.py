"""Atomic file writes: temp + fsync + rename, never a torn output.

Every durable artifact in the repo — traces, classification TSVs,
quarantine sidecars, checkpoints, manifests — goes through
:func:`atomic_writer`, so a crash mid-write leaves either the previous
complete file or nothing, never a truncated hybrid (DESIGN.md §8).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator

__all__ = ["atomic_writer", "fsync_dir", "replace_atomic"]


def fsync_dir(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best-effort: some filesystems/platforms refuse ``open()`` on a
    directory; the rename itself is still atomic there.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_writer(
    path: str | os.PathLike,
    *,
    mode: str = "w",
    encoding: str | None = None,
    sync: bool = True,
) -> Iterator[IO]:
    """Context manager yielding a stream that atomically replaces ``path``.

    The stream writes to a temporary file in the destination directory;
    on clean exit it is flushed, fsync'd (unless ``sync=False``) and
    renamed over ``path`` in one step.  On an exception the temporary
    file is removed and the previous ``path`` contents are untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    if "b" not in mode and encoding is None:
        encoding = "utf-8"
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as stream:
            yield stream
            stream.flush()
            if sync:
                os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    except BaseException:  # staticcheck: ok[RC002] cleanup-and-reraise, nothing swallowed
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    if sync:
        fsync_dir(directory)


def replace_atomic(src: str | os.PathLike, dst: str | os.PathLike, *, sync: bool = True) -> None:
    """Atomically move a finished temp/part file over its final path."""
    src, dst = os.fspath(src), os.fspath(dst)
    os.replace(src, dst)
    if sync:
        fsync_dir(os.path.dirname(dst) or ".")
