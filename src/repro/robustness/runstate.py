"""Run manifest + the durable (checkpoint/resume) run driver.

DESIGN.md §8.  A *durable run* wraps the ingestion→classification loop
(`repro classify` / `repro usage` / `repro report`) so that a crash —
OOM kill, deploy, power loss — costs at most one checkpoint interval:

* a **run manifest** (``manifest.json``) pins what the run *is*: the
  hash of every classification-relevant parameter, a fingerprint of the
  filter lists, and the input file's identity (size + content-hash
  prefix).  ``--resume`` recomputes all three and refuses to continue
  on any mismatch, because resuming half a run against a different
  config or a mutated input silently produces garbage;
* periodic **checkpoints** (:mod:`repro.robustness.checkpoint`) freeze
  the input byte/line offset, the streaming classifier state, the
  health counters and the sink positions;
* outputs are written to ``*.part`` files inside the checkpoint
  directory and atomically renamed to their final paths only when the
  run completes, so a crashed run never shadows a previous good output;
* on resume, part files are truncated back to the positions recorded in
  the newest *valid* checkpoint and the input is re-read from its
  offset — replaying the tail deterministically, which is what makes a
  resumed run byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.pipeline import (
    AdClassificationPipeline,
    ClassifiedRequest,
    StreamingClassifier,
)
from repro.core.users import UserKey, UserStats
from repro.http.log import SeekableLogReader
from repro.robustness.atomic import atomic_writer, replace_atomic
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.crash import CrashInjector
from repro.robustness.health import PipelineHealth
from repro.robustness.policy import ErrorPolicy, RunInterrupted
from repro.robustness.quarantine import QuarantineWriter

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "ManifestMismatch",
    "RunManifest",
    "DurableRun",
    "RunResult",
    "RunSink",
    "ClassifySink",
    "UserStatsSink",
    "TrafficSink",
    "classification_row",
    "fingerprint_params",
    "fingerprint_lists",
]


def classification_row(entry: ClassifiedRequest) -> str:
    """The one `repro classify` output row format (no trailing newline).

    Every writer — the serial in-memory path, the durable sink, and the
    shard-parallel workers — renders through this function, so "byte-
    identical output across execution plans" (DESIGN.md §10) cannot
    drift into three subtly different formatters.
    """
    return "\t".join(
        [
            str(entry.record.ts),
            entry.record.client,
            entry.record.url,
            entry.page_url,
            "1" if entry.is_ad else "0",
            entry.blacklist_name or "-",
            "1" if entry.is_whitelisted else "0",
        ]
    )

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
DEFAULT_CHECKPOINT_EVERY = 10_000

# Identity hash covers the first MiB: enough to catch truncation,
# regeneration and in-place edits without re-reading a multi-GB trace
# on every checkpoint resume (size changes catch appends).
_INPUT_HEAD_BYTES = 1 << 20


def fingerprint_params(params: dict) -> str:
    """Order-independent hash of the classification-relevant CLI params."""
    canonical = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def fingerprint_lists(lists: dict) -> str:
    """Hash of the filter-list contents the run classifies against."""
    digest = hashlib.sha256()
    for name in sorted(lists):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(lists[name].to_text().encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _input_identity(path: str) -> tuple[int, str]:
    size = os.path.getsize(path)
    with open(path, "rb") as stream:
        head = stream.read(_INPUT_HEAD_BYTES)
    return size, hashlib.sha256(head).hexdigest()[:16]


class ManifestMismatch(Exception):
    """``--resume`` was pointed at a run that is not this run."""

    def __init__(self, diagnostics: list[str]):
        self.diagnostics = diagnostics
        super().__init__(
            "run manifest mismatch: " + "; ".join(diagnostics)
        )


@dataclass(slots=True)
class RunManifest:
    """What a durable run *is* — everything that must match on resume."""

    command: str
    params: dict
    config_hash: str
    lists_fingerprint: str
    input_path: str
    input_size: int
    input_head_sha256: str
    output_path: str | None
    quarantine_path: str | None
    version: int = MANIFEST_VERSION

    @classmethod
    def build(
        cls,
        *,
        command: str,
        params: dict,
        lists: dict,
        input_path: str,
        output_path: str | None,
        quarantine_path: str | None,
    ) -> "RunManifest":
        size, head = _input_identity(input_path)
        return cls(
            command=command,
            params=dict(params),
            config_hash=fingerprint_params(params),
            lists_fingerprint=fingerprint_lists(lists),
            input_path=os.path.abspath(input_path),
            input_size=size,
            input_head_sha256=head,
            output_path=os.path.abspath(output_path) if output_path else None,
            quarantine_path=os.path.abspath(quarantine_path) if quarantine_path else None,
        )

    def save(self, directory: str) -> None:
        with atomic_writer(os.path.join(directory, MANIFEST_NAME)) as stream:
            json.dump(dataclasses.asdict(self), stream, indent=2, sort_keys=True)
            stream.write("\n")

    @classmethod
    def load(cls, directory: str) -> "RunManifest":
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as stream:
                raw = json.load(stream)
        except FileNotFoundError:
            raise ManifestMismatch(
                [f"no manifest at {path} — nothing to resume (run without --resume first)"]
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestMismatch([f"unreadable manifest at {path}: {exc}"]) from None
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in raw.items() if key in known})

    def mismatches(self, current: "RunManifest") -> list[str]:
        """Human-readable diffs between the saved run and the current one."""
        diagnostics: list[str] = []
        if self.version != current.version:
            diagnostics.append(f"manifest version {self.version} != {current.version}")
        if self.command != current.command:
            diagnostics.append(f"command '{self.command}' != '{current.command}'")
        if self.config_hash != current.config_hash:
            changed = [
                f"{key}: {self.params.get(key)!r} -> {current.params.get(key)!r}"
                for key in sorted(set(self.params) | set(current.params))
                if self.params.get(key) != current.params.get(key)
            ]
            diagnostics.append("config changed (" + (", ".join(changed) or "params differ") + ")")
        if self.lists_fingerprint != current.lists_fingerprint:
            diagnostics.append(
                f"filter-list fingerprint {self.lists_fingerprint} != {current.lists_fingerprint}"
            )
        if self.input_path != current.input_path:
            diagnostics.append(f"input path '{self.input_path}' != '{current.input_path}'")
        if (self.input_size, self.input_head_sha256) != (
            current.input_size,
            current.input_head_sha256,
        ):
            diagnostics.append(
                f"input file changed on disk (size {self.input_size} -> {current.input_size}, "
                f"head hash {self.input_head_sha256} -> {current.input_head_sha256})"
            )
        if self.output_path != current.output_path:
            diagnostics.append(f"output path '{self.output_path}' != '{current.output_path}'")
        if self.quarantine_path != current.quarantine_path:
            diagnostics.append(
                f"quarantine path '{self.quarantine_path}' != '{current.quarantine_path}'"
            )
        return diagnostics


# ---------------------------------------------------------------------------
# Sinks: where released entries go.  A sink owns its .part file(s) and a
# primitive, resumable state (counters + byte positions).


class RunSink:
    """Base class for durable-run output sinks."""

    def begin(self, *, fresh: bool, state: dict | None) -> None:
        """Open part files; start from scratch or from checkpoint state."""

    def consume(self, entry: ClassifiedRequest) -> None:
        raise NotImplementedError

    def export_state(self) -> dict:
        """Flush + fsync, then snapshot counters and byte positions."""
        return {}

    def finalize(self) -> list[str]:
        """Fsync and atomically publish final outputs; returns their paths."""
        return []

    def close(self) -> None:
        pass


class ClassifySink(RunSink):
    """`repro classify`: per-request TSV rows plus the console counters."""

    HEADER = "#ts\tclient\turl\tpage\tis_ad\tblacklist\twhitelisted\n"

    def __init__(self, *, part_path: str | None = None, final_path: str | None = None):
        self.part_path = part_path
        self.final_path = final_path
        self.total = 0
        self.ads = 0
        self.whitelisted = 0
        self._file = None

    def begin(self, *, fresh: bool, state: dict | None) -> None:
        if self.part_path is None:
            if state is not None:
                self.total = state["total"]
                self.ads = state["ads"]
                self.whitelisted = state["whitelisted"]
            return
        if fresh:
            # staticcheck: ok[RC001] .part sink: published atomically by finalize()
            self._file = open(self.part_path, "wb")
            self._file.write(self.HEADER.encode("utf-8"))
        else:
            assert state is not None
            self.total = state["total"]
            self.ads = state["ads"]
            self.whitelisted = state["whitelisted"]
            # staticcheck: ok[RC001] resume rewinds the .part file to the checkpointed offset
            self._file = open(self.part_path, "r+b")
            self._file.truncate(state["pos"])
            self._file.seek(state["pos"])

    def consume(self, entry: ClassifiedRequest) -> None:
        self.consume_row(classification_row(entry), entry.is_ad, entry.is_whitelisted)

    def consume_row(self, row: str, is_ad: bool, is_whitelisted: bool) -> None:
        """Append one pre-rendered row (the shard-parallel entry point —
        workers render rows, the parent only interleaves and counts)."""
        self.total += 1
        if is_ad:
            self.ads += 1
        if is_whitelisted:
            self.whitelisted += 1
        if self._file is not None:
            self._file.write((row + "\n").encode("utf-8"))

    def export_state(self) -> dict:
        state = {"total": self.total, "ads": self.ads, "whitelisted": self.whitelisted}
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            state["pos"] = self._file.tell()
        return state

    def finalize(self) -> list[str]:
        if self._file is None or self.final_path is None:
            return []
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
        replace_atomic(self.part_path, self.final_path)
        return [self.final_path]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class UserStatsSink(RunSink):
    """`repro usage`: fold entries into per-user statistics (§6)."""

    def __init__(self):
        self.stats: dict[UserKey, UserStats] = {}
        self.total = 0
        self.total_ads = 0

    def begin(self, *, fresh: bool, state: dict | None) -> None:
        if state is not None:
            self.total = state["total"]
            self.total_ads = state["total_ads"]
            self.stats = {
                tuple(row[0]): UserStats(tuple(row[0]), *row[1:]) for row in state["stats"]
            }

    def consume(self, entry: ClassifiedRequest) -> None:
        self.total += 1
        if entry.is_ad:
            self.total_ads += 1
        stats = self.stats.get(entry.user)
        if stats is None:
            stats = UserStats(user=entry.user)
            self.stats[entry.user] = stats
        stats.add(entry)

    def export_state(self) -> dict:
        return {
            "total": self.total,
            "total_ads": self.total_ads,
            "stats": [dataclasses.astuple(stats) for stats in self.stats.values()],
        }


class TrafficSink(RunSink):
    """`repro report`: fold entries into the §7 traffic accumulator."""

    def __init__(self):
        from repro.analysis.traffic import TrafficAccumulator

        self.accumulator = TrafficAccumulator()

    def begin(self, *, fresh: bool, state: dict | None) -> None:
        if state is not None:
            from repro.analysis.traffic import TrafficAccumulator

            self.accumulator = TrafficAccumulator.from_state(state)

    def consume(self, entry: ClassifiedRequest) -> None:
        self.accumulator.add(entry)

    def export_state(self) -> dict:
        return self.accumulator.export_state()


# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RunResult:
    """Outcome of a durable run, for the CLI to render."""

    health: PipelineHealth
    records: int
    resumed_generation: int | None
    checkpoints_written: int
    quarantine_count: int
    quarantine_path: str | None
    output_paths: list[str] = field(default_factory=list)


class DurableRun:
    """Checkpointed ingestion→classification loop around a sink.

    The loop structure is::

        for record in seekable_reader:         # offset accounting
            for entry in classifier.feed(record):
                sink.consume(entry)
            every N records: checkpoint()      # atomic, checksummed
        for entry in classifier.finish():
            sink.consume(entry)
        finalize()                             # publish outputs atomically

    ``checkpoint()`` happens *between* input records, the only points
    where the combination (input offset, classifier state, sink
    positions) is consistent.
    """

    def __init__(
        self,
        *,
        directory: str,
        manifest: RunManifest,
        pipeline: AdClassificationPipeline,
        sink: RunSink,
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY,
        keep: int = 3,
        resume: bool = False,
        fixup_window: int | None = 1024,
        reorder_window: float | None = None,
        max_users: int | None = None,
        crash_injector: CrashInjector | None = None,
        log: Callable[[str], None] = lambda message: None,
    ):
        self.directory = directory
        self.manifest = manifest
        self.pipeline = pipeline
        self.sink = sink
        self.on_error = on_error
        self.checkpoint_every = checkpoint_every
        self.store = CheckpointStore(directory, keep=keep)
        self.resume = resume
        self.fixup_window = fixup_window
        self.reorder_window = reorder_window
        self.max_users = max_users
        self.crash_injector = crash_injector
        self.log = log

    # -- paths ------------------------------------------------------------

    @property
    def output_part(self) -> str:
        return os.path.join(self.directory, "output.part")

    @property
    def quarantine_part(self) -> str:
        return os.path.join(self.directory, "quarantine.part")

    # -- lifecycle --------------------------------------------------------

    def _prepare(self):
        """Validate/write the manifest; load the resume checkpoint if any."""
        os.makedirs(self.directory, exist_ok=True)
        if self.resume:
            saved = RunManifest.load(self.directory)
            diagnostics = saved.mismatches(self.manifest)
            if diagnostics:
                raise ManifestMismatch(diagnostics)
            checkpoint = self.store.latest()
            if checkpoint is not None:
                self.log(
                    f"resuming from checkpoint generation {checkpoint.generation} "
                    f"({checkpoint.payload['records_fed']} records already processed)"
                )
            else:
                self.log("no valid checkpoint found; restarting from the beginning")
            return checkpoint
        # Fresh run: the directory must not carry state from an older
        # run — a stale generation would otherwise be "resumed" later.
        for generation in self.store.generations():
            os.unlink(self.store.path_for(generation))
        self.manifest.save(self.directory)
        return None

    def _open_quarantine(self, checkpoint) -> QuarantineWriter | None:
        if self.on_error is not ErrorPolicy.QUARANTINE:
            return None
        if checkpoint is None:
            # staticcheck: ok[RC001] quarantine .part sink, atomically published on finish
            stream = open(self.quarantine_part, "wb")
        else:
            state = checkpoint.payload["quarantine"]
            # staticcheck: ok[RC001] resume rewinds the sidecar to the checkpointed offset
            stream = open(self.quarantine_part, "r+b")
            stream.truncate(state["pos"])
            stream.seek(state["pos"])
        writer = QuarantineWriter(stream, owns_stream=True)
        if checkpoint is not None:
            writer.restore_state(checkpoint.payload["quarantine"])
        return writer

    def _checkpoint_payload(
        self,
        *,
        records_fed: int,
        reader: SeekableLogReader,
        classifier: StreamingClassifier,
        health: PipelineHealth,
        quarantine: QuarantineWriter | None,
    ) -> dict:
        quarantine_state: dict = {"pos": 0, "count": 0, "wrote_header": False}
        if quarantine is not None:
            quarantine.sync()
            quarantine_state = quarantine.export_state()
            quarantine_state["pos"] = quarantine.tell()
        return {
            "records_fed": records_fed,
            "reader": {
                "offset": reader.offset,
                "line_no": reader.line_no,
                "header": reader.header,
            },
            "classifier": classifier.export_state(),
            "health": health.export_state(),
            "sink": self.sink.export_state(),
            "quarantine": quarantine_state,
        }

    # -- signals (DESIGN.md §12's contract, serial edition) ----------------

    def _install_signal_handlers(self) -> dict[int, Any] | None:
        """SIGINT/SIGTERM set a flag; the run loop raises RunInterrupted.

        Same contract as the parallel pool (DESIGN.md §12): the signal
        lands between records, a final checkpoint is cut, durable state
        stays resumable, and the CLI exits 130.  Handlers can only be
        installed from the main thread; elsewhere (tests driving runs
        from threads) interruption stays with the caller.
        """
        if threading.current_thread() is not threading.main_thread():
            return None

        def _flag(signum: int, frame: Any) -> None:
            self._interrupt = signum

        return {
            signum: signal.signal(signum, _flag)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }

    @staticmethod
    def _restore_signal_handlers(previous: dict[int, Any] | None) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def run(self) -> RunResult:
        checkpoint = self._prepare()
        health = (
            PipelineHealth.from_state(checkpoint.payload["health"])
            if checkpoint is not None
            else PipelineHealth()
        )
        quarantine = self._open_quarantine(checkpoint)
        reader = SeekableLogReader(
            self.manifest.input_path,
            on_error=self.on_error,
            health=health,
            quarantine=quarantine,
        )
        classifier = StreamingClassifier(
            self.pipeline,
            fixup_window=self.fixup_window,
            reorder_window=self.reorder_window,
            max_users=self.max_users,
            health=health,
        )
        records_fed = 0
        if checkpoint is not None:
            payload = checkpoint.payload
            records_fed = payload["records_fed"]
            reader.seek(**payload["reader"])
            classifier.restore_state(payload["classifier"])
            self.sink.begin(fresh=False, state=payload["sink"])
        else:
            self.sink.begin(fresh=True, state=None)

        checkpoints_written = 0
        self._interrupt: int | None = None
        previous_handlers = self._install_signal_handlers()
        try:
            for record in reader:
                for entry in classifier.feed(record):
                    self.sink.consume(entry)
                records_fed += 1
                if self.checkpoint_every and records_fed % self.checkpoint_every == 0:
                    self.store.save(
                        self._checkpoint_payload(
                            records_fed=records_fed,
                            reader=reader,
                            classifier=classifier,
                            health=health,
                            quarantine=quarantine,
                        )
                    )
                    checkpoints_written += 1
                if self._interrupt is not None:
                    # Between records is the one consistent cut point:
                    # checkpoint here so the interrupted tail costs zero
                    # replay, keep .part outputs and the sidecar, and
                    # let the CLI map this to exit 130.
                    self.store.save(
                        self._checkpoint_payload(
                            records_fed=records_fed,
                            reader=reader,
                            classifier=classifier,
                            health=health,
                            quarantine=quarantine,
                        )
                    )
                    self.log("interrupted between records; checkpoint saved")
                    raise RunInterrupted(self._interrupt)
                if self.crash_injector is not None:
                    self.crash_injector.tick()
            for entry in classifier.finish():
                self.sink.consume(entry)
            output_paths = list(self.sink.finalize())
            quarantine_path = None
            if quarantine is not None:
                quarantine.sync()
                quarantine.close()
                quarantine_path = self.manifest.quarantine_path
                replace_atomic(self.quarantine_part, quarantine_path)
            # The run is complete: drop the checkpoints so a later
            # --resume reruns from scratch instead of replaying a tail
            # into already-published outputs.
            for generation in self.store.generations():
                os.unlink(self.store.path_for(generation))
        finally:
            self._restore_signal_handlers(previous_handlers)
            reader.close()
            self.sink.close()
            if quarantine is not None:
                quarantine.close()
        return RunResult(
            health=health,
            records=records_fed,
            resumed_generation=checkpoint.generation if checkpoint is not None else None,
            checkpoints_written=checkpoints_written,
            quarantine_count=quarantine.count if quarantine is not None else 0,
            quarantine_path=quarantine_path,
            output_paths=output_paths,
        )
