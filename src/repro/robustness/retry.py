"""Retry with exponential backoff and deterministic jitter (DESIGN.md §12).

:class:`RetryPolicy` is the shared retry primitive for any subsystem
that must survive transient component failure — today the parallel
worker supervisor (:mod:`repro.parallel.supervision`), tomorrow the
``repro serve`` daemon's engine reloads.  It is a frozen value object:
the *decision* of whether an attempt may run (:meth:`allows`) and the
*delay* before it (:meth:`delay_before`) are pure functions, so callers
that interleave retries with other work (the supervisor's poll loop)
can drive the schedule themselves, while simple callers use
:meth:`run`.

Jitter is deterministic: the spread for retry ``n`` of key ``k`` is
drawn from ``random.Random(f"{seed}:{k}:{n}")``, never from the process
RNG.  Two runs with the same seed back off identically — the same
reproducibility stance as every other randomized component in this
repo (checkpoint resume must replay, chaos tests must be debuggable).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["RetryPolicy", "RetryExhausted", "DEFAULT_RETRY_POLICY"]

T = TypeVar("T")


class RetryExhausted(Exception):
    """Every permitted attempt failed (or the deadline expired)."""

    def __init__(self, attempts: int, reason: str) -> None:
        super().__init__(f"gave up after {attempts} attempt(s): {reason}")
        self.attempts = attempts
        self.reason = reason


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter and a deadline.

    Args:
        max_attempts: total attempts permitted (first try included).
        base_delay_s: backoff before the first retry.
        multiplier: geometric growth factor per retry.
        max_delay_s: backoff ceiling.
        jitter: fractional spread — retry ``n`` sleeps within
            ``±jitter`` of the nominal delay, deterministically.
        deadline_s: overall wall-clock budget for :meth:`run`
            (``None`` = unbounded).
        seed: jitter seed; same seed, same schedule.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # -- pure schedule ----------------------------------------------------

    def allows(self, attempt: int) -> bool:
        """May 0-based attempt number ``attempt`` run at all?"""
        return 0 <= attempt < self.max_attempts

    def delay_before(self, attempt: int, *, key: int = 0) -> float:
        """Backoff before 0-based attempt ``attempt`` (0 for the first try).

        ``key`` decorrelates independent retry streams sharing one
        policy (the supervisor passes the worker id), so a pool of
        crashed shards does not respawn in lockstep.
        """
        if attempt <= 0:
            return 0.0
        nominal = min(
            self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s
        )
        if not self.jitter or not nominal:
            return nominal
        # A string seed hashes via SHA-512 inside random.Random, so the
        # schedule is stable across processes and PYTHONHASHSEED values.
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        spread = nominal * self.jitter
        return nominal - spread + rng.random() * 2.0 * spread

    def delays(self, *, key: int = 0) -> list[float]:
        """The full backoff schedule: delay before attempts 1..max-1."""
        return [
            self.delay_before(attempt, key=key)
            for attempt in range(1, self.max_attempts)
        ]

    # -- generic driver ---------------------------------------------------

    def run(
        self,
        fn: "Callable[[], T]",
        *,
        key: int = 0,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
        on_retry: "Callable[[int, BaseException], None] | None" = None,
    ) -> T:
        """Call ``fn`` until it succeeds, attempts run out, or the
        deadline expires; raises :class:`RetryExhausted` chained to the
        last failure.  ``clock``/``sleep`` are injectable for tests.
        """
        started = clock()
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                delay = self.delay_before(attempt, key=key)
                if self.deadline_s is not None:
                    remaining = self.deadline_s - (clock() - started)
                    if remaining <= 0.0:
                        break
                    delay = min(delay, remaining)
                if delay > 0.0:
                    sleep(delay)
            try:
                return fn()
            except retry_on as exc:  # staticcheck: ok[RC002] caller-chosen exception classes, re-raised via RetryExhausted
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if self.deadline_s is not None and clock() - started >= self.deadline_s:
                    break
        assert last is not None
        raise RetryExhausted(self.max_attempts, repr(last)) from last


# The pool supervisor's default: three total attempts with sub-second
# backoff — generous enough to absorb a transient (OOM-killed worker,
# queue hiccup), tight enough that a deterministic crash fails fast.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay_s=0.1, multiplier=2.0, max_delay_s=5.0
)
