"""Checksummed, generational checkpoints for long pipeline runs.

A checkpoint freezes everything a durable run needs to continue after a
crash: the input byte/line offset, the streaming classifier state, the
health counters and the output sink positions (DESIGN.md §8).  The
on-disk format is deliberately paranoid because checkpoints are written
*during* the failure modes they protect against:

* framed payload — magic, format version, payload length and a SHA-256
  digest precede the payload, so a torn or bit-flipped file is detected
  rather than deserialized;
* atomic replace — each generation is written via temp + fsync + rename
  (:func:`repro.robustness.atomic.atomic_writer`), so a crash mid-write
  cannot damage an existing generation;
* N retained generations — :meth:`CheckpointStore.latest` falls back to
  the newest generation that validates, so even a checkpoint torn by a
  crash at the worst moment only costs one checkpoint interval of
  recomputation.

Payloads are plain-Python object trees (dicts/lists/tuples/scalars)
serialized with :mod:`pickle`; producers are expected to export
primitive state (see ``StreamingClassifier.export_state``) rather than
live objects, which keeps the format stable and the write fast.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
from dataclasses import dataclass

from repro.robustness.atomic import atomic_writer

__all__ = ["Checkpoint", "CheckpointError", "CheckpointStore", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

_MAGIC = b"RPROCKPT"
_HEADER = struct.Struct("<8sIQ32s")  # magic, version, payload length, sha256
_NAME_RE = re.compile(r"^ckpt-(\d{8})\.bin$")


class CheckpointError(Exception):
    """A checkpoint file failed validation (torn, damaged, or alien)."""


@dataclass(slots=True)
class Checkpoint:
    """One validated checkpoint generation."""

    generation: int
    payload: dict


class CheckpointStore:
    """Reads and writes numbered checkpoint generations in a directory.

    Args:
        directory: checkpoint directory (created on first save).
        keep: retained generations; older ones are pruned after a
            successful save.  ``keep >= 2`` is what makes torn-newest
            fallback possible.  ``None`` disables save-time pruning —
            used by shard-parallel workers, whose retention is owned by
            the parent (it lags behind them and prunes via
            :meth:`prune_through` once its own generation advances).
    """

    def __init__(self, directory: str | os.PathLike, *, keep: int | None = 3):
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = os.fspath(directory)
        self.keep = keep

    # -- paths ------------------------------------------------------------

    def path_for(self, generation: int) -> str:
        return os.path.join(self.directory, f"ckpt-{generation:08d}.bin")

    def generations(self) -> list[int]:
        """Existing generation numbers, ascending (validity not checked)."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        found = []
        for name in names:
            match = _NAME_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # -- write ------------------------------------------------------------

    def save(self, payload: dict, *, generation: int | None = None) -> Checkpoint:
        """Write the next (or given) generation atomically; prune old ones."""
        if generation is None:
            existing = self.generations()
            generation = (existing[-1] + 1) if existing else 1
        os.makedirs(self.directory, exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(_MAGIC, CHECKPOINT_VERSION, len(blob), hashlib.sha256(blob).digest())
        with atomic_writer(self.path_for(generation), mode="wb") as stream:
            stream.write(header)
            stream.write(blob)
        self._prune(keep_from=generation)
        return Checkpoint(generation=generation, payload=payload)

    def _prune(self, *, keep_from: int) -> None:
        if self.keep is None:
            return
        generations = [g for g in self.generations() if g <= keep_from]
        for stale in generations[: -self.keep]:
            try:
                os.unlink(self.path_for(stale))
            except OSError:
                pass  # pruning is housekeeping, never fatal

    def prune_through(self, generation: int) -> None:
        """Prune as if ``generation`` were the newest save: keep the
        newest ``keep`` generations at or below it, leaving anything
        newer untouched (a shard worker may already have run ahead)."""
        self._prune(keep_from=generation)

    # -- read -------------------------------------------------------------

    def load(self, generation: int) -> Checkpoint:
        """Load and validate one generation; raises :class:`CheckpointError`."""
        path = self.path_for(generation)
        try:
            with open(path, "rb") as stream:
                data = stream.read()
        except OSError as exc:
            raise CheckpointError(f"{path}: {exc}") from None
        if len(data) < _HEADER.size:
            raise CheckpointError(f"{path}: truncated header ({len(data)} bytes)")
        magic, version, length, digest = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CheckpointError(f"{path}: bad magic {magic!r}")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(f"{path}: unsupported version {version}")
        blob = data[_HEADER.size :]
        if len(blob) != length:
            raise CheckpointError(f"{path}: torn payload ({len(blob)}/{length} bytes)")
        if hashlib.sha256(blob).digest() != digest:
            raise CheckpointError(f"{path}: checksum mismatch")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # pickle raises a zoo of types; staticcheck: ok[RC002] rethrown as CheckpointError
            raise CheckpointError(f"{path}: undecodable payload: {exc}") from None
        if not isinstance(payload, dict):
            raise CheckpointError(f"{path}: unexpected payload type {type(payload).__name__}")
        return Checkpoint(generation=generation, payload=payload)

    def latest(self) -> Checkpoint | None:
        """Newest generation that validates; falls back past damaged ones.

        Returns ``None`` when no generation validates (fresh start).
        Damaged newer generations are left on disk for post-mortems —
        the next :meth:`save` writes a higher generation anyway.
        """
        for generation in reversed(self.generations()):
            try:
                return self.load(generation)
            except CheckpointError:
                continue
        return None

    def newest_valid_generation(self) -> int | None:
        """Generation number of :meth:`latest`, or ``None``.

        A store-level "how far did this run get" probe (used by tests
        and tooling); note that shard-respawn deliberately does *not*
        resume from here — a shard's own newest generation can run
        ahead of the parent's fold frontier, so the supervisor resumes
        replacements from the parent's last saved generation instead
        (see ``ParallelRun._spawn_worker``).
        """
        newest = self.latest()
        return newest.generation if newest is not None else None

    def valid_generations(self) -> list[int]:
        """Generation numbers that fully validate, ascending.

        Shard-parallel resume (DESIGN.md §10) must restart every worker
        from the *same* generation, so the rendezvous point is the
        newest generation valid in the parent store and every shard
        store at once — which needs the whole valid set, not just the
        newest survivor that :meth:`latest` returns.
        """
        valid = []
        for generation in self.generations():
            try:
                self.load(generation)
            except CheckpointError:
                continue
            valid.append(generation)
        return valid
