"""Error policies for damaged input (DESIGN.md §7).

Real RBN vantage points deliver damaged logs — truncated lines, garbled
fields, capture loss (§3.1, §5 of the paper).  Every ingestion stage
takes an :class:`ErrorPolicy` deciding what happens to a record it
cannot parse:

* ``STRICT`` — raise :class:`LogParseError` on the first bad line
  (the seed behaviour, but with a line number instead of an opaque
  ``TypeError``).
* ``SKIP`` — drop the record, count it, keep going.
* ``QUARANTINE`` — like ``SKIP``, but additionally write the raw line
  with its line number and error reason to a sidecar file so no data
  is silently lost.
"""

from __future__ import annotations

import enum

__all__ = ["ErrorPolicy", "LogParseError", "RunInterrupted"]


class ErrorPolicy(str, enum.Enum):
    """What an ingestion stage does with a record it cannot parse."""

    STRICT = "strict"
    SKIP = "skip"
    QUARANTINE = "quarantine"

    def __str__(self) -> str:  # argparse-friendly
        return self.value


class LogParseError(ValueError):
    """A log line failed to parse (strict mode).

    Carries the 1-based line number and the offending raw line so the
    operator can locate the damage in the capture.
    """

    def __init__(self, line_no: int, reason: str, line: str = ""):
        self.line_no = line_no
        self.reason = reason
        self.line = line
        super().__init__(f"line {line_no}: {reason}")


class RunInterrupted(Exception):
    """The run received SIGINT/SIGTERM and shut down cleanly (exit 130).

    Raised by any run driver — the parallel pool supervisor, the serial
    :class:`~repro.robustness.runstate.DurableRun` loop, and the
    ``repro serve`` daemon's drain path — after durable state has been
    left in a resumable condition.  Lives here (not in ``parallel``) so
    the serial and serving paths don't import the pool machinery just to
    signal an interruption.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum
