"""Error policies for damaged input (DESIGN.md §7).

Real RBN vantage points deliver damaged logs — truncated lines, garbled
fields, capture loss (§3.1, §5 of the paper).  Every ingestion stage
takes an :class:`ErrorPolicy` deciding what happens to a record it
cannot parse:

* ``STRICT`` — raise :class:`LogParseError` on the first bad line
  (the seed behaviour, but with a line number instead of an opaque
  ``TypeError``).
* ``SKIP`` — drop the record, count it, keep going.
* ``QUARANTINE`` — like ``SKIP``, but additionally write the raw line
  with its line number and error reason to a sidecar file so no data
  is silently lost.
"""

from __future__ import annotations

import enum

__all__ = ["ErrorPolicy", "LogParseError"]


class ErrorPolicy(str, enum.Enum):
    """What an ingestion stage does with a record it cannot parse."""

    STRICT = "strict"
    SKIP = "skip"
    QUARANTINE = "quarantine"

    def __str__(self) -> str:  # argparse-friendly
        return self.value


class LogParseError(ValueError):
    """A log line failed to parse (strict mode).

    Carries the 1-based line number and the offending raw line so the
    operator can locate the damage in the capture.
    """

    def __init__(self, line_no: int, reason: str, line: str = ""):
        self.line_no = line_no
        self.reason = reason
        self.line = line
        super().__init__(f"line {line_no}: {reason}")
