"""Resilience subsystem: error policies, health accounting, quarantine,
and durable (crash-safe, resumable) runs.

Damaged input is the normal case at a passive vantage point (paper
§3.1, §5): truncated TSV lines, garbled fields, capture loss,
out-of-order timestamps, clock skew.  This package provides the shared
vocabulary the ingestion→classification path uses to degrade gracefully
instead of dying on the first bad byte — see DESIGN.md §7.

On top of that, the *run itself* is made durable (DESIGN.md §8):
:mod:`repro.robustness.atomic` (torn-write-free file replacement),
:mod:`repro.robustness.checkpoint` (checksummed generational
checkpoints with fallback), :mod:`repro.robustness.crash` (crash
injection for the equivalence tests) and
:mod:`repro.robustness.runstate` (run manifest + the checkpoint/resume
driver; imported directly to avoid import cycles with the pipeline).
"""

from repro.robustness.health import (
    EXIT_CLEAN,
    EXIT_DEGRADED,
    EXIT_INTERRUPTED,
    EXIT_MANIFEST_MISMATCH,
    EXIT_MISSING_INPUT,
    EXIT_STRICT_ABORT,
    EXIT_WORKER_FAILURE,
    PipelineHealth,
)
from repro.robustness.policy import ErrorPolicy, LogParseError, RunInterrupted
from repro.robustness.quarantine import QuarantineWriter, read_quarantine
from repro.robustness.atomic import atomic_writer, fsync_dir, replace_atomic
from repro.robustness.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.robustness.crash import (
    CHAOS_ENV,
    CRASH_EXIT_CODE,
    ChaosSpecError,
    CrashInjector,
    CrashMode,
    FaultAction,
    InjectedCrash,
    ServeFault,
    ServeFaultInjector,
    ServeFaultMode,
    WorkerFault,
    WorkerFaultInjector,
    WorkerFaultMode,
    parse_chaos,
    parse_serve_chaos,
)
from repro.robustness.retry import DEFAULT_RETRY_POLICY, RetryExhausted, RetryPolicy

__all__ = [
    "ErrorPolicy",
    "LogParseError",
    "RunInterrupted",
    "PipelineHealth",
    "QuarantineWriter",
    "read_quarantine",
    "atomic_writer",
    "fsync_dir",
    "replace_atomic",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "CHECKPOINT_VERSION",
    "CrashInjector",
    "CrashMode",
    "InjectedCrash",
    "CRASH_EXIT_CODE",
    "CHAOS_ENV",
    "ChaosSpecError",
    "FaultAction",
    "WorkerFault",
    "WorkerFaultInjector",
    "WorkerFaultMode",
    "parse_chaos",
    "ServeFault",
    "ServeFaultInjector",
    "ServeFaultMode",
    "parse_serve_chaos",
    "RetryPolicy",
    "RetryExhausted",
    "DEFAULT_RETRY_POLICY",
    "EXIT_CLEAN",
    "EXIT_STRICT_ABORT",
    "EXIT_MISSING_INPUT",
    "EXIT_DEGRADED",
    "EXIT_MANIFEST_MISMATCH",
    "EXIT_WORKER_FAILURE",
    "EXIT_INTERRUPTED",
]
