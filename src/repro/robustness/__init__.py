"""Resilience subsystem: error policies, health accounting, quarantine.

Damaged input is the normal case at a passive vantage point (paper
§3.1, §5): truncated TSV lines, garbled fields, capture loss,
out-of-order timestamps, clock skew.  This package provides the shared
vocabulary the ingestion→classification path uses to degrade gracefully
instead of dying on the first bad byte — see DESIGN.md §7.
"""

from repro.robustness.health import (
    EXIT_CLEAN,
    EXIT_DEGRADED,
    EXIT_STRICT_ABORT,
    PipelineHealth,
)
from repro.robustness.policy import ErrorPolicy, LogParseError
from repro.robustness.quarantine import QuarantineWriter, read_quarantine

__all__ = [
    "ErrorPolicy",
    "LogParseError",
    "PipelineHealth",
    "QuarantineWriter",
    "read_quarantine",
    "EXIT_CLEAN",
    "EXIT_STRICT_ABORT",
    "EXIT_DEGRADED",
]
