"""Pipeline health accounting for degraded runs.

A single :class:`PipelineHealth` object is threaded through
``read_log`` → ``iter_process`` → the CLI, tallying what was seen,
dropped, repaired and quarantined per stage, so a degraded run ends
with an explicit accounting instead of silently shrunken output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = [
    "PipelineHealth",
    "EXIT_CLEAN",
    "EXIT_STRICT_ABORT",
    "EXIT_MISSING_INPUT",
    "EXIT_DEGRADED",
    "EXIT_MANIFEST_MISMATCH",
    "EXIT_WORKER_FAILURE",
    "EXIT_INTERRUPTED",
]

# CLI exit codes: re-exported from the central registry
# (:mod:`repro.exitcodes`) — these names predate it and the whole tree
# imports them from here, so they stay.  New code should import from
# ``repro.exitcodes`` directly; the registry's docstrings and the
# README table are the normative meanings, and the RC010 gate keeps
# both in sync.
from repro.exitcodes import (  # noqa: F401  (re-export)
    EXIT_CLEAN,
    EXIT_DEGRADED,
    EXIT_INTERRUPTED,
    EXIT_MANIFEST_MISMATCH,
    EXIT_MISSING_INPUT,
    EXIT_STRICT_ABORT,
    EXIT_WORKER_FAILURE,
)


@dataclass
class PipelineHealth:
    """Counters for one ingestion→classification run.

    The ``cache_*`` counters are **transient** (see ``_TRANSIENT_STATE``):
    they describe this process's decision-cache effectiveness, not the
    run's output, so they are excluded from :meth:`export_state` /
    :meth:`merge_state` / :meth:`summary` — a resumed run restarts them
    at zero and cached vs uncached runs stay byte-identical end to end.
    """

    records_seen: int = 0
    records_ok: int = 0
    records_dropped: int = 0
    records_quarantined: int = 0
    records_repaired: int = 0
    records_reordered: int = 0
    users_evicted: int = 0
    peak_users: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    url_cache_hits: int = 0
    url_cache_misses: int = 0
    worker_restarts: int = 0
    shards_degraded: int = 0
    heartbeat_gaps: int = 0
    # stage name -> Counter of error reasons
    stage_errors: dict[str, Counter] = field(default_factory=dict)

    # Fields deliberately absent from the checkpoint wire form: pure
    # process-local observability that must never survive a resume or
    # flow through a shard fold.  The RC004 codebase gate reads this
    # declaration and exempts exactly these fields from its
    # export/restore drift check.  The supervision counters
    # (DESIGN.md §12) are parent-side: worker restarts and heartbeat
    # gaps describe *this* process's pool run, not the output — a
    # resumed run legitimately restarts them at zero, and a fault-free
    # run keeps them at zero, which is what preserves serial-vs-parallel
    # and fresh-vs-resumed summary byte-identity.
    _TRANSIENT_STATE = (
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "url_cache_hits",
        "url_cache_misses",
        "worker_restarts",
        "shards_degraded",
        "heartbeat_gaps",
    )

    def record_ok(self) -> None:
        self.records_seen += 1
        self.records_ok += 1

    def record_error(self, stage: str, reason: str, *, quarantined: bool = False) -> None:
        self.records_seen += 1
        self.records_dropped += 1
        if quarantined:
            self.records_quarantined += 1
        self.stage_errors.setdefault(stage, Counter())[reason] += 1

    def record_repair(self, stage: str, reason: str) -> None:
        self.records_repaired += 1
        self.stage_errors.setdefault(stage, Counter())[f"repaired:{reason}"] += 1

    def observe_users(self, active_users: int) -> None:
        if active_users > self.peak_users:
            self.peak_users = active_users

    def add_cache_stats(self, hits: int, misses: int, evictions: int) -> None:
        """Fold decision-cache counters (one engine's or one shard's)."""
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_evictions += evictions

    def add_url_cache_stats(self, hits: int, misses: int) -> None:
        """Fold ``split_url`` memo counters (one process's or one shard's).

        Transient like the decision-cache counters: hit rates describe
        this process's parse-path effectiveness, never the output.
        """
        self.url_cache_hits += hits
        self.url_cache_misses += misses

    def record_worker_restart(self) -> None:
        """One shard worker was respawned by the supervisor (§12)."""
        self.worker_restarts += 1

    def record_heartbeat_gap(self) -> None:
        """One hung worker was detected (no heartbeat within timeout)."""
        self.heartbeat_gaps += 1

    @property
    def degraded(self) -> bool:
        return self.records_dropped > 0 or self.shards_degraded > 0

    def exit_code(self) -> int:
        return EXIT_DEGRADED if self.degraded else EXIT_CLEAN

    def merge(self, other: "PipelineHealth") -> None:
        self.records_seen += other.records_seen
        self.records_ok += other.records_ok
        self.records_dropped += other.records_dropped
        self.records_quarantined += other.records_quarantined
        self.records_repaired += other.records_repaired
        self.records_reordered += other.records_reordered
        self.users_evicted += other.users_evicted
        self.peak_users = max(self.peak_users, other.peak_users)
        for stage, reasons in other.stage_errors.items():
            self.stage_errors.setdefault(stage, Counter()).update(reasons)

    # -- checkpoint wire form (DESIGN.md §8) ---------------------------

    def export_state(self) -> dict:
        """Primitive-only snapshot for the checkpoint payload."""
        return {
            "records_seen": self.records_seen,
            "records_ok": self.records_ok,
            "records_dropped": self.records_dropped,
            "records_quarantined": self.records_quarantined,
            "records_repaired": self.records_repaired,
            "records_reordered": self.records_reordered,
            "users_evicted": self.users_evicted,
            "peak_users": self.peak_users,
            "stage_errors": {stage: dict(reasons) for stage, reasons in self.stage_errors.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "PipelineHealth":
        """Inverse of :meth:`export_state`."""
        health = cls(
            **{key: value for key, value in state.items() if key != "stage_errors"}
        )
        health.stage_errors = {
            stage: Counter(reasons) for stage, reasons in state["stage_errors"].items()
        }
        return health

    def merge_state(self, state: dict) -> None:
        """Fold an exported snapshot into this accounting.

        The shard-parallel fold (DESIGN.md §10): every counter is a sum
        over disjoint record sets, *including* ``peak_users`` — each
        worker holds its shard's users simultaneously, so the pool's
        peak memory is the sum of the per-shard peaks, not their max
        (contrast :meth:`merge`, which combines alternative runs).
        """
        self.records_seen += state["records_seen"]
        self.records_ok += state["records_ok"]
        self.records_dropped += state["records_dropped"]
        self.records_quarantined += state["records_quarantined"]
        self.records_repaired += state["records_repaired"]
        self.records_reordered += state["records_reordered"]
        self.users_evicted += state["users_evicted"]
        self.peak_users += state["peak_users"]
        for stage, reasons in state["stage_errors"].items():
            self.stage_errors.setdefault(stage, Counter()).update(reasons)

    def cache_summary(self) -> str:
        """Cache effectiveness blocks (decision + url-split), or ``""``.

        Kept out of :meth:`summary` on purpose: the health summary is
        byte-compared across execution plans (serial vs shards, cached
        vs uncached, fresh vs resumed), and cache counters legitimately
        differ between all of those.  The CLI prints this block
        *before* the ``-- pipeline health --`` marker so marker-anchored
        comparisons never see it.
        """
        blocks = []
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            rate = 100.0 * self.cache_hits / lookups
            blocks.append(
                "\n".join(
                    [
                        "-- decision cache --",
                        f"lookups:           {lookups}",
                        f"hits:              {self.cache_hits} ({rate:.1f}%)",
                        f"misses:            {self.cache_misses}",
                        f"evictions:         {self.cache_evictions}",
                    ]
                )
            )
        url_lookups = self.url_cache_hits + self.url_cache_misses
        if url_lookups:
            url_rate = 100.0 * self.url_cache_hits / url_lookups
            blocks.append(
                "\n".join(
                    [
                        "-- url-split cache --",
                        f"lookups:           {url_lookups}",
                        f"hits:              {self.url_cache_hits} ({url_rate:.1f}%)",
                        f"misses:            {self.url_cache_misses}",
                    ]
                )
            )
        return "\n".join(blocks)

    def summary_dict(self, *, transient: bool = True) -> dict:
        """Machine-readable counterpart of :meth:`summary` (+ cache block).

        The durable counters mirror :meth:`export_state`; ``stage_errors``
        reasons are ordered ``(-count, reason)`` like the text summary so
        JSON output is deterministic across execution plans.  With
        ``transient=True`` the process-local observability counters
        (decision cache, supervision) ride along under their own keys —
        ``repro serve``'s ``/metrics`` and ``--health-format=json`` both
        consume this instead of scraping the text block.
        """
        data: dict = {
            "records_seen": self.records_seen,
            "records_ok": self.records_ok,
            "records_dropped": self.records_dropped,
            "records_quarantined": self.records_quarantined,
            "records_repaired": self.records_repaired,
            "records_reordered": self.records_reordered,
            "users_evicted": self.users_evicted,
            "peak_users": self.peak_users,
            "degraded": self.degraded,
            "stage_errors": {
                stage: {
                    reason: count
                    for reason, count in sorted(
                        self.stage_errors[stage].items(), key=lambda kv: (-kv[1], kv[0])
                    )
                }
                for stage in sorted(self.stage_errors)
            },
        }
        if transient:
            lookups = self.cache_hits + self.cache_misses
            url_lookups = self.url_cache_hits + self.url_cache_misses
            data["cache"] = {
                "lookups": lookups,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "hit_rate": self.cache_hits / lookups if lookups else 0.0,
                "url_split_lookups": url_lookups,
                "url_split_hits": self.url_cache_hits,
                "url_split_misses": self.url_cache_misses,
                "url_split_hit_rate": self.url_cache_hits / url_lookups if url_lookups else 0.0,
            }
            data["supervision"] = {
                "worker_restarts": self.worker_restarts,
                "heartbeat_gaps": self.heartbeat_gaps,
                "shards_degraded": self.shards_degraded,
            }
        return data

    def summary(self) -> str:
        lines = [
            "-- pipeline health --",
            f"records seen:      {self.records_seen}",
            f"parsed ok:         {self.records_ok}",
            f"dropped:           {self.records_dropped}"
            + (f" (quarantined: {self.records_quarantined})" if self.records_quarantined else ""),
        ]
        if self.records_repaired:
            lines.append(f"repaired:          {self.records_repaired}")
        if self.records_reordered:
            lines.append(f"out-of-order:      {self.records_reordered}")
        if self.users_evicted:
            lines.append(f"users evicted:     {self.users_evicted}")
        if self.peak_users:
            lines.append(f"peak users held:   {self.peak_users}")
        # Supervision counters (transient, parent-side): zero — and
        # therefore absent — in any fault-free run, so serial/parallel/
        # resumed summaries stay byte-identical unless faults actually
        # happened, in which case honesty wins over comparability.
        if self.worker_restarts:
            lines.append(f"worker restarts:   {self.worker_restarts}")
        if self.heartbeat_gaps:
            lines.append(f"heartbeat gaps:    {self.heartbeat_gaps}")
        if self.shards_degraded:
            lines.append(f"shards degraded:   {self.shards_degraded} (output incomplete)")
        for stage in sorted(self.stage_errors):
            # Not Counter.most_common(): its ties break by insertion
            # order, which differs between a serial run and a shard
            # fold.  Sorting by (-count, reason) keeps the summary
            # byte-identical across execution plans (DESIGN.md §10).
            reasons = sorted(self.stage_errors[stage].items(), key=lambda kv: (-kv[1], kv[0]))
            for reason, count in reasons:
                lines.append(f"  {stage}/{reason}: {count}")
        return "\n".join(lines)
