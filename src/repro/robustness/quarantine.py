"""Quarantine sidecar: rejected lines are kept, never silently lost.

The sidecar is itself TSV — ``line_no \\t reason \\t raw`` — with the
raw line last so embedded tabs stay recoverable.  ``read_quarantine``
inverts the format for tooling and tests.

The writer flushes after every line (``flush_every=1``) by default:
the sidecar exists precisely because something is going wrong, so its
contents must survive the process dying mid-run — buffering rejected
lines in memory would lose exactly the evidence the sidecar is for.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterator

__all__ = ["QuarantineWriter", "read_quarantine"]

_HEADER = "#line\treason\traw"


class QuarantineWriter:
    """Appends rejected raw lines to a sidecar stream.

    Accepts a text or binary stream (binary lets durable runs use exact
    byte positions for checkpoint/truncate).  Use as a context manager
    — or call :meth:`close` — when the writer owns the stream via
    :meth:`open`.

    Args:
        stream: destination stream.
        flush_every: flush after this many writes (1 = every line).
    """

    def __init__(self, stream: IO, *, flush_every: int = 1, owns_stream: bool = False):
        self._stream = stream
        self._binary = isinstance(stream, (io.RawIOBase, io.BufferedIOBase))
        self._owns_stream = owns_stream
        self._flush_every = max(1, flush_every)
        self._unflushed = 0
        self._wrote_header = False
        self.count = 0

    @classmethod
    def open(cls, path: str, *, flush_every: int = 1) -> "QuarantineWriter":
        """Open ``path`` for writing and own the stream (close on exit)."""
        # staticcheck: ok[RC001] progressive sidecar; checkpoint resume truncates to a synced position
        stream = open(path, "w", encoding="utf-8")
        return cls(stream, flush_every=flush_every, owns_stream=True)

    def _emit(self, text: str) -> None:
        self._stream.write(text.encode("utf-8") if self._binary else text)

    def write(self, line_no: int, reason: str, raw: str) -> None:
        if not self._wrote_header:
            self._emit(_HEADER + "\n")
            self._wrote_header = True
        self._emit(f"{line_no}\t{reason}\t{raw}\n")
        self.count += 1
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        self._stream.flush()
        self._unflushed = 0

    def sync(self) -> None:
        """Flush and fsync — a sidecar line that reached here survives
        power loss (used at checkpoint boundaries)."""
        self.flush()
        try:
            os.fsync(self._stream.fileno())
        except (OSError, AttributeError, io.UnsupportedOperation):
            pass  # in-memory streams have no fileno

    def tell(self) -> int:
        """Stream position after a flush (byte-exact on binary streams)."""
        self.flush()
        return self._stream.tell()

    def close(self) -> None:
        if getattr(self._stream, "closed", False):
            return
        self.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpoint wire form (DESIGN.md §8) ---------------------------

    def export_state(self) -> dict:
        """Resumable sidecar position; callers :meth:`sync` first so the
        stream position reflects everything counted."""
        return {"count": self.count, "wrote_header": self._wrote_header}

    def restore_state(self, state: dict) -> None:
        self.count = state["count"]
        self._wrote_header = state["wrote_header"]

    def merge_state(self, state: dict) -> None:
        """Fold a shard's exported accounting into this writer.

        Shard-parallel runs (DESIGN.md §10) route every rejected line
        through the parent's single sidecar, so only the *accounting*
        merges: counts add, and "a header has been written" holds if it
        holds on either side.
        """
        self.count += state["count"]
        self._wrote_header = self._wrote_header or state["wrote_header"]


def read_quarantine(stream: IO) -> Iterator[tuple[int, str, str]]:
    """Yield ``(line_no, reason, raw_line)`` from a sidecar stream."""
    for line in stream:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        line_no, reason, raw = line.split("\t", 2)
        yield int(line_no), reason, raw
