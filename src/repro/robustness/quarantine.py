"""Quarantine sidecar: rejected lines are kept, never silently lost.

The sidecar is itself TSV — ``line_no \\t reason \\t raw`` — with the
raw line last so embedded tabs stay recoverable.  ``read_quarantine``
inverts the format for tooling and tests.
"""

from __future__ import annotations

from typing import Iterator, TextIO

__all__ = ["QuarantineWriter", "read_quarantine"]

_HEADER = "#line\treason\traw"


class QuarantineWriter:
    """Appends rejected raw lines to a sidecar stream."""

    def __init__(self, stream: TextIO):
        self._stream = stream
        self._wrote_header = False
        self.count = 0

    def write(self, line_no: int, reason: str, raw: str) -> None:
        if not self._wrote_header:
            self._stream.write(_HEADER + "\n")
            self._wrote_header = True
        self._stream.write(f"{line_no}\t{reason}\t{raw}\n")
        self.count += 1


def read_quarantine(stream: TextIO) -> Iterator[tuple[int, str, str]]:
    """Yield ``(line_no, reason, raw_line)`` from a sidecar stream."""
    for line in stream:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        line_no, reason, raw = line.split("\t", 2)
        yield int(line_no), reason, raw
