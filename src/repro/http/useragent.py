"""User-Agent string parsing and classification.

The paper separates traffic of NATed households into end devices by the
(IP, User-Agent) pair (§5, following Maier et al.), then restricts the
ad-blocker analysis to *browsers* — desktop Firefox/Chrome/IE/Safari and
mobile browsers — discarding consoles, smart TVs, software updaters and
mobile apps (§6.1).  This module implements that annotation step.

The parser is deliberately rule-based and ordered: real UA sniffing is
a precedence exercise (every Chrome UA contains "Safari", every IE 11
UA lacks "MSIE", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

__all__ = ["DeviceClass", "BrowserFamily", "UserAgentInfo", "parse_user_agent"]


class DeviceClass(str, Enum):
    """Coarse device category behind a User-Agent string."""

    DESKTOP = "desktop"
    MOBILE = "mobile"
    TABLET = "tablet"
    CONSOLE = "console"
    SMART_TV = "smart_tv"
    APP = "app"
    UPDATER = "updater"
    MEDIA_PLAYER = "media_player"
    BOT = "bot"
    UNKNOWN = "unknown"


class BrowserFamily(str, Enum):
    """Browser families the paper reports on (Fig 4, §6.1)."""

    FIREFOX = "Firefox"
    CHROME = "Chrome"
    IE = "IE"
    SAFARI = "Safari"
    OPERA = "Opera"
    MOBILE = "Mobile"
    OTHER = "Other"
    NONE = "None"


@dataclass(frozen=True, slots=True)
class UserAgentInfo:
    """Parsed User-Agent classification.

    ``is_browser`` is the predicate §6.1 uses to keep a (IP, UA) pair
    in the active-user analysis.
    """

    raw: str
    device: DeviceClass
    family: BrowserFamily
    os: str

    @property
    def is_browser(self) -> bool:
        return self.family not in (BrowserFamily.OTHER, BrowserFamily.NONE)

    @property
    def is_mobile_browser(self) -> bool:
        return self.family == BrowserFamily.MOBILE

    @property
    def is_desktop_browser(self) -> bool:
        return self.is_browser and not self.is_mobile_browser


_CONSOLE_TOKENS = ("playstation", "xbox", "nintendo", "wiiu")
_TV_TOKENS = ("smart-tv", "smarttv", "googletv", "appletv", "hbbtv", "netcast", "roku")
_UPDATER_TOKENS = (
    "update",
    "installer",
    "microsoft-cryptoapi",
    "windowsupdate",
    "apt-http",
    "avast",
    "avira",
)
_MEDIA_TOKENS = ("vlc", "itunes", "windows-media-player", "stagefright", "sonos", "spotify")
_APP_TOKENS = (
    "dalvik",
    "cfnetwork",
    "okhttp",
    "java/",
    "python-requests",
    "curl/",
    "wget/",
    "facebookexternalhit",
    "com.google",
    "valve/steam",
    "gamecenter",
    "whatsapp",
)
_BOT_TOKENS = ("bot", "spider", "crawler", "slurp")


def _detect_os(lower: str) -> str:
    if "windows phone" in lower:
        return "Windows Phone"
    if "windows" in lower:
        return "Windows"
    if "android" in lower:
        return "Android"
    if "iphone" in lower or "ipad" in lower or "ios" in lower:
        return "iOS"
    if "mac os x" in lower or "macintosh" in lower:
        return "macOS"
    if "linux" in lower or "x11" in lower:
        return "Linux"
    return "Other"


@lru_cache(maxsize=16384)
def parse_user_agent(user_agent: str | None) -> UserAgentInfo:
    """Classify a User-Agent string into device class and browser family."""
    raw = user_agent or ""
    lower = raw.lower()
    if not raw:
        return UserAgentInfo(raw, DeviceClass.UNKNOWN, BrowserFamily.NONE, "Other")

    if any(token in lower for token in _BOT_TOKENS):
        return UserAgentInfo(raw, DeviceClass.BOT, BrowserFamily.OTHER, _detect_os(lower))
    if any(token in lower for token in _CONSOLE_TOKENS):
        return UserAgentInfo(raw, DeviceClass.CONSOLE, BrowserFamily.OTHER, _detect_os(lower))
    if any(token in lower for token in _TV_TOKENS):
        return UserAgentInfo(raw, DeviceClass.SMART_TV, BrowserFamily.OTHER, _detect_os(lower))
    if any(token in lower for token in _UPDATER_TOKENS):
        return UserAgentInfo(raw, DeviceClass.UPDATER, BrowserFamily.OTHER, _detect_os(lower))
    if any(token in lower for token in _MEDIA_TOKENS):
        return UserAgentInfo(raw, DeviceClass.MEDIA_PLAYER, BrowserFamily.OTHER, _detect_os(lower))
    if any(token in lower for token in _APP_TOKENS):
        return UserAgentInfo(raw, DeviceClass.APP, BrowserFamily.OTHER, _detect_os(lower))

    os_name = _detect_os(lower)

    mobile = (
        "mobile" in lower
        or "iphone" in lower
        or "android" in lower
        or "windows phone" in lower
        or "opera mini" in lower
        or "opera mobi" in lower
    )
    tablet = "ipad" in lower or ("android" in lower and "mobile" not in lower and "tablet" in lower)

    if "mozilla" not in lower and "opera" not in lower:
        # Everything browser-like starts with Mozilla/ or Opera/ in
        # practice; remaining strings are custom application agents.
        return UserAgentInfo(raw, DeviceClass.APP, BrowserFamily.OTHER, os_name)

    if mobile or tablet:
        device = DeviceClass.TABLET if tablet and not mobile else DeviceClass.MOBILE
        return UserAgentInfo(raw, device, BrowserFamily.MOBILE, os_name)

    # Desktop browser precedence: Opera, Edge-as-other, IE, Firefox,
    # Chrome (before Safari!), Safari.
    if "opr/" in lower or lower.startswith("opera"):
        family = BrowserFamily.OPERA
    elif "msie" in lower or "trident/" in lower:
        family = BrowserFamily.IE
    elif "firefox/" in lower and "seamonkey" not in lower:
        family = BrowserFamily.FIREFOX
    elif ("chrome/" in lower or "chromium/" in lower) and "edge" not in lower:
        family = BrowserFamily.CHROME
    elif "safari/" in lower:
        family = BrowserFamily.SAFARI
    else:
        family = BrowserFamily.OTHER

    return UserAgentInfo(raw, DeviceClass.DESKTOP, family, os_name)
