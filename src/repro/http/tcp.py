"""Simplified TCP layer: segments, flows and stream reassembly.

The trace substrate emits :class:`TcpSegment` records instead of raw
pcap frames; this keeps traces compact while preserving everything the
paper's methodology observes: directions, timestamps, handshake timing
(SYN / SYN-ACK) and the in-order byte streams that carry HTTP.

Reassembly handles out-of-order delivery and retransmissions by
sequence-number bookkeeping, because the trace generator injects both
to exercise the analyzer the way a real capture would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TcpSegment", "FlowKey", "TcpStream", "TcpFlow", "FlowTable"]


@dataclass(frozen=True, slots=True)
class TcpSegment:
    """One TCP segment as captured on the wire.

    ``seq`` numbers are byte offsets from the start of the direction's
    stream (relative sequence numbers, as Bro/Wireshark display them).
    """

    ts: float
    src: str
    dst: str
    sport: int
    dport: int
    seq: int = 0
    payload: bytes = b""
    syn: bool = False
    ack: bool = False
    fin: bool = False
    rst: bool = False


@dataclass(frozen=True, slots=True)
class FlowKey:
    """Canonical bidirectional flow identifier (client first)."""

    client: str
    client_port: int
    server: str
    server_port: int


class TcpStream:
    """Reassembles one direction of a TCP flow.

    Segments may arrive out of order or duplicated; data is keyed by
    sequence number and overlapping retransmissions are ignored where
    they agree with already-seen bytes.
    """

    def __init__(self) -> None:
        self._chunks: dict[int, bytes] = {}
        self._assembled: bytearray = bytearray()
        self._next_seq = 0

    def add(self, seq: int, payload: bytes) -> None:
        if not payload:
            return
        if seq + len(payload) <= self._next_seq:
            return  # pure retransmission of already-assembled bytes
        if seq < self._next_seq:
            payload = payload[self._next_seq - seq :]
            seq = self._next_seq
        existing = self._chunks.get(seq)
        if existing is None or len(payload) > len(existing):
            self._chunks[seq] = payload
        self._drain()

    def _drain(self) -> None:
        while self._next_seq in self._chunks:
            chunk = self._chunks.pop(self._next_seq)
            self._assembled.extend(chunk)
            self._next_seq += len(chunk)

    @property
    def data(self) -> bytes:
        """Contiguously reassembled bytes so far."""
        return bytes(self._assembled)

    @property
    def has_gaps(self) -> bool:
        return bool(self._chunks)


@dataclass
class TcpFlow:
    """Bidirectional flow state with handshake timing."""

    key: FlowKey
    flow_id: int
    syn_ts: float | None = None
    synack_ts: float | None = None
    first_ts: float | None = None
    last_ts: float | None = None
    client_stream: TcpStream = field(default_factory=TcpStream)
    server_stream: TcpStream = field(default_factory=TcpStream)
    client_payload_ts: list[tuple[int, float]] = field(default_factory=list)
    server_payload_ts: list[tuple[int, float]] = field(default_factory=list)

    @property
    def tcp_handshake_ms(self) -> float | None:
        """SYN-ACK minus SYN time in milliseconds (paper's RTT proxy)."""
        if self.syn_ts is None or self.synack_ts is None:
            return None
        return max(0.0, (self.synack_ts - self.syn_ts) * 1000.0)

    def ts_at_client_offset(self, offset: int) -> float | None:
        """Timestamp of the segment carrying client-stream byte ``offset``."""
        return _ts_at_offset(self.client_payload_ts, offset)

    def ts_at_server_offset(self, offset: int) -> float | None:
        """Timestamp of the segment carrying server-stream byte ``offset``."""
        return _ts_at_offset(self.server_payload_ts, offset)


def _ts_at_offset(index: list[tuple[int, float]], offset: int) -> float | None:
    """Find the timestamp of the first segment covering stream ``offset``.

    ``index`` holds (start_offset, ts) per payload segment in arrival
    order; we want the earliest segment whose start is <= offset and
    that is the last such start (segments are contiguous after
    reassembly, so the greatest start <= offset covers it).
    """
    best: float | None = None
    best_start = -1
    for start, ts in index:
        if start <= offset and start > best_start:
            best, best_start = ts, start
    return best


class FlowTable:
    """Groups TCP segments into flows and reassembles both directions."""

    def __init__(self) -> None:
        self._flows: dict[FlowKey, TcpFlow] = {}
        self._next_id = 1

    def add_segment(self, segment: TcpSegment) -> TcpFlow:
        """Route one segment to its flow, creating the flow on SYN."""
        forward = FlowKey(segment.src, segment.sport, segment.dst, segment.dport)
        reverse = FlowKey(segment.dst, segment.dport, segment.src, segment.sport)

        flow = self._flows.get(forward)
        from_client = True
        if flow is None:
            flow = self._flows.get(reverse)
            from_client = False
        if flow is None:
            # First segment seen decides who the client is; a SYN (no
            # ACK) always comes from the client.
            flow = TcpFlow(key=forward, flow_id=self._next_id)
            self._next_id += 1
            self._flows[forward] = flow
            from_client = True

        if flow.first_ts is None:
            flow.first_ts = segment.ts
        flow.last_ts = segment.ts

        if segment.syn and not segment.ack:
            flow.syn_ts = segment.ts
        elif segment.syn and segment.ack:
            flow.synack_ts = segment.ts

        if segment.payload:
            if from_client:
                flow.client_payload_ts.append((segment.seq, segment.ts))
                flow.client_stream.add(segment.seq, segment.payload)
            else:
                flow.server_payload_ts.append((segment.seq, segment.ts))
                flow.server_stream.add(segment.seq, segment.payload)
        return flow

    def flows(self) -> list[TcpFlow]:
        return list(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)
