"""Bro-like HTTP analysis substrate: TCP reassembly, HTTP parsing, logs.

Public surface of :mod:`repro.http`:

* :func:`repro.http.analyzer.analyze_segments` — packets to transactions.
* :class:`repro.http.message.HttpTransaction` and friends.
* :class:`repro.http.log.HttpLogRecord` — the Bro ``http.log`` analogue
  the classification pipeline consumes.
* :func:`repro.http.useragent.parse_user_agent` — device/browser
  annotation used by the ad-blocker usage study.
"""

from repro.http.analyzer import HttpAnalyzer, analyze_segments
from repro.http.log import (
    HttpLogRecord,
    read_log,
    records_from_text,
    records_to_text,
    transaction_to_record,
    write_log,
)
from repro.http.message import Headers, HttpRequest, HttpResponse, HttpTransaction
from repro.http.parser import (
    HttpParseError,
    parse_request_stream,
    parse_response_stream,
    serialize_request,
    serialize_response,
)
from repro.http.tcp import FlowKey, FlowTable, TcpFlow, TcpSegment, TcpStream
from repro.http.url import (
    SplitUrl,
    embedded_urls,
    hostname_of,
    is_third_party,
    join_url,
    parse_query,
    path_extension,
    registrable_domain,
    split_url,
)
from repro.http.useragent import BrowserFamily, DeviceClass, UserAgentInfo, parse_user_agent

__all__ = [
    "HttpAnalyzer",
    "analyze_segments",
    "HttpLogRecord",
    "read_log",
    "write_log",
    "records_from_text",
    "records_to_text",
    "transaction_to_record",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpTransaction",
    "HttpParseError",
    "parse_request_stream",
    "parse_response_stream",
    "serialize_request",
    "serialize_response",
    "FlowKey",
    "FlowTable",
    "TcpFlow",
    "TcpSegment",
    "TcpStream",
    "SplitUrl",
    "split_url",
    "join_url",
    "hostname_of",
    "registrable_domain",
    "is_third_party",
    "path_extension",
    "parse_query",
    "embedded_urls",
    "BrowserFamily",
    "DeviceClass",
    "UserAgentInfo",
    "parse_user_agent",
]
