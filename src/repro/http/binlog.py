"""Compact binary framing for HTTP log records (DESIGN.md §16).

TSV (:mod:`repro.http.log`) stays the interchange format; this module
is the ingestion fast path.  A binlog file is::

    file header   <8sII>   magic ``RPROBLOG``, version, reserved
    block*        <4sIII>  magic ``RBLK``, record count, payload byte
                           length, CRC-32 of the payload — followed by
                           the payload itself

and each record inside a block payload is a fixed-width struct
(timings, numeric fields, presence flags, and a nine-entry string
length table) followed by the UTF-8 bytes of its string fields,
concatenated.  The layout is record-boundary-first: a reader never
needs to scan for delimiters, so the hot loop is one
``Struct.unpack_from`` plus one bulk decode per record, with no
intermediate line or field allocations.

Integrity mirrors the ``RPROSNAP`` discipline (`filterlist/snapshot.py`):
magic + version up front, a checksum over every payload.  CRC-32 is
used instead of SHA-256 because a block is validated once per ~4096
records on the ingest hot path, and the protection target is storage or
truncation damage, not an adversary.  A damaged block routes through
the same strict/skip/quarantine :class:`~repro.robustness.ErrorPolicy`
as a malformed TSV line, consuming exactly one record ordinal so
quarantine claims and strict aborts stay deterministic across shard
workers (DESIGN.md §10).
"""

from __future__ import annotations

import math
import mmap
import struct
import zlib
from typing import Any, BinaryIO, Iterable, Iterator

from repro.http.log import (
    HttpLogRecord,
    _categorize,
    claims_line,
    shard_of,
)
from repro.robustness import ErrorPolicy, LogParseError, PipelineHealth, QuarantineWriter

__all__ = [
    "BINLOG_MAGIC",
    "BINLOG_VERSION",
    "DEFAULT_BLOCK_RECORDS",
    "BinLogReader",
    "write_binlog",
    "records_to_binary",
    "records_from_binary",
]

BINLOG_MAGIC = b"RPROBLOG"
BINLOG_VERSION = 1

_FILE_HEADER = struct.Struct("<8sII")  # magic, version, reserved
_BLOCK_MAGIC = b"RBLK"
_BLOCK_HEADER = struct.Struct("<4sIII")  # magic, record_count, payload_len, crc32

# Per-record fixed part: ts, tcp_handshake_ms, http_handshake_ms,
# status, content_length, flow_id, presence flags, then the byte
# lengths of the nine string fields in the order client, server,
# method, host, uri, referrer, user_agent, content_type, location.
# The strings' UTF-8 bytes follow, concatenated, in that same order.
_FIXED = struct.Struct("<dddiqqB9H")

_F_HTTP_MS = 0x01
_F_STATUS = 0x02
_F_CONTENT_LENGTH = 0x04
_F_REFERRER = 0x08
_F_USER_AGENT = 0x10
_F_CONTENT_TYPE = 0x20
_F_LOCATION = 0x40

#: Records per block: large enough that header+CRC overhead is noise,
#: small enough that a damaged block loses little and resume seeks stay
#: cheap (~0.5 MiB of payload at typical record sizes).
DEFAULT_BLOCK_RECORDS = 4096

_MAX_STRING_BYTES = 0xFFFF  # u16 length table


def _pack_record(record: HttpLogRecord, out: bytearray) -> None:
    """Append one record's framing to ``out``; ValueError if unrepresentable."""
    flags = 0
    http_ms = record.http_handshake_ms
    if http_ms is None:
        http_ms = 0.0
    else:
        flags |= _F_HTTP_MS
    status = record.status
    if status is None:
        status = 0
    else:
        flags |= _F_STATUS
    content_length = record.content_length
    if content_length is None:
        content_length = 0
    else:
        flags |= _F_CONTENT_LENGTH
    referrer = record.referrer
    if referrer is None:
        referrer = ""
    else:
        flags |= _F_REFERRER
    user_agent = record.user_agent
    if user_agent is None:
        user_agent = ""
    else:
        flags |= _F_USER_AGENT
    content_type = record.content_type
    if content_type is None:
        content_type = ""
    else:
        flags |= _F_CONTENT_TYPE
    location = record.location
    if location is None:
        location = ""
    else:
        flags |= _F_LOCATION
    if not (math.isfinite(record.ts) and math.isfinite(record.tcp_handshake_ms) and math.isfinite(http_ms)):
        raise ValueError("non-finite timing field")
    strings = (
        record.client.encode("utf-8"),
        record.server.encode("utf-8"),
        record.method.encode("utf-8"),
        record.host.encode("utf-8"),
        record.uri.encode("utf-8"),
        referrer.encode("utf-8"),
        user_agent.encode("utf-8"),
        content_type.encode("utf-8"),
        location.encode("utf-8"),
    )
    lengths = tuple(len(blob) for blob in strings)
    if max(lengths) > _MAX_STRING_BYTES:
        raise ValueError(f"string field exceeds {_MAX_STRING_BYTES} UTF-8 bytes")
    try:
        out += _FIXED.pack(
            record.ts,
            record.tcp_handshake_ms,
            http_ms,
            status,
            content_length,
            record.flow_id,
            flags,
            *lengths,
        )
    except struct.error as exc:
        raise ValueError(f"numeric field out of framing range: {exc}") from None
    for blob in strings:
        out += blob


def write_binlog(
    records: Iterable[HttpLogRecord],
    stream: BinaryIO,
    *,
    block_records: int = DEFAULT_BLOCK_RECORDS,
) -> int:
    """Write ``records`` in binlog framing; returns the record count.

    The binary sibling of :func:`repro.http.log.write_log`.  Unlike
    TSV's ``%09``/``%0A`` escaping — which cannot represent a field
    that literally contains those sequences — the framing is lossless
    for every :class:`HttpLogRecord` whose strings fit the u16 length
    table.
    """
    if block_records < 1:
        raise ValueError("block_records must be >= 1")
    stream.write(_FILE_HEADER.pack(BINLOG_MAGIC, BINLOG_VERSION, 0))
    payload = bytearray()
    in_block = 0
    total = 0
    for record in records:
        _pack_record(record, payload)
        in_block += 1
        total += 1
        if in_block >= block_records:
            _write_block(stream, payload, in_block)
            payload = bytearray()
            in_block = 0
    if in_block:
        _write_block(stream, payload, in_block)
    return total


def _write_block(stream: BinaryIO, payload: bytearray, count: int) -> None:
    stream.write(_BLOCK_HEADER.pack(_BLOCK_MAGIC, count, len(payload), zlib.crc32(payload)))
    stream.write(payload)


class BinLogReader:
    """Zero-copy binlog reader with the seekable-coordinate contract.

    Implements the same resumable surface as the TSV reader behind
    :class:`repro.http.log.SeekableLogReader` — ``offset`` (byte
    position after the last consumed frame), ``line_no`` (1-based
    record ordinal; damaged frames consume one ordinal), ``header``
    (always ``None``: the framing carries its schema in the version
    field) — so durable-run and shard-worker checkpoints compose
    unchanged.  The file is mapped read-only via :mod:`mmap` and
    decoded through ``Struct.unpack_from`` + one bulk string decode per
    record; nothing is copied until a record's own strings are built.

    Damage handling: a block is admitted (magic, bounds, CRC-32)
    before any of its records are yielded.  A frame that fails
    admission routes through the error policy once, then the reader
    resynchronizes — at the block's stated end when the header was
    sane, else by scanning for the next ``RBLK`` marker.  ``offset``
    strictly increases, so a corrupt tail terminates.
    """

    format = "bin"

    def __init__(
        self,
        file: BinaryIO,
        *,
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        health: PipelineHealth | None = None,
        quarantine: QuarantineWriter | None = None,
        shard: tuple[int, int] | None = None,
    ):
        self._file = file
        self.on_error = on_error
        self.health = health
        self.quarantine = quarantine
        self.shard = shard
        self.owned = True
        self.offset = 0
        self.line_no = 0
        self._mm: mmap.mmap | None = None
        raw: Any
        try:
            self._mm = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
            raw = self._mm
        except (ValueError, OSError):  # staticcheck: ok[RC002] - no fileno / empty file falls back to a read() copy
            file.seek(0)
            raw = file.read()
        self._raw = raw  # mmap or bytes; both support .find() for resync
        self._buf = memoryview(raw)
        self._size = len(self._buf)
        self._block_end = 0  # byte end of the block currently being decoded

    @property
    def header(self) -> list[str] | None:
        return None

    def seek(self, *, offset: int, line_no: int, header: list[str] | None = None) -> None:
        """Restore a checkpointed position.

        ``header`` belongs to the TSV coordinate contract and is
        accepted and ignored.  For a mid-block ``offset`` the block
        chain is re-walked from the file header (header-only reads) to
        re-establish the record-framing boundary; payloads are not
        re-verified — the original run admitted this block before the
        checkpoint was cut, and the run manifest pins input identity.
        """
        del header
        self.offset = offset
        self.line_no = line_no
        self._block_end = 0
        if offset <= _FILE_HEADER.size:
            return
        pos = _FILE_HEADER.size
        while pos < offset:
            if pos + _BLOCK_HEADER.size > self._size:
                break
            magic, _count, payload_len, _crc = _BLOCK_HEADER.unpack_from(self._buf, pos)
            if magic != _BLOCK_MAGIC:
                break
            data_start = pos + _BLOCK_HEADER.size
            data_end = data_start + payload_len
            if data_end > self._size:
                break
            if data_start <= offset < data_end:
                self._block_end = data_end
                break
            pos = data_end
        # If the walk could not reach ``offset`` the file changed under
        # the manifest's nose; iteration re-enters at ``offset`` and the
        # damage policy takes it from there.

    def __iter__(self) -> Iterator[HttpLogRecord]:
        if self.offset == 0:
            self._read_file_header()
        unpack = _FIXED.unpack_from
        fixed_size = _FIXED.size
        buf = self._buf
        size = self._size
        shard = self.shard
        health = self.health
        workers = shard[1] if shard is not None else 0
        while True:
            offset = self.offset
            if offset >= self._block_end:
                if offset >= size:
                    return
                self._enter_block()
                continue
            block_end = self._block_end
            start = offset + fixed_size
            if start > block_end:
                self._damage("damaged block: record overruns block", offset, block_end)
                continue
            (
                ts, tcp_ms, http_ms, status, content_length, flow_id, flags,
                n0, n1, n2, n3, n4, n5, n6, n7, n8,
            ) = unpack(buf, offset)
            end = start + n0 + n1 + n2 + n3 + n4 + n5 + n6 + n7 + n8
            if end > block_end:
                self._damage("damaged block: record overruns block", offset, block_end)
                continue
            region = bytes(buf[start:end])
            if region.isascii():
                # ASCII fast path: one bulk decode, then O(1) slicing —
                # char offsets equal byte offsets.
                text = region.decode("ascii")
                a = n0
                client = text[:a]
                server = text[a : a + n1]; a += n1
                method = text[a : a + n2]; a += n2
                host = text[a : a + n3]; a += n3
                uri = text[a : a + n4]; a += n4
                referrer = text[a : a + n5]; a += n5
                user_agent = text[a : a + n6]; a += n6
                content_type = text[a : a + n7]; a += n7
                location = text[a : a + n8]
            else:
                try:
                    fields = _split_utf8(region, (n0, n1, n2, n3, n4, n5, n6, n7, n8))
                except ValueError:
                    self._damage("damaged block: undecodable string field", offset, block_end)
                    continue
                (client, server, method, host, uri,
                 referrer, user_agent, content_type, location) = fields
            record = HttpLogRecord(
                ts,
                client,
                server,
                method,
                host,
                uri,
                referrer if flags & _F_REFERRER else None,
                user_agent if flags & _F_USER_AGENT else None,
                status if flags & _F_STATUS else None,
                content_type if flags & _F_CONTENT_TYPE else None,
                content_length if flags & _F_CONTENT_LENGTH else None,
                location if flags & _F_LOCATION else None,
                tcp_ms,
                http_ms if flags & _F_HTTP_MS else None,
                flow_id,
            )
            self.offset = end
            self.line_no += 1
            if shard is not None:
                self.owned = shard_of(client, user_agent if flags & _F_USER_AGENT else "", workers) == shard[0]
            if health is not None and self.owned:
                health.record_ok()
            yield record

    def iter_shard(self) -> Iterator[tuple[HttpLogRecord, bool]]:
        """Yield every record with this shard's ownership flag."""
        for record in self:
            yield record, self.owned

    def _read_file_header(self) -> None:
        size = self._size
        if size < _FILE_HEADER.size:
            self._damage("unreadable binlog: truncated file header", 0, size)
            return
        magic, version, _reserved = _FILE_HEADER.unpack_from(self._buf, 0)
        if magic != BINLOG_MAGIC:
            self._damage("unreadable binlog: bad file magic", 0, size)
            return
        if version != BINLOG_VERSION:
            self._damage(f"unreadable binlog: unsupported version {version}", 0, size)
            return
        self.offset = _FILE_HEADER.size

    def _enter_block(self) -> None:
        start = self.offset
        size = self._size
        if start + _BLOCK_HEADER.size > size:
            self._damage("damaged block: truncated header", start, size)
            return
        magic, _count, payload_len, crc = _BLOCK_HEADER.unpack_from(self._buf, start)
        if magic != _BLOCK_MAGIC:
            self._damage("damaged block: bad magic", start, None)
            return
        data_start = start + _BLOCK_HEADER.size
        data_end = data_start + payload_len
        if data_end > size:
            self._damage(
                f"damaged block: torn payload ({size - data_start} of {payload_len} bytes)",
                start,
                size,
            )
            return
        if zlib.crc32(self._buf[data_start:data_end]) != crc:
            self._damage("damaged block: checksum mismatch", start, data_end)
            return
        self._block_end = data_end
        self.offset = data_start

    def _damage(self, reason: str, at: int, resync_to: int | None) -> None:
        """Route one damaged frame through the error policy, then resync.

        Consumes exactly one record ordinal (``line_no``) so strict
        aborts and quarantine claims stay deterministic across shard
        workers.  ``resync_to`` is the next trustworthy byte position;
        ``None`` means the frame's own length cannot be trusted, so
        scan forward for the next ``RBLK`` marker.
        """
        if resync_to is None:
            found = self._raw.find(_BLOCK_MAGIC, at + 1)
            resync_to = found if found != -1 else self._size
        self.offset = resync_to
        self.line_no += 1
        pseudo = f"<binlog frame at byte {at}>"
        if self.on_error is ErrorPolicy.STRICT:
            raise LogParseError(self.line_no, reason, pseudo)
        if self.shard is not None and not claims_line(self.line_no, *self.shard):
            return
        quarantined = False
        if self.on_error is ErrorPolicy.QUARANTINE and self.quarantine is not None:
            self.quarantine.write(self.line_no, reason, pseudo)
            quarantined = True
        if self.health is not None:
            self.health.record_error("read_log", _categorize(reason), quarantined=quarantined)

    def close(self) -> None:
        self._buf.release()
        if self._mm is not None:
            self._mm.close()
        self._file.close()

    def __enter__(self) -> "BinLogReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _split_utf8(region: bytes, lengths: tuple[int, ...]) -> list[str]:
    """Slice ``region`` by the length table and decode each field."""
    fields = []
    a = 0
    for n in lengths:
        fields.append(region[a : a + n].decode("utf-8"))
        a += n
    return fields


def records_to_binary(
    records: Iterable[HttpLogRecord], *, block_records: int = DEFAULT_BLOCK_RECORDS
) -> bytes:
    """Serialize records to in-memory binlog bytes."""
    import io

    buffer = io.BytesIO()
    write_binlog(records, buffer, block_records=block_records)
    return buffer.getvalue()


def records_from_binary(data: bytes) -> list[HttpLogRecord]:
    """Inverse of :func:`records_to_binary` (strict policy)."""
    import io

    with BinLogReader(io.BytesIO(data)) as reader:
        return list(reader)
