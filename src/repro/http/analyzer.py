"""Bro-style HTTP analyzer: TCP segments -> HTTP transaction log.

This is the reproduction's analogue of the Bro (Zeek) HTTP analyzer the
paper uses, including the paper's extension of logging the ``Location``
response header for redirect fix-up.  The analyzer consumes
:class:`~repro.http.tcp.TcpSegment` records, reassembles both stream
directions of each port-80 flow, parses pipelined requests/responses,
pairs them in order, and emits :class:`~repro.http.message.HttpTransaction`
records with HTTP and TCP handshake timings.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.http.message import HttpTransaction
from repro.http.parser import (
    HttpParseError,
    parse_request_stream,
    parse_response_stream,
    serialize_request,
)
from repro.http.tcp import FlowTable, TcpFlow, TcpSegment

__all__ = ["HttpAnalyzer", "analyze_segments"]


class HttpAnalyzer:
    """Reconstructs HTTP transactions from captured TCP segments.

    Parameters:
        http_ports: TCP server ports treated as HTTP (the paper's
            port-based DAG classification; default ``{80}``).
        strict: when True, parse errors raise; when False (default, as
            a passive monitor must behave) broken flows are skipped and
            counted in :attr:`parse_errors`.
    """

    def __init__(self, http_ports: Iterable[int] = (80,), strict: bool = False):
        self._http_ports = frozenset(http_ports)
        self._strict = strict
        self._table = FlowTable()
        self.parse_errors = 0

    def add_segment(self, segment: TcpSegment) -> None:
        """Feed one captured segment into the flow table."""
        if segment.dport in self._http_ports or segment.sport in self._http_ports:
            self._table.add_segment(segment)

    def transactions(self) -> list[HttpTransaction]:
        """Finish analysis and return all transactions, time-ordered."""
        result: list[HttpTransaction] = []
        for flow in self._table.flows():
            try:
                result.extend(self._analyze_flow(flow))
            except HttpParseError:
                if self._strict:
                    raise
                self.parse_errors += 1
        result.sort(key=lambda txn: txn.ts_request)
        return result

    def _analyze_flow(self, flow: TcpFlow) -> list[HttpTransaction]:
        client_data = flow.client_stream.data
        if not client_data:
            return []
        requests = parse_request_stream(client_data)
        methods = [request.method for request in requests]
        responses = parse_response_stream(flow.server_stream.data, methods)

        # Locate each request's byte offset so persistent connections
        # get per-transaction timestamps rather than the flow start.
        request_offsets: list[int] = []
        cursor = 0
        for request in requests:
            request_offsets.append(cursor)
            cursor += len(serialize_request(request))

        response_offsets: list[int] = []
        server_data = flow.server_stream.data
        cursor = 0
        for _response in responses:
            response_offsets.append(cursor)
            end = server_data.find(b"\r\n\r\n", cursor)
            cursor = len(server_data) if end < 0 else _advance_past_body(
                server_data, end + 4, responses[len(response_offsets) - 1].body_length
            )

        transactions = []
        handshake = flow.tcp_handshake_ms or 0.0
        for index, request in enumerate(requests):
            response = responses[index] if index < len(responses) else None
            ts_request = flow.ts_at_client_offset(request_offsets[index])
            if ts_request is None:
                ts_request = flow.first_ts or 0.0
            ts_response = None
            if response is not None and index < len(response_offsets):
                ts_response = flow.ts_at_server_offset(response_offsets[index])
            transactions.append(
                HttpTransaction(
                    client=flow.key.client,
                    server=flow.key.server,
                    request=request,
                    response=response,
                    ts_request=ts_request,
                    ts_response=ts_response,
                    tcp_handshake_ms=handshake,
                    flow_id=flow.flow_id,
                )
            )
        return transactions


def _advance_past_body(data: bytes, offset: int, body_length: int) -> int:
    """Advance ``offset`` past a response body of known parsed length."""
    return min(len(data), offset + body_length)


def analyze_segments(
    segments: Iterable[TcpSegment], http_ports: Iterable[int] = (80,)
) -> list[HttpTransaction]:
    """Convenience one-shot wrapper around :class:`HttpAnalyzer`."""
    analyzer = HttpAnalyzer(http_ports=http_ports)
    for segment in segments:
        analyzer.add_segment(segment)
    return analyzer.transactions()
