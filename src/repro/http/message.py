"""HTTP message and transaction models.

These dataclasses are the lingua franca between the substrates: the
browser emulator and trace generator *produce* transactions, the
Bro-like analyzer *reconstructs* them from wire bytes, and the
classification pipeline *consumes* them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http.url import SplitUrl, split_url

__all__ = ["Headers", "HttpRequest", "HttpResponse", "HttpTransaction"]


class Headers:
    """Case-insensitive, order-preserving HTTP header collection."""

    __slots__ = ("_items",)

    def __init__(self, items: list[tuple[str, str]] | dict[str, str] | None = None):
        if items is None:
            self._items: list[tuple[str, str]] = []
        elif isinstance(items, dict):
            self._items = list(items.items())
        else:
            self._items = list(items)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return the first value for ``name`` (case-insensitive)."""
        lower = name.lower()
        for key, value in self._items:
            if key.lower() == lower:
                return value
        return default

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single value."""
        lower = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lower]
        self._items.append((name, value))

    def add(self, name: str, value: str) -> None:
        self._items.append((name, value))

    def remove(self, name: str) -> None:
        lower = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lower]

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    def copy(self) -> "Headers":
        return Headers(self._items)


@dataclass(slots=True)
class HttpRequest:
    """An HTTP request as visible in header traces."""

    method: str
    uri: str
    headers: Headers = field(default_factory=Headers)
    version: str = "HTTP/1.1"

    @property
    def host(self) -> str:
        return (self.headers.get("Host") or "").lower()

    @property
    def referer(self) -> str | None:
        return self.headers.get("Referer")

    @property
    def user_agent(self) -> str | None:
        return self.headers.get("User-Agent")

    @property
    def url(self) -> str:
        """Absolute URL reassembled from Host + request target."""
        if self.uri.startswith("http://") or self.uri.startswith("https://"):
            return self.uri
        return f"http://{self.host}{self.uri}"

    def split(self) -> SplitUrl:
        return split_url(self.url)


@dataclass(slots=True)
class HttpResponse:
    """An HTTP response as visible in header traces."""

    status: int
    reason: str = ""
    headers: Headers = field(default_factory=Headers)
    version: str = "HTTP/1.1"
    body_length: int = 0

    @property
    def content_type(self) -> str | None:
        value = self.headers.get("Content-Type")
        if value is None:
            return None
        semi = value.find(";")
        if semi >= 0:
            value = value[:semi]
        return value.strip().lower() or None

    @property
    def content_length(self) -> int | None:
        value = self.headers.get("Content-Length")
        if value is None or not value.strip().isdigit():
            return None
        return int(value.strip())

    @property
    def location(self) -> str | None:
        return self.headers.get("Location")

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308) and self.location is not None


@dataclass(slots=True)
class HttpTransaction:
    """A request/response pair on one TCP flow, with timing.

    Attributes:
        client: anonymized client IP.
        server: server IP.
        ts_request: timestamp of the first request packet (epoch s).
        ts_response: timestamp of the first response packet.
        tcp_handshake_ms: SYN-ACK minus SYN time of the carrying flow —
            the paper's proxy for network RTT (§8.2).
        flow_id: identifier of the TCP flow (persistent connections
            carry several transactions on one flow).
    """

    client: str
    server: str
    request: HttpRequest
    response: HttpResponse | None
    ts_request: float
    ts_response: float | None = None
    tcp_handshake_ms: float = 0.0
    flow_id: int = 0

    @property
    def http_handshake_ms(self) -> float | None:
        """First response packet minus first request packet, in ms."""
        if self.ts_response is None:
            return None
        return max(0.0, (self.ts_response - self.ts_request) * 1000.0)

    @property
    def url(self) -> str:
        return self.request.url
