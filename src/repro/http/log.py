"""Bro-style TSV log records for HTTP transactions.

The paper's pipeline runs on logs produced by the Bro HTTP analyzer
rather than raw packets.  :class:`HttpLogRecord` mirrors the fields the
paper lists in §3.1 — Host, URI, Referer, Content-Type, Content-Length
and (their Bro extension) Location — plus the timing fields §8.2 needs.
Logs round-trip through a plain TSV format so experiments can be staged
to disk.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, TextIO

from repro.http.message import HttpTransaction
from repro.robustness import ErrorPolicy, LogParseError, PipelineHealth, QuarantineWriter

__all__ = ["HttpLogRecord", "transaction_to_record", "write_log", "read_log"]

_UNSET = "-"


@dataclass(slots=True)
class HttpLogRecord:
    """One line of the HTTP log (flattened transaction)."""

    ts: float
    client: str
    server: str
    method: str
    host: str
    uri: str
    referrer: str | None
    user_agent: str | None
    status: int | None
    content_type: str | None
    content_length: int | None
    location: str | None
    tcp_handshake_ms: float
    http_handshake_ms: float | None
    flow_id: int

    @property
    def url(self) -> str:
        if self.uri.startswith("http://") or self.uri.startswith("https://"):
            return self.uri
        return f"http://{self.host}{self.uri}"


def transaction_to_record(txn: HttpTransaction) -> HttpLogRecord:
    """Flatten an :class:`HttpTransaction` into a log record."""
    response = txn.response
    return HttpLogRecord(
        ts=txn.ts_request,
        client=txn.client,
        server=txn.server,
        method=txn.request.method,
        host=txn.request.host,
        uri=txn.request.uri,
        referrer=txn.request.referer,
        user_agent=txn.request.user_agent,
        status=response.status if response else None,
        content_type=response.content_type if response else None,
        content_length=response.content_length if response else None,
        location=response.location if response else None,
        tcp_handshake_ms=txn.tcp_handshake_ms,
        http_handshake_ms=txn.http_handshake_ms,
        flow_id=txn.flow_id,
    )


_FIELD_NAMES = [f.name for f in fields(HttpLogRecord)]


def _encode(value: object) -> str:
    if value is None:
        return _UNSET
    text = str(value)
    return text.replace("\t", "%09").replace("\n", "%0A")


# Bro-style cap on a single field; anything longer is capture damage
# (or an adversarially inflated header), not a legitimate value.
_MAX_FIELD_LEN = 8192


def _decode(name: str, token: str) -> object:
    if token == _UNSET:
        return None
    token = token.replace("%09", "\t").replace("%0A", "\n")
    if name in ("ts", "tcp_handshake_ms", "http_handshake_ms"):
        value = float(token)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite {name}")
        return value
    if name in ("status", "content_length", "flow_id"):
        return int(token)
    return token


def write_log(records: Iterable[HttpLogRecord], stream: TextIO) -> int:
    """Write records as TSV with a header line; returns line count."""
    stream.write("#" + "\t".join(_FIELD_NAMES) + "\n")
    count = 0
    for record in records:
        row = [_encode(getattr(record, name)) for name in _FIELD_NAMES]
        stream.write("\t".join(row) + "\n")
        count += 1
    return count


# Fields old logs may legitimately lack (added after the format froze);
# anything else missing from a row is damage, not version skew.
_OPTIONAL_DEFAULTS = {"tcp_handshake_ms": 0.0, "flow_id": 0}

# Stable low-cardinality keys for the health counters.
_REASON_CATEGORIES = [
    ("expected ", "field-count"),
    ("oversized field", "oversized-field"),
    ("bad value", "bad-value"),
    ("missing fields", "missing-fields"),
    ("unknown fields", "unknown-fields"),
]


def _categorize(reason: str) -> str:
    for prefix, category in _REASON_CATEGORIES:
        if reason.startswith(prefix):
            return category
    return "other"


def _decode_line(line: str, header: list[str]) -> HttpLogRecord:
    """Decode one data line against ``header``; raises ValueError on damage."""
    tokens = line.split("\t")
    if len(tokens) != len(header):
        raise ValueError(f"expected {len(header)} fields, got {len(tokens)}")
    values: dict[str, object] = {}
    for name, token in zip(header, tokens):
        if len(token) > _MAX_FIELD_LEN:
            raise ValueError(f"oversized field '{name}' ({len(token)} chars)")
        try:
            values[name] = _decode(name, token)
        except ValueError:
            raise ValueError(f"bad value for field '{name}': {token[:80]!r}") from None
    for name, default in _OPTIONAL_DEFAULTS.items():
        values.setdefault(name, default)
    missing = [name for name in _FIELD_NAMES if name not in values]
    if missing:
        raise ValueError(f"missing fields: {', '.join(missing)}")
    unknown = [name for name in values if name not in _FIELD_NAMES]
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(unknown)}")
    return HttpLogRecord(**values)  # type: ignore[arg-type]


def read_log(
    stream: TextIO,
    *,
    on_error: ErrorPolicy = ErrorPolicy.STRICT,
    health: PipelineHealth | None = None,
    quarantine: QuarantineWriter | None = None,
) -> Iterator[HttpLogRecord]:
    """Read records written by :func:`write_log`.

    Malformed lines are routed through ``on_error``: ``STRICT`` raises
    :class:`LogParseError` citing the 1-based line number, ``SKIP``
    drops and counts them in ``health``, ``QUARANTINE`` additionally
    writes the raw line to the ``quarantine`` sidecar.
    """
    header: list[str] | None = None
    for line_no, line in enumerate(stream, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            candidate = line[1:].split("\t")
            # Adopt a header only if its names are plausible; a garbled
            # comment must not poison the parse of every later line.
            if set(candidate) <= set(_FIELD_NAMES):
                header = candidate
            continue
        try:
            record = _decode_line(line, header if header is not None else _FIELD_NAMES)
        except ValueError as exc:
            reason = str(exc)
            if on_error is ErrorPolicy.STRICT:
                raise LogParseError(line_no, reason, line) from None
            quarantined = False
            if on_error is ErrorPolicy.QUARANTINE and quarantine is not None:
                quarantine.write(line_no, reason, line)
                quarantined = True
            if health is not None:
                health.record_error("read_log", _categorize(reason), quarantined=quarantined)
            continue
        if health is not None:
            health.record_ok()
        yield record


def records_to_text(records: Iterable[HttpLogRecord]) -> str:
    """Serialize records to an in-memory TSV string."""
    buffer = io.StringIO()
    write_log(records, buffer)
    return buffer.getvalue()


def records_from_text(text: str) -> list[HttpLogRecord]:
    """Inverse of :func:`records_to_text`."""
    return list(read_log(io.StringIO(text)))
