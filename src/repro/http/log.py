"""Bro-style TSV log records for HTTP transactions.

The paper's pipeline runs on logs produced by the Bro HTTP analyzer
rather than raw packets.  :class:`HttpLogRecord` mirrors the fields the
paper lists in §3.1 — Host, URI, Referer, Content-Type, Content-Length
and (their Bro extension) Location — plus the timing fields §8.2 needs.
Logs round-trip through a plain TSV format so experiments can be staged
to disk.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, TextIO

from repro.http.message import HttpTransaction

__all__ = ["HttpLogRecord", "transaction_to_record", "write_log", "read_log"]

_UNSET = "-"


@dataclass(slots=True)
class HttpLogRecord:
    """One line of the HTTP log (flattened transaction)."""

    ts: float
    client: str
    server: str
    method: str
    host: str
    uri: str
    referrer: str | None
    user_agent: str | None
    status: int | None
    content_type: str | None
    content_length: int | None
    location: str | None
    tcp_handshake_ms: float
    http_handshake_ms: float | None
    flow_id: int

    @property
    def url(self) -> str:
        if self.uri.startswith("http://") or self.uri.startswith("https://"):
            return self.uri
        return f"http://{self.host}{self.uri}"


def transaction_to_record(txn: HttpTransaction) -> HttpLogRecord:
    """Flatten an :class:`HttpTransaction` into a log record."""
    response = txn.response
    return HttpLogRecord(
        ts=txn.ts_request,
        client=txn.client,
        server=txn.server,
        method=txn.request.method,
        host=txn.request.host,
        uri=txn.request.uri,
        referrer=txn.request.referer,
        user_agent=txn.request.user_agent,
        status=response.status if response else None,
        content_type=response.content_type if response else None,
        content_length=response.content_length if response else None,
        location=response.location if response else None,
        tcp_handshake_ms=txn.tcp_handshake_ms,
        http_handshake_ms=txn.http_handshake_ms,
        flow_id=txn.flow_id,
    )


_FIELD_NAMES = [f.name for f in fields(HttpLogRecord)]


def _encode(value: object) -> str:
    if value is None:
        return _UNSET
    text = str(value)
    return text.replace("\t", "%09").replace("\n", "%0A")


def _decode(name: str, token: str) -> object:
    if token == _UNSET:
        return None
    token = token.replace("%09", "\t").replace("%0A", "\n")
    if name in ("ts", "tcp_handshake_ms", "http_handshake_ms"):
        return float(token)
    if name in ("status", "content_length", "flow_id"):
        return int(token)
    return token


def write_log(records: Iterable[HttpLogRecord], stream: TextIO) -> int:
    """Write records as TSV with a header line; returns line count."""
    stream.write("#" + "\t".join(_FIELD_NAMES) + "\n")
    count = 0
    for record in records:
        row = [_encode(getattr(record, name)) for name in _FIELD_NAMES]
        stream.write("\t".join(row) + "\n")
        count += 1
    return count


def read_log(stream: TextIO) -> Iterator[HttpLogRecord]:
    """Read records written by :func:`write_log`."""
    header: list[str] | None = None
    for line in stream:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            header = line[1:].split("\t")
            continue
        if header is None:
            header = _FIELD_NAMES
        tokens = line.split("\t")
        values = {name: _decode(name, token) for name, token in zip(header, tokens)}
        # Defaults keep old logs readable if fields were added later.
        values.setdefault("tcp_handshake_ms", 0.0)
        values.setdefault("flow_id", 0)
        yield HttpLogRecord(**values)  # type: ignore[arg-type]


def records_to_text(records: Iterable[HttpLogRecord]) -> str:
    """Serialize records to an in-memory TSV string."""
    buffer = io.StringIO()
    write_log(records, buffer)
    return buffer.getvalue()


def records_from_text(text: str) -> list[HttpLogRecord]:
    """Inverse of :func:`records_to_text`."""
    return list(read_log(io.StringIO(text)))
