"""Bro-style TSV log records for HTTP transactions.

The paper's pipeline runs on logs produced by the Bro HTTP analyzer
rather than raw packets.  :class:`HttpLogRecord` mirrors the fields the
paper lists in §3.1 — Host, URI, Referer, Content-Type, Content-Length
and (their Bro extension) Location — plus the timing fields §8.2 needs.
Logs round-trip through a plain TSV format so experiments can be staged
to disk.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, TextIO

from repro.http.message import HttpTransaction
from repro.robustness import ErrorPolicy, LogParseError, PipelineHealth, QuarantineWriter

__all__ = [
    "HttpLogRecord",
    "transaction_to_record",
    "write_log",
    "read_log",
    "SeekableLogReader",
    "shard_of",
    "claims_line",
]

_UNSET = "-"


@dataclass(slots=True)
class HttpLogRecord:
    """One line of the HTTP log (flattened transaction)."""

    ts: float
    client: str
    server: str
    method: str
    host: str
    uri: str
    referrer: str | None
    user_agent: str | None
    status: int | None
    content_type: str | None
    content_length: int | None
    location: str | None
    tcp_handshake_ms: float
    http_handshake_ms: float | None
    flow_id: int

    @property
    def url(self) -> str:
        if self.uri.startswith("http://") or self.uri.startswith("https://"):
            return self.uri
        return f"http://{self.host}{self.uri}"

    def to_row(self) -> tuple:
        """Field values in schema order — the checkpoint wire form."""
        return tuple(getattr(self, name) for name in _FIELD_NAMES)

    @classmethod
    def from_row(cls, row: tuple) -> "HttpLogRecord":
        """Inverse of :meth:`to_row`."""
        return cls(*row)


def transaction_to_record(txn: HttpTransaction) -> HttpLogRecord:
    """Flatten an :class:`HttpTransaction` into a log record."""
    response = txn.response
    return HttpLogRecord(
        ts=txn.ts_request,
        client=txn.client,
        server=txn.server,
        method=txn.request.method,
        host=txn.request.host,
        uri=txn.request.uri,
        referrer=txn.request.referer,
        user_agent=txn.request.user_agent,
        status=response.status if response else None,
        content_type=response.content_type if response else None,
        content_length=response.content_length if response else None,
        location=response.location if response else None,
        tcp_handshake_ms=txn.tcp_handshake_ms,
        http_handshake_ms=txn.http_handshake_ms,
        flow_id=txn.flow_id,
    )


_FIELD_NAMES = [f.name for f in fields(HttpLogRecord)]


def _encode(value: object) -> str:
    if value is None:
        return _UNSET
    text = str(value)
    return text.replace("\t", "%09").replace("\n", "%0A")


# Bro-style cap on a single field; anything longer is capture damage
# (or an adversarially inflated header), not a legitimate value.
_MAX_FIELD_LEN = 8192


def _decode(name: str, token: str) -> object:
    if token == _UNSET:
        return None
    token = token.replace("%09", "\t").replace("%0A", "\n")
    if name in ("ts", "tcp_handshake_ms", "http_handshake_ms"):
        value = float(token)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite {name}")
        return value
    if name in ("status", "content_length", "flow_id"):
        return int(token)
    return token


def write_log(records: Iterable[HttpLogRecord], stream: TextIO) -> int:
    """Write records as TSV with a header line; returns line count."""
    stream.write("#" + "\t".join(_FIELD_NAMES) + "\n")
    count = 0
    for record in records:
        row = [_encode(getattr(record, name)) for name in _FIELD_NAMES]
        stream.write("\t".join(row) + "\n")
        count += 1
    return count


# Fields old logs may legitimately lack (added after the format froze);
# anything else missing from a row is damage, not version skew.
_OPTIONAL_DEFAULTS = {"tcp_handshake_ms": 0.0, "flow_id": 0}

# Stable low-cardinality keys for the health counters.
_REASON_CATEGORIES = [
    ("expected ", "field-count"),
    ("oversized field", "oversized-field"),
    ("bad value", "bad-value"),
    ("missing fields", "missing-fields"),
    ("unknown fields", "unknown-fields"),
    ("damaged block", "damaged-block"),
    ("unreadable binlog", "damaged-file"),
]


def _categorize(reason: str) -> str:
    for prefix, category in _REASON_CATEGORIES:
        if reason.startswith(prefix):
            return category
    return "other"


def _decode_line(line: str, header: list[str]) -> HttpLogRecord:
    """Decode one data line against ``header``; raises ValueError on damage."""
    tokens = line.split("\t")
    if len(tokens) != len(header):
        raise ValueError(f"expected {len(header)} fields, got {len(tokens)}")
    values: dict[str, object] = {}
    for name, token in zip(header, tokens):
        if len(token) > _MAX_FIELD_LEN:
            raise ValueError(f"oversized field '{name}' ({len(token)} chars)")
        try:
            values[name] = _decode(name, token)
        except ValueError:
            raise ValueError(f"bad value for field '{name}': {token[:80]!r}") from None
    for name, default in _OPTIONAL_DEFAULTS.items():
        values.setdefault(name, default)
    missing = [name for name in _FIELD_NAMES if name not in values]
    if missing:
        raise ValueError(f"missing fields: {', '.join(missing)}")
    unknown = [name for name in values if name not in _FIELD_NAMES]
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(unknown)}")
    return HttpLogRecord(**values)  # type: ignore[arg-type]


def shard_of(client: str, user_agent: str, workers: int) -> int:
    """Shard index owning user ``(client, user_agent)`` out of ``workers``.

    The parallel execution layer (DESIGN.md §10) splits work by *user*
    — the paper's per-user accounting is independent between users —
    so every record of a user lands on the same worker.  CRC-32 is
    stable across Python versions and processes (unlike ``hash()``,
    which PYTHONHASHSEED salts), which the run manifest relies on when
    a resumed run must reproduce the original sharding.
    """
    key = f"{client}\x00{user_agent}".encode("utf-8", errors="surrogatepass")
    return zlib.crc32(key) % workers


def claims_line(line_no: int, shard: int, workers: int) -> bool:
    """Does ``shard`` own malformed line ``line_no``?

    A line that does not parse has no user to shard by, so exactly one
    worker must claim its error accounting and quarantine write; a
    stable round-robin on the 1-based line number spreads that work and
    keeps the claim deterministic for resume.
    """
    return line_no % workers == shard


class _LineHandler:
    """Shared per-line parse path of :func:`read_log` and
    :class:`SeekableLogReader`: header adoption, decoding, and the
    error-policy routing (strict raise / skip / quarantine).

    With ``shard=(k, W)`` the handler still *parses* every line — all
    workers must agree on global record positions — but accounts for a
    parsed record only if shard ``k`` owns its user, and for a malformed
    line only if ``k`` claims its line number (DESIGN.md §10).  Strict
    mode raises in every worker: the abort must not depend on which
    shard meets the bad line.  After each parsed record, :attr:`owned`
    says whether this shard owns it.
    """

    __slots__ = ("header", "on_error", "health", "quarantine", "shard", "owned")

    def __init__(
        self,
        *,
        on_error: ErrorPolicy,
        health: PipelineHealth | None,
        quarantine: QuarantineWriter | None,
        header: list[str] | None = None,
        shard: tuple[int, int] | None = None,
    ):
        self.header = header
        self.on_error = on_error
        self.health = health
        self.quarantine = quarantine
        self.shard = shard
        self.owned = True

    def handle(self, line: str, line_no: int) -> HttpLogRecord | None:
        """Parse one newline-stripped line; ``None`` for non-records."""
        if not line:
            return None
        if line.startswith("#"):
            candidate = line[1:].split("\t")
            # Adopt a header only if its names are plausible; a garbled
            # comment must not poison the parse of every later line.
            if set(candidate) <= set(_FIELD_NAMES):
                self.header = candidate
            return None
        try:
            record = _decode_line(line, self.header if self.header is not None else _FIELD_NAMES)
        except ValueError as exc:
            reason = str(exc)
            if self.on_error is ErrorPolicy.STRICT:
                raise LogParseError(line_no, reason, line) from None
            if self.shard is not None and not claims_line(line_no, *self.shard):
                return None
            quarantined = False
            if self.on_error is ErrorPolicy.QUARANTINE and self.quarantine is not None:
                self.quarantine.write(line_no, reason, line)
                quarantined = True
            if self.health is not None:
                self.health.record_error("read_log", _categorize(reason), quarantined=quarantined)
            return None
        if self.shard is not None:
            self.owned = shard_of(record.client, record.user_agent or "", self.shard[1]) == self.shard[0]
        if self.health is not None and self.owned:
            self.health.record_ok()
        return record


def read_log(
    stream: TextIO,
    *,
    on_error: ErrorPolicy = ErrorPolicy.STRICT,
    health: PipelineHealth | None = None,
    quarantine: QuarantineWriter | None = None,
) -> Iterator[HttpLogRecord]:
    """Read records written by :func:`write_log`.

    Malformed lines are routed through ``on_error``: ``STRICT`` raises
    :class:`LogParseError` citing the 1-based line number, ``SKIP``
    drops and counts them in ``health``, ``QUARANTINE`` additionally
    writes the raw line to the ``quarantine`` sidecar.
    """
    handler = _LineHandler(on_error=on_error, health=health, quarantine=quarantine)
    for line_no, line in enumerate(stream, start=1):
        record = handler.handle(_strip_eol(line), line_no)
        if record is not None:
            yield record


def _strip_eol(line: str) -> str:
    """Strip one line terminator — ``\\n`` or ``\\r\\n``.

    ``rstrip("\\n")`` alone let a CRLF log poison the last field of
    every record with a trailing ``\\r``; stripping characterwise (not
    ``rstrip("\\r\\n")``, which would eat a value's own trailing
    newlines) normalizes both conventions.
    """
    if line.endswith("\n"):
        line = line[:-1]
    if line.endswith("\r"):
        line = line[:-1]
    return line


class _TextLogReader:
    """TSV backend of :class:`SeekableLogReader`: line-at-a-time binary
    reads with the coordinates (`offset`/`line_no`/`header`) a durable
    checkpoint stores."""

    format = "tsv"

    def __init__(
        self,
        file,
        *,
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        health: PipelineHealth | None = None,
        quarantine: QuarantineWriter | None = None,
        shard: tuple[int, int] | None = None,
    ):
        self._file = file
        self._handler = _LineHandler(
            on_error=on_error, health=health, quarantine=quarantine, shard=shard
        )
        self.offset = 0
        self.line_no = 0

    @property
    def header(self) -> list[str] | None:
        return self._handler.header

    @property
    def owned(self) -> bool:
        return self._handler.owned

    def seek(self, *, offset: int, line_no: int, header: list[str] | None) -> None:
        self._file.seek(offset)
        self.offset = offset
        self.line_no = line_no
        self._handler.header = header

    def __iter__(self) -> Iterator[HttpLogRecord]:
        for raw in self._file:
            self.offset += len(raw)
            self.line_no += 1
            line = _strip_eol(raw.decode("utf-8", errors="replace"))
            record = self._handler.handle(line, self.line_no)
            if record is not None:
                yield record

    def close(self) -> None:
        self._file.close()


class SeekableLogReader:
    """Record iterator over an on-disk log with byte-offset accounting.

    Durable runs (DESIGN.md §8) checkpoint their input position between
    records and later continue mid-file, so this reader maintains three
    resumable coordinates:

    * ``offset`` — byte position after the last consumed frame (a TSV
      line, or a binlog record / damaged frame);
    * ``line_no`` — 1-based ordinal of the last consumed frame;
    * ``header`` — the adopted column header (TSV only; ``None`` for
      binlog), which may precede the resume point and must therefore
      travel in the checkpoint.

    The coordinates update *before* a record is yielded, so at yield
    time they already describe the post-record position a checkpoint
    should store.  Error-policy routing matches :func:`read_log`.

    The on-disk format is sniffed from the leading magic: a file that
    opens with ``RPROBLOG`` takes the zero-copy binary fast path
    (:class:`repro.http.binlog.BinLogReader`, DESIGN.md §16); anything
    else is read as TSV.  Both backends expose identical coordinate
    semantics, so `--resume`, `--workers` sharding, and quarantine
    accounting compose with either format unchanged.
    """

    def __init__(
        self,
        path: str,
        *,
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        health: PipelineHealth | None = None,
        quarantine: QuarantineWriter | None = None,
        shard: tuple[int, int] | None = None,
    ):
        from repro.http import binlog  # local import: binlog builds on this module

        file = open(path, "rb")
        try:
            magic = file.read(len(binlog.BINLOG_MAGIC))
            file.seek(0)
            impl: _TextLogReader | binlog.BinLogReader
            if magic == binlog.BINLOG_MAGIC:
                impl = binlog.BinLogReader(
                    file, on_error=on_error, health=health, quarantine=quarantine, shard=shard
                )
            else:
                impl = _TextLogReader(
                    file, on_error=on_error, health=health, quarantine=quarantine, shard=shard
                )
        except BaseException:  # staticcheck: ok[RC002] cleanup-and-reraise, nothing swallowed
            file.close()
            raise
        self._impl = impl

    @property
    def format(self) -> str:
        """``"tsv"`` or ``"bin"`` — the sniffed on-disk format."""
        return self._impl.format

    @property
    def offset(self) -> int:
        return self._impl.offset

    @property
    def line_no(self) -> int:
        return self._impl.line_no

    @property
    def header(self) -> list[str] | None:
        return self._impl.header

    def seek(self, *, offset: int, line_no: int, header: list[str] | None) -> None:
        """Restore a checkpointed position (and the header adopted before it)."""
        self._impl.seek(offset=offset, line_no=line_no, header=header)

    def __iter__(self) -> Iterator[HttpLogRecord]:
        return iter(self._impl)

    def iter_shard(self) -> Iterator[tuple[HttpLogRecord, bool]]:
        """Yield every parsed record with its ownership flag.

        Shard workers (DESIGN.md §10) need the full parsed stream — a
        record owned by another shard still occupies a global ingest
        index and feeds the replicated reorder heap — plus a flag
        saying whether this shard classifies it.  Without a ``shard``
        every record is owned, which makes one-worker pools exercise
        the same path.
        """
        impl = self._impl
        for record in impl:
            yield record, impl.owned

    def close(self) -> None:
        self._impl.close()

    def __enter__(self) -> "SeekableLogReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def records_to_text(records: Iterable[HttpLogRecord]) -> str:
    """Serialize records to an in-memory TSV string."""
    buffer = io.StringIO()
    write_log(records, buffer)
    return buffer.getvalue()


def records_from_text(text: str) -> list[HttpLogRecord]:
    """Inverse of :func:`records_to_text`."""
    return list(read_log(io.StringIO(text)))
