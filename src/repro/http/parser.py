"""HTTP/1.x wire-format parser.

Parses the byte streams reassembled by :mod:`repro.http.tcp` into
:class:`~repro.http.message.HttpRequest` / ``HttpResponse`` objects.
Only the header section is retained — mirroring the paper's capture
setup, where payload beyond the headers is never stored.  Bodies are
skipped by ``Content-Length`` accounting (chunked bodies are consumed
chunk-by-chunk but their content is discarded).
"""

from __future__ import annotations

from repro.http.message import Headers, HttpRequest, HttpResponse

__all__ = [
    "HttpParseError",
    "parse_request_stream",
    "parse_response_stream",
    "serialize_request",
    "serialize_response",
]

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"
_MAX_HEADER_BYTES = 64 * 1024


class HttpParseError(ValueError):
    """Raised when a byte stream is not valid HTTP/1.x."""


def _parse_headers(block: bytes) -> Headers:
    headers = Headers()
    for line in block.split(_CRLF):
        if not line:
            continue
        colon = line.find(b":")
        if colon <= 0:
            raise HttpParseError(f"malformed header line: {line[:80]!r}")
        name = line[:colon].decode("latin-1").strip()
        value = line[colon + 1 :].decode("latin-1").strip()
        headers.add(name, value)
    return headers


def _split_message(data: bytes, offset: int) -> tuple[bytes, bytes, int]:
    """Return (start_line, header_block, offset_after_headers)."""
    end = data.find(_HEADER_END, offset, offset + _MAX_HEADER_BYTES)
    if end < 0:
        raise HttpParseError("header section not terminated")
    head = data[offset:end]
    first_crlf = head.find(_CRLF)
    if first_crlf < 0:
        start_line, header_block = head, b""
    else:
        start_line, header_block = head[:first_crlf], head[first_crlf + 2 :]
    return start_line, header_block, end + len(_HEADER_END)


def _skip_body(data: bytes, offset: int, headers: Headers, *, bodyless: bool) -> tuple[int, int]:
    """Skip a message body, returning (new_offset, body_length)."""
    if bodyless:
        return offset, 0
    transfer = (headers.get("Transfer-Encoding") or "").lower()
    if "chunked" in transfer:
        total = 0
        while True:
            line_end = data.find(_CRLF, offset)
            if line_end < 0:
                raise HttpParseError("truncated chunked body")
            size_token = data[offset:line_end].split(b";")[0].strip()
            try:
                size = int(size_token, 16)
            except ValueError as exc:
                raise HttpParseError(f"bad chunk size {size_token!r}") from exc
            offset = line_end + 2 + size + 2
            total += size
            if size == 0:
                return offset, total
    length = headers.get("Content-Length")
    if length is not None and length.strip().isdigit():
        size = int(length.strip())
        return offset + size, size
    return offset, 0


def _reads_until_close(headers: Headers, version: str) -> bool:
    """HTTP/1.0-style delimiting: no length, no chunking — the body
    runs until the connection closes."""
    if headers.get("Content-Length") is not None:
        return False
    if "chunked" in (headers.get("Transfer-Encoding") or "").lower():
        return False
    connection = (headers.get("Connection") or "").lower()
    return version == "HTTP/1.0" or "close" in connection


def parse_request_stream(data: bytes) -> list[HttpRequest]:
    """Parse all pipelined requests in a client-to-server byte stream."""
    requests: list[HttpRequest] = []
    offset = 0
    while offset < len(data):
        start_line, header_block, offset = _split_message(data, offset)
        parts = start_line.decode("latin-1").split(" ", 2)
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpParseError(f"malformed request line: {start_line[:80]!r}")
        method, uri, version = parts
        headers = _parse_headers(header_block)
        offset, _ = _skip_body(data, offset, headers, bodyless=method in ("GET", "HEAD"))
        requests.append(HttpRequest(method=method, uri=uri, headers=headers, version=version))
    return requests


def parse_response_stream(data: bytes, request_methods: list[str] | None = None) -> list[HttpResponse]:
    """Parse all responses in a server-to-client byte stream.

    ``request_methods`` lets the caller flag HEAD transactions, whose
    responses never carry a body regardless of ``Content-Length``.
    """
    responses: list[HttpResponse] = []
    offset = 0
    index = 0
    while offset < len(data):
        start_line, header_block, offset = _split_message(data, offset)
        parts = start_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpParseError(f"malformed status line: {start_line[:80]!r}")
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpParseError(f"bad status code {parts[1]!r}") from exc
        reason = parts[2] if len(parts) == 3 else ""
        headers = _parse_headers(header_block)
        method = ""
        if request_methods and index < len(request_methods):
            method = request_methods[index]
        bodyless = method == "HEAD" or status in (204, 304) or 100 <= status < 200
        if not bodyless and _reads_until_close(headers, version):
            # The body is everything to end-of-stream; this is
            # necessarily the connection's last response.
            body_length = len(data) - offset
            offset = len(data)
        else:
            offset, body_length = _skip_body(data, offset, headers, bodyless=bodyless)
        responses.append(
            HttpResponse(
                status=status,
                reason=reason,
                headers=headers,
                version=version,
                body_length=body_length,
            )
        )
        index += 1
    return responses


def serialize_request(request: HttpRequest) -> bytes:
    """Serialize a request to wire format (no body)."""
    lines = [f"{request.method} {request.uri} {request.version}"]
    lines.extend(f"{name}: {value}" for name, value in request.headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def serialize_response(response: HttpResponse, body: bytes = b"") -> bytes:
    """Serialize a response to wire format, appending ``body``.

    When the headers carry no ``Content-Length`` and a body is given,
    a length header is added so the stream stays parseable.
    """
    headers = response.headers.copy()
    if body and headers.get("Content-Length") is None:
        headers.set("Content-Length", str(len(body)))
    reason = response.reason or "OK"
    lines = [f"{response.version} {response.status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
