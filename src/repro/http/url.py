"""URL parsing and manipulation helpers.

The classification pipeline works almost exclusively on URLs reassembled
from HTTP header fields (``Host`` + request URI, ``Referer``,
``Location``).  This module centralizes the small amount of URL surgery
the rest of the code base needs so that every component agrees on what
a hostname, a registrable domain or a query string is.

The implementation intentionally avoids :mod:`urllib.parse` for the hot
paths: the trace pipeline parses tens of millions of URLs and the
stdlib parser does far more (quoting, params, fragments caching) than
we need.  The semantics are a strict subset of RFC 3986 adequate for
HTTP(S) URLs observed on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "SplitUrl",
    "URL_CACHE_SIZE",
    "split_url",
    "join_url",
    "hostname_of",
    "registrable_domain",
    "is_subdomain_of",
    "is_third_party",
    "path_extension",
    "parse_query",
    "format_query",
    "embedded_urls",
]

# Multi-label public suffixes we recognize in addition to plain TLDs.
# A full public-suffix list is overkill for the synthetic ecosystem; these
# cover the suffixes the trace generator and real-world filter samples use.
_MULTI_LABEL_SUFFIXES = frozenset(
    {
        "co.uk",
        "org.uk",
        "ac.uk",
        "gov.uk",
        "com.au",
        "net.au",
        "org.au",
        "co.jp",
        "ne.jp",
        "or.jp",
        "com.br",
        "com.cn",
        "com.tr",
        "co.in",
        "co.kr",
        "com.mx",
        "co.nz",
    }
)


@dataclass(frozen=True, slots=True)
class SplitUrl:
    """A URL decomposed into the pieces the pipeline cares about.

    Attributes:
        scheme: ``http`` or ``https`` (lower-cased); empty for
            scheme-relative input.
        host: lower-cased hostname, without port.
        port: explicit port or ``None``.
        path: the path component, always beginning with ``/`` for
            non-empty paths.
        query: the raw query string without the leading ``?`` (empty
            string when absent).
    """

    scheme: str
    host: str
    port: int | None
    path: str
    query: str

    @property
    def netloc(self) -> str:
        """Host with explicit port when one was present."""
        if self.port is None:
            return self.host
        return f"{self.host}:{self.port}"

    @property
    def origin(self) -> str:
        """``scheme://host[:port]`` for this URL."""
        return f"{self.scheme}://{self.netloc}"

    @property
    def path_and_query(self) -> str:
        if self.query:
            return f"{self.path}?{self.query}"
        return self.path

    def geturl(self) -> str:
        return join_url(self)


#: Bound on the ``split_url`` memo.  Tuned empirically on the RBN-2
#: classify stream (``bench_engine_micro.py::test_url_split_cache_sweep``,
#: results in ``benchmarks/results/url_split_cache.txt``): page URLs and
#: referrers repeat heavily while request URLs are near-unique, so the
#: hit rate climbs until the working set of repeated URLs fits and is
#: flat beyond 32Ki entries; 64Ki buys <1pt over 32Ki at twice the
#: retained memory, and an unbounded memo would grow with trace length.
URL_CACHE_SIZE = 32768


@lru_cache(maxsize=URL_CACHE_SIZE)
def split_url(url: str) -> SplitUrl:
    """Split ``url`` into :class:`SplitUrl` components.

    Accepts absolute (``http://…``), scheme-relative (``//host/…``) and
    wire-format request targets when prefixed with a host by the caller.
    Fragments are dropped; they never appear on the wire.

    Results are memoized: traffic is massively repetitive (the same ad
    and CDN URLs recur across users and pageviews) and the pipeline
    historically re-split each URL at several layers.  :class:`SplitUrl`
    is frozen, so sharing one instance across callers is safe.
    """
    scheme = ""
    rest = url
    colon = url.find(":")
    if colon > 0 and url.startswith("//", colon + 1):
        scheme = url[:colon].lower()
        rest = url[colon + 3 :]
    elif url.startswith("//"):
        rest = url[2:]

    frag = rest.find("#")
    if frag >= 0:
        rest = rest[:frag]

    slash = rest.find("/")
    if slash < 0:
        netloc, path_query = rest, ""
    else:
        netloc, path_query = rest[:slash], rest[slash:]

    host, port = netloc, None
    pcolon = netloc.rfind(":")
    if pcolon >= 0 and netloc[pcolon + 1 :].isdigit():
        host = netloc[:pcolon]
        port = int(netloc[pcolon + 1 :])

    qmark = path_query.find("?")
    if qmark < 0:
        path, query = path_query, ""
    else:
        path, query = path_query[:qmark], path_query[qmark + 1 :]

    return SplitUrl(scheme=scheme, host=host.lower(), port=port, path=path, query=query)


def join_url(parts: SplitUrl) -> str:
    """Inverse of :func:`split_url`."""
    prefix = f"{parts.scheme}://" if parts.scheme else "//"
    return f"{prefix}{parts.netloc}{parts.path_and_query}"


def hostname_of(url: str) -> str:
    """Return the lower-cased hostname of ``url`` (no port)."""
    return split_url(url).host


@lru_cache(maxsize=65536)
def registrable_domain(host: str) -> str:
    """Return the registrable ("pay-level") domain of ``host``.

    ``ads.tracker.example.com`` -> ``example.com``;
    ``static.news.co.uk`` -> ``news.co.uk``.  IP-address hosts are
    returned unchanged.
    """
    host = host.lower().rstrip(".")
    if not host or host.replace(".", "").isdigit():
        return host
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    last_two = ".".join(labels[-2:])
    if last_two in _MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return last_two


def is_subdomain_of(host: str, domain: str) -> bool:
    """True if ``host`` equals ``domain`` or is a subdomain of it."""
    host = host.lower().rstrip(".")
    domain = domain.lower().rstrip(".")
    if host == domain:
        return True
    return host.endswith("." + domain)


def is_third_party(request_host: str, page_host: str) -> bool:
    """ABP third-party semantics: registrable domains differ."""
    return registrable_domain(request_host) != registrable_domain(page_host)


def path_extension(path: str) -> str:
    """Return the lower-case file extension of a URL path, without dot.

    Query strings must already be stripped.  Returns ``""`` when the
    last path segment has no extension.
    """
    slash = path.rfind("/")
    segment = path[slash + 1 :]
    dot = segment.rfind(".")
    if dot <= 0:
        return ""
    ext = segment[dot + 1 :]
    if not ext or not ext.isalnum():
        return ""
    return ext.lower()


def parse_query(query: str) -> list[tuple[str, str]]:
    """Parse a query string into ordered (key, value) pairs.

    Empty components are skipped; a component without ``=`` becomes a
    pair with an empty value, mirroring how browsers serialize forms.
    """
    pairs: list[tuple[str, str]] = []
    if not query:
        return pairs
    for component in query.split("&"):
        if not component:
            continue
        eq = component.find("=")
        if eq < 0:
            pairs.append((component, ""))
        else:
            pairs.append((component[:eq], component[eq + 1 :]))
    return pairs


def format_query(pairs: list[tuple[str, str]]) -> str:
    """Inverse of :func:`parse_query`."""
    parts = []
    for key, value in pairs:
        if value == "" and "=" not in key:
            parts.append(key)
        else:
            parts.append(f"{key}={value}")
    return "&".join(parts)


def embedded_urls(url: str) -> list[str]:
    """Extract URLs embedded inside ``url``'s query string.

    Redirectors and click-trackers carry the target URL in a query
    parameter (``?redirect=http%3A%2F%2F…`` or in the clear).  The
    referrer map uses these to repair chains broken by redirects.
    Both percent-encoded and literal ``http(s)://`` payloads are found.
    """
    found: list[str] = []
    parts = split_url(url)
    if not parts.query:
        return found
    for _key, value in parse_query(parts.query):
        candidate = value
        if "%3A%2F%2F" in candidate or "%3a%2f%2f" in candidate:
            candidate = (
                candidate.replace("%3A", ":")
                .replace("%3a", ":")
                .replace("%2F", "/")
                .replace("%2f", "/")
            )
        if candidate.startswith("http://") or candidate.startswith("https://"):
            found.append(candidate)
    return found
