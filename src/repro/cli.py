"""Command-line interface.

Composable subcommands over on-disk TSV logs, mirroring how the
paper's pipeline was operated (Bro logs staged to disk, classification
and analyses run offline):

* ``repro ecosystem`` — inspect the synthetic web and its filter lists.
* ``repro trace`` — generate an RBN capture to TSV (HTTP log + TLS log).
* ``repro classify`` — run the Fig 1 pipeline over a stored HTTP log.
* ``repro usage`` — the §6 ad-blocker usage study over stored logs.
* ``repro crawl`` — the §4 active measurement (Table 1).
* ``repro report`` — §7 traffic characterization over a stored log.
* ``repro corrupt`` — seeded fault injection into a stored log (testing).
* ``repro lint`` — static analysis: filter-list lint (FL001-FL008) and,
  with ``--self``, the repo-invariant codebase gate (RC001-RC004).
* ``repro serve`` — the long-lived classification daemon: bounded
  admission with backpressure, graceful drain on SIGTERM/SIGINT, hot
  filter-list reload on SIGHUP / ``POST /-/reload`` (DESIGN.md §13).

Commands that read logs take ``--on-error {strict,skip,quarantine}``;
exit codes are 0 (clean), 1 (strict-mode abort on the first bad line),
3 (completed degraded: dropped records, or shards lost under
``--on-worker-failure degrade``), 4 (``--resume`` refused on a run
manifest mismatch), 5 (a shard worker failed terminally and the run
aborted), 130 (interrupted by SIGINT/SIGTERM; durable state is kept
for ``--resume``) — see DESIGN.md §7–§8, §12.

``classify``/``usage``/``report`` become *durable* with
``--checkpoint-dir``: progress is checkpointed every
``--checkpoint-every`` records and a crashed run continues from the
newest valid checkpoint with ``--resume``, producing output
byte-identical to an uninterrupted run (DESIGN.md §8).

All commands that need the ecosystem/lists rebuild them
deterministically from ``--publishers/--eco-seed``, so separate
invocations compose as long as those flags agree.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING, Sequence, TextIO

if TYPE_CHECKING:
    from repro.analysis.traffic import TrafficAccumulator

from repro.analysis.report import render_table
from repro.core import AdClassificationPipeline
from repro.exitcodes import EXIT_SNAPSHOT_INVALID
from repro.filterlist import build_lists
from repro.filterlist.snapshot import (
    MATCHERS,
    SnapshotError,
    SnapshotFingerprintMismatch,
    load_snapshot,
    write_snapshot,
)
from repro.filterlist.stats import compare_lists
from repro.http.binlog import write_binlog
from repro.http.log import SeekableLogReader, write_log
from repro.http.url import split_url
from repro.parallel.supervision import RunInterrupted, WorkerFailure
from repro.robustness import (
    EXIT_INTERRUPTED,
    EXIT_MANIFEST_MISMATCH,
    EXIT_MISSING_INPUT,
    EXIT_STRICT_ABORT,
    EXIT_WORKER_FAILURE,
    CrashInjector,
    ErrorPolicy,
    LogParseError,
    PipelineHealth,
    QuarantineWriter,
    atomic_writer,
)
from repro.robustness.runstate import (
    DEFAULT_CHECKPOINT_EVERY,
    ClassifySink,
    DurableRun,
    ManifestMismatch,
    RunManifest,
    TrafficSink,
    UserStatsSink,
    classification_row,
)
from repro.trace import (
    CorruptionConfig,
    RBNTraceGenerator,
    TlsConnectionRecord,
    TraceCorruptor,
    abp_server_ips,
    easylist_download_clients,
    rbn1_config,
    rbn2_config,
)
from repro.web import Ecosystem, EcosystemConfig

__all__ = ["main", "build_parser"]


def _ecosystem_from(args: argparse.Namespace) -> Ecosystem:
    return Ecosystem.generate(
        EcosystemConfig(n_publishers=args.publishers, seed=args.eco_seed)
    )


def _add_ecosystem_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--publishers", type=int, default=300,
                        help="number of synthetic publishers (default 300)")
    parser.add_argument("--eco-seed", type=int, default=20151028,
                        help="ecosystem generation seed")


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--on-error", choices=("strict", "skip", "quarantine"),
                        default="strict",
                        help="what to do with malformed log lines (default strict)")
    parser.add_argument("--quarantine-out",
                        help="sidecar path for rejected lines "
                             "(default <trace>.quarantine)")
    parser.add_argument("--health-format", choices=("text", "json"), default="text",
                        help="end-of-run health summary format (default text); "
                             "json emits the same document `repro serve` exposes "
                             "at /metrics under \"health\"")


def _add_checkpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir",
                        help="make the run durable: write the run manifest, periodic "
                             "checkpoints and in-progress outputs into this directory")
    parser.add_argument("--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
                        metavar="N",
                        help=f"records between checkpoints (default "
                             f"{DEFAULT_CHECKPOINT_EVERY}; 0 disables periodic "
                             f"checkpoints but keeps atomic output commit)")
    parser.add_argument("--resume", action="store_true",
                        help="continue a crashed run from the newest valid checkpoint "
                             "in --checkpoint-dir; exits 4 if the config, filter lists "
                             "or input no longer match the run manifest")
    # Testing hook for the crash-recovery harness: hard-abort (no
    # flush, no cleanup) after N records, like an OOM kill would.
    parser.add_argument("--crash-after", type=int, metavar="N", help=argparse.SUPPRESS)


def _check_checkpoint_args(args: argparse.Namespace) -> None:
    if (args.resume or args.crash_after) and not args.checkpoint_dir:
        raise SystemExit("error: --resume/--crash-after require --checkpoint-dir")


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, metavar="N",
                        help="shard classification by user across N worker "
                             "processes; output is byte-identical to the "
                             "serial path (DESIGN.md §10)")
    parser.add_argument("--worker-timeout", type=float, default=30.0, metavar="S",
                        help="seconds of worker silence before the supervisor "
                             "declares it hung and kills it (default 30; "
                             "0 disables hang detection and heartbeats)")
    parser.add_argument("--worker-retries", type=int, default=2, metavar="N",
                        help="times a crashed or hung shard is respawned from "
                             "its last checkpoint before the failure is "
                             "terminal (default 2; 0 disables recovery)")
    parser.add_argument("--on-worker-failure", choices=("abort", "degrade"),
                        default="abort",
                        help="after retries are exhausted: abort the whole run "
                             "(exit 5) or finish the surviving shards and "
                             "report the gap honestly (exit 3; default abort)")
    # Testing hook for the chaos harness (tests/test_supervision.py):
    # inject worker faults, e.g. "crash-hard:worker=1:after=500".  The
    # REPRO_CHAOS environment variable is an equivalent spelling.
    parser.add_argument("--chaos", metavar="SPEC", help=argparse.SUPPRESS)


def _add_matcher_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--matcher", choices=MATCHERS, default="buckets",
                        help="matcher backend (DESIGN.md §15): keyword/host "
                             "buckets, Aho–Corasick token prefilter, or "
                             "combined-alternation prefilter; all three are "
                             "decision-identical (default buckets)")
    parser.add_argument("--engine-snapshot", metavar="FILE",
                        help="restore the engine from a `repro compile-lists` "
                             "snapshot instead of re-parsing lists; on durable "
                             "runs its fingerprint is pinned against the lists "
                             "the manifest records (mismatch exits 4)")
    parser.add_argument("--snapshot-policy", choices=("refuse", "rebuild"),
                        default="refuse",
                        help="on a corrupt/truncated/version-incompatible "
                             "snapshot: refuse (exit 6) or rebuild from lists "
                             "(default refuse; a fingerprint mismatch always "
                             "refuses — never silent divergence)")


def _resolve_pipeline(
    args: argparse.Namespace, get_lists, *, expected_fingerprint: str | None = None
) -> AdClassificationPipeline:
    """Build the classification pipeline: snapshot fast path or lists.

    ``get_lists`` is a zero-argument callable (memoized by callers) so
    the snapshot path can skip list synthesis entirely; it is only
    invoked on the rebuild fallback or when no snapshot was given.
    Durable runs pass ``expected_fingerprint`` (computed from the lists
    the manifest pins) so a snapshot compiled from *different* list
    content is refused — an identity violation (exit 4), never rebuilt
    over silently.
    """
    from repro.core.pipeline import PipelineConfig

    config = PipelineConfig(
        use_decision_cache=not args.no_decision_cache,
        matcher=getattr(args, "matcher", "buckets"),
    )
    snapshot_path = getattr(args, "engine_snapshot", None)
    if snapshot_path:
        try:
            loaded = load_snapshot(
                snapshot_path,
                matcher=config.matcher,
                expected_fingerprint=expected_fingerprint,
            )
        except FileNotFoundError:
            if args.snapshot_policy == "refuse":
                raise  # main() maps this to EXIT_MISSING_INPUT
            print(f"warning: snapshot {snapshot_path} missing; "
                  f"rebuilding engine from lists", file=sys.stderr)
        except SnapshotFingerprintMismatch:
            raise  # identity violation, not damage: always refuse (exit 4)
        except SnapshotError:
            if args.snapshot_policy == "refuse":
                raise  # main() maps this to EXIT_SNAPSHOT_INVALID
            print(f"warning: snapshot {snapshot_path} failed validation; "
                  f"rebuilding engine from lists", file=sys.stderr)
        else:
            return AdClassificationPipeline.from_engine(loaded.engine, config)
    return AdClassificationPipeline(get_lists(), config)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-decision-cache", action="store_true",
                        help="disable the memoized decision layer (DESIGN.md §11); "
                             "output is byte-identical either way — this is an "
                             "escape hatch for benchmarking and debugging")


def _check_parallel_args(args: argparse.Namespace) -> None:
    if args.workers is None:
        return
    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    if args.worker_timeout < 0:
        raise SystemExit("error: --worker-timeout must be >= 0")
    if args.worker_retries < 0:
        raise SystemExit("error: --worker-retries must be >= 0")
    if getattr(args, "max_users", None) is not None:
        raise SystemExit("error: --workers is incompatible with --max-users "
                         "(the LRU eviction order is global, not shardable)")


def _supervision_kwargs(args: argparse.Namespace) -> dict:
    """Map the supervision flags onto ParallelRun keyword arguments."""
    from repro.robustness.retry import RetryPolicy

    retry = None
    if args.worker_retries:
        # N retries = N + 1 incarnations; keep the default backoff shape.
        retry = RetryPolicy(max_attempts=args.worker_retries + 1,
                            base_delay_s=0.1, multiplier=2.0, max_delay_s=5.0)
    return {
        "worker_timeout": args.worker_timeout or None,
        "retry": retry,
        "on_worker_failure": args.on_worker_failure,
        "chaos": args.chaos,
    }


def _pipeline_factory(args: argparse.Namespace):
    """Picklable per-worker pipeline builder from the ecosystem flags."""
    import functools

    from repro.parallel import build_ecosystem_pipeline

    return functools.partial(
        build_ecosystem_pipeline,
        args.publishers,
        args.eco_seed,
        not args.no_decision_cache,
        getattr(args, "matcher", "buckets"),
        getattr(args, "engine_snapshot", None),
        getattr(args, "snapshot_policy", "refuse"),
    )


def _lists_factory(args: argparse.Namespace):
    """Zero-argument memoized list builder (snapshot paths never pay it)."""
    memo: dict = {}

    def get_lists():
        if "lists" not in memo:
            memo["lists"] = build_lists(_ecosystem_from(args).list_spec())
        return memo["lists"]

    return get_lists


def _expected_engine_fingerprint(lists) -> str:
    """The fingerprint an engine built from ``lists`` would carry."""
    from repro.filterlist.engine import fingerprint_of_filters

    return fingerprint_of_filters(
        (name, filter_list.filters) for name, filter_list in lists.items()
    )


def _note_cache(health: PipelineHealth, pipeline: AdClassificationPipeline) -> None:
    """Fold the process's cache counters into ``health``.

    The counters are transient observability (never checkpointed or
    merged — see ``PipelineHealth._TRANSIENT_STATE``); this is the one
    place the serial CLI path copies them over for reporting.  Covers
    both the decision cache and the ``split_url`` memo (pool workers
    ship their own counters in the ``done`` message instead).
    """
    stats = pipeline.decision_cache_stats
    if stats is not None:
        health.add_cache_stats(stats.hits, stats.misses, stats.evictions)
    url_info = split_url.cache_info()
    if url_info.hits or url_info.misses:
        health.add_url_cache_stats(url_info.hits, url_info.misses)


def _quarantine_path(args: argparse.Namespace) -> str:
    return args.quarantine_out or f"{args.trace}.quarantine"


def _load_http_records(args: argparse.Namespace, health: PipelineHealth):
    """Read the HTTP log under the command's error policy."""
    policy = ErrorPolicy(args.on_error)
    quarantine = None
    quarantine_path = None
    if policy is ErrorPolicy.QUARANTINE:
        quarantine_path = _quarantine_path(args)
        quarantine = QuarantineWriter.open(quarantine_path)
    try:
        with SeekableLogReader(
            args.trace, on_error=policy, health=health, quarantine=quarantine
        ) as reader:
            records = list(reader)
    finally:
        if quarantine is not None:
            quarantine.close()
    if quarantine is not None and quarantine.count:
        print(f"quarantined {quarantine.count} lines to {quarantine_path}")
    return records


def _durable_run(
    args: argparse.Namespace,
    *,
    command: str,
    pipeline: AdClassificationPipeline,
    lists,
    sink,
    params: dict,
    output_path: str | None = None,
    reorder_window: float | None = None,
    max_users: int | None = None,
):
    """Build and execute the checkpointed run for one subcommand."""
    policy = ErrorPolicy(args.on_error)
    quarantine_path = _quarantine_path(args) if policy is ErrorPolicy.QUARANTINE else None
    manifest = RunManifest.build(
        command=command,
        params=params,
        lists=lists,
        input_path=args.trace,
        output_path=output_path,
        quarantine_path=quarantine_path,
    )
    runner = DurableRun(
        directory=args.checkpoint_dir,
        manifest=manifest,
        pipeline=pipeline,
        sink=sink,
        on_error=policy,
        checkpoint_every=args.checkpoint_every or None,
        resume=args.resume,
        reorder_window=reorder_window,
        max_users=max_users,
        crash_injector=CrashInjector(args.crash_after) if args.crash_after else None,
        log=print,
    )
    result = runner.run()
    if result.quarantine_count:
        print(f"quarantined {result.quarantine_count} lines to {result.quarantine_path}")
    return result


def _finish(
    health: PipelineHealth, *, always_summarize: bool = False, fmt: str = "text"
) -> int:
    """Print the end-of-run health summary; map degradation to exit code.

    ``fmt="json"`` emits :meth:`PipelineHealth.summary_dict` — the same
    document ``repro serve`` exposes under ``/metrics``'s ``health`` key
    — and always emits it (asking for JSON *is* asking for the summary).

    In text mode the decision-cache block prints *before* the
    ``-- pipeline health --`` marker: tools (and this repo's tests)
    byte-compare everything from the marker onward across execution
    plans, and cache counters legitimately differ between
    serial/parallel/cached/uncached runs.
    """
    if fmt == "json":
        import json as _json

        print(_json.dumps(health.summary_dict(), indent=2))
    elif always_summarize or health.degraded:
        cache_block = health.cache_summary()
        if cache_block:
            print()
            print(cache_block)
        print()
        print(health.summary())
    return health.exit_code()


def _write_tls(records: list[TlsConnectionRecord], stream: TextIO) -> None:
    stream.write("#ts\tclient\tserver\tserver_port\n")
    for record in records:
        stream.write(f"{record.ts}\t{record.client}\t{record.server}\t{record.server_port}\n")


def _read_tls(stream: TextIO) -> list[TlsConnectionRecord]:
    records = []
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        ts, client, server, port = line.split("\t")
        records.append(
            TlsConnectionRecord(ts=float(ts), client=client, server=server,
                                server_port=int(port))
        )
    return records


# ---------------------------------------------------------------------------


def _cmd_ecosystem(args: argparse.Namespace) -> int:
    ecosystem = _ecosystem_from(args)
    lists = build_lists(ecosystem.list_spec())
    print(f"publishers:  {len(ecosystem.publishers)}")
    print(f"ad networks: {len(ecosystem.ad_networks)} "
          f"({sum(1 for n in ecosystem.ad_networks if n.acceptable_ads)} in acceptable-ads)")
    print(f"trackers:    {len(ecosystem.trackers)}")
    print(f"ASes:        {len(ecosystem.asdb.all())}")
    print()
    print(render_table(compare_lists(lists), title="synthetic filter lists"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    ecosystem = _ecosystem_from(args)
    preset = rbn1_config if args.preset == "rbn1" else rbn2_config
    config = preset(scale=args.scale)
    generator = RBNTraceGenerator(config, ecosystem=ecosystem)
    trace = generator.generate()
    if args.format == "bin":
        with atomic_writer(args.out, mode="wb") as stream:
            count = write_binlog(trace.http, stream)
    else:
        with atomic_writer(args.out) as stream:
            count = write_log(trace.http, stream)
    print(f"wrote {count} HTTP records to {args.out}")
    if args.tls_out:
        with atomic_writer(args.tls_out) as stream:
            _write_tls(trace.tls, stream)
        print(f"wrote {len(trace.tls)} TLS records to {args.tls_out}")
    print(f"({generator.subscribers} subscribers, "
          f"{config.duration_s / 3600:.1f} h window)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    """Transcode an HTTP log between TSV and binlog framing.

    The input format is sniffed from the leading magic; the default
    target is the *other* format.  Records stream straight from the
    reader into the writer, so conversion is O(1) in memory, and the
    usual error policies apply — a damaged frame aborts a strict
    convert (exit 1) or is dropped/quarantined and reported via the
    degraded exit (3), exactly like ``classify`` would treat it.
    """
    policy = ErrorPolicy(args.on_error)
    health = PipelineHealth()
    quarantine = None
    quarantine_path = None
    if policy is ErrorPolicy.QUARANTINE:
        quarantine_path = _quarantine_path(args)
        quarantine = QuarantineWriter.open(quarantine_path)
    try:
        with SeekableLogReader(
            args.trace, on_error=policy, health=health, quarantine=quarantine
        ) as reader:
            source = reader.format
            target = args.to or ("tsv" if source == "bin" else "bin")
            if target == "bin":
                with atomic_writer(args.out, mode="wb") as stream:
                    count = write_binlog(reader, stream)
            else:
                with atomic_writer(args.out) as stream:
                    count = write_log(reader, stream)
    finally:
        if quarantine is not None:
            quarantine.close()
    if quarantine is not None and quarantine.count:
        print(f"quarantined {quarantine.count} lines to {quarantine_path}")
    print(f"converted {count} records: {args.trace} ({source}) -> {args.out} ({target})")
    if health.records_dropped:
        print(health.summary())
    return health.exit_code()


def _classify_summary(total: int, ads: int, whitelisted: int) -> None:
    print(f"{total} requests classified")
    print(f"ad-related: {ads} ({ads / max(1, total):.1%})")
    print(f"whitelisted: {whitelisted} ({whitelisted / max(1, ads):.1%} of ads)")


def _classify_params(args: argparse.Namespace) -> dict:
    """Manifest params for `repro classify`; ``workers`` is pinned so a
    serial checkpoint directory cannot be resumed with a different pool
    shape (the sharding itself is part of what the run *is*)."""
    return {
        "command": "classify",
        "publishers": args.publishers,
        "eco_seed": args.eco_seed,
        "on_error": args.on_error,
        "max_users": args.max_users,
        "reorder_window": args.reorder_window,
        "workers": args.workers,
        # Pinned for hygiene even though cached and uncached runs are
        # byte-identical: a resumed run should be the run you started.
        "decision_cache": not args.no_decision_cache,
        # Matcher backends are decision-identical (the differential
        # harness proves it), but pinned anyway: a resumed run should
        # be the run you started, snapshot fast path included.
        "matcher": args.matcher,
        "engine_snapshot": bool(args.engine_snapshot),
    }


def _classify_parallel(args: argparse.Namespace) -> int:
    """`repro classify --workers N` (DESIGN.md §10)."""
    from repro.parallel import ParallelRun

    factory = _pipeline_factory(args)
    policy = ErrorPolicy(args.on_error)

    if args.checkpoint_dir:
        ecosystem = _ecosystem_from(args)
        lists = build_lists(ecosystem.list_spec())
        quarantine_path = _quarantine_path(args) if policy is ErrorPolicy.QUARANTINE else None
        manifest = RunManifest.build(
            command="classify",
            params=_classify_params(args),
            lists=lists,
            input_path=args.trace,
            output_path=args.out,
            quarantine_path=quarantine_path,
        )
        sink = ClassifySink(
            part_path=os.path.join(args.checkpoint_dir, "output.part") if args.out else None,
            final_path=os.path.abspath(args.out) if args.out else None,
        )
        outcome = ParallelRun(
            workers=args.workers,
            input_path=args.trace,
            pipeline_factory=factory,
            on_error=policy,
            reorder_window=args.reorder_window,
            directory=args.checkpoint_dir,
            manifest=manifest,
            sink=sink,
            checkpoint_every=args.checkpoint_every or None,
            resume=args.resume,
            crash_injector=CrashInjector(args.crash_after) if args.crash_after else None,
            log=print,
            **_supervision_kwargs(args),
        ).run()
        if outcome.quarantine_count:
            print(f"quarantined {outcome.quarantine_count} lines to {outcome.quarantine_path}")
        _classify_summary(sink.total, sink.ads, sink.whitelisted)
        if args.out and not outcome.degraded_shards:
            print(f"wrote classification to {args.out}")
        return _finish(outcome.health, always_summarize=True, fmt=args.health_format)

    quarantine = None
    quarantine_path = None
    if policy is ErrorPolicy.QUARANTINE:
        quarantine_path = _quarantine_path(args)
        quarantine = QuarantineWriter.open(quarantine_path)
    rows: list[str] = []
    counts = {"ads": 0, "whitelisted": 0}

    def on_row(row: str, is_ad: bool, is_whitelisted: bool) -> None:
        rows.append(row)
        if is_ad:
            counts["ads"] += 1
        if is_whitelisted:
            counts["whitelisted"] += 1

    try:
        outcome = ParallelRun(
            workers=args.workers,
            input_path=args.trace,
            pipeline_factory=factory,
            on_error=policy,
            reorder_window=args.reorder_window,
            on_row=on_row,
            quarantine=quarantine,
            **_supervision_kwargs(args),
        ).run()
    finally:
        if quarantine is not None:
            quarantine.close()
    if quarantine is not None and quarantine.count:
        print(f"quarantined {quarantine.count} lines to {quarantine_path}")
    _classify_summary(len(rows), counts["ads"], counts["whitelisted"])
    if args.out:
        if outcome.degraded_shards:
            print(f"not writing {args.out}: output is a partial prefix "
                  f"(shards {outcome.degraded_shards} lost)")
        else:
            with atomic_writer(args.out) as stream:
                stream.write(ClassifySink.HEADER)
                for row in rows:
                    stream.write(row + "\n")
            print(f"wrote classification to {args.out}")
    return _finish(outcome.health, always_summarize=True, fmt=args.health_format)


def _cmd_classify(args: argparse.Namespace) -> int:
    _check_checkpoint_args(args)
    _check_parallel_args(args)
    if args.workers is not None:
        return _classify_parallel(args)
    get_lists = _lists_factory(args)

    if args.checkpoint_dir:
        lists = get_lists()
        expected = _expected_engine_fingerprint(lists) if args.engine_snapshot else None
        pipeline = _resolve_pipeline(args, get_lists, expected_fingerprint=expected)
        sink = ClassifySink(
            part_path=os.path.join(args.checkpoint_dir, "output.part") if args.out else None,
            final_path=os.path.abspath(args.out) if args.out else None,
        )
        result = _durable_run(
            args,
            command="classify",
            pipeline=pipeline,
            lists=lists,
            sink=sink,
            params=_classify_params(args),
            output_path=args.out,
            reorder_window=args.reorder_window,
            max_users=args.max_users,
        )
        _classify_summary(sink.total, sink.ads, sink.whitelisted)
        if args.out:
            print(f"wrote classification to {args.out}")
        _note_cache(result.health, pipeline)
        return _finish(result.health, always_summarize=True, fmt=args.health_format)

    pipeline = _resolve_pipeline(args, get_lists)
    health = PipelineHealth()
    records = _load_http_records(args, health)
    entries = pipeline.process(
        records,
        health=health,
        max_users=args.max_users,
        reorder_window=args.reorder_window,
    )

    ads = sum(1 for entry in entries if entry.is_ad)
    whitelisted = sum(1 for entry in entries if entry.is_whitelisted)
    _classify_summary(len(entries), ads, whitelisted)

    if args.out:
        with atomic_writer(args.out) as stream:
            stream.write(ClassifySink.HEADER)
            for entry in entries:
                stream.write(classification_row(entry) + "\n")
        print(f"wrote classification to {args.out}")
    _note_cache(health, pipeline)
    return _finish(health, always_summarize=True, fmt=args.health_format)


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.core import (
        aggregate_users,
        annotate_browsers,
        classify_usage,
        heavy_hitters,
        usage_breakdown,
    )

    _check_checkpoint_args(args)
    ecosystem = _ecosystem_from(args)
    get_lists = _lists_factory(args)

    if args.checkpoint_dir:
        lists = get_lists()
        expected = _expected_engine_fingerprint(lists) if args.engine_snapshot else None
        pipeline = _resolve_pipeline(args, get_lists, expected_fingerprint=expected)
        sink = UserStatsSink()
        result = _durable_run(
            args,
            command="usage",
            pipeline=pipeline,
            lists=lists,
            sink=sink,
            params={
                "command": "usage",
                "publishers": args.publishers,
                "eco_seed": args.eco_seed,
                "on_error": args.on_error,
            },
        )
        health = result.health
        stats = sink.stats
        total_requests, total_ads = sink.total, sink.total_ads
    else:
        pipeline = _resolve_pipeline(args, get_lists)
        health = PipelineHealth()
        records = _load_http_records(args, health)
        entries = pipeline.process(records, health=health)
        stats = aggregate_users(entries)
        total_requests = len(entries)
        total_ads = sum(1 for entry in entries if entry.is_ad)

    with open(args.tls) as stream:
        tls_records = _read_tls(stream)
    downloads = easylist_download_clients(tls_records, abp_server_ips(ecosystem))

    annotation = annotate_browsers(heavy_hitters(stats, min_requests=args.min_requests))
    usages = classify_usage(
        list(annotation.browsers.values()), downloads, threshold=args.threshold
    )
    rows = [
        {
            "Type": row.usage_type,
            "Instances": row.instances,
            "share": f"{100 * row.instance_share:.1f}%",
            "% requests": f"{100 * row.request_share:.1f}%",
            "% ad reqs": f"{100 * row.ad_request_share:.1f}%",
        }
        for row in usage_breakdown(usages, total_requests=total_requests, total_ads=total_ads)
    ]
    print(render_table(rows, title="ad-blocker usage classes (paper Table 3)"))
    likely = sum(1 for usage in usages if usage.likely_adblock)
    print(f"likely Adblock Plus users: {likely}/{len(usages)} active browsers")
    _note_cache(health, pipeline)
    return _finish(health)


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.browser.crawler import Crawler
    from repro.filterlist.lists import EASYLIST, EASYPRIVACY

    ecosystem = _ecosystem_from(args)
    lists = build_lists(ecosystem.list_spec())
    pipeline = AdClassificationPipeline(lists)
    crawler = Crawler(ecosystem, lists, seed=args.seed)
    results = crawler.crawl(n_sites=args.sites)

    rows = []
    for name, result in results.items():
        entries = pipeline.process(result.records.http)
        rows.append(
            {
                "Browser Mode": name,
                "#HTTPS": result.https_connections,
                "#HTTP": result.http_requests,
                "#ELhits": sum(
                    1 for e in entries
                    if (e.blacklist_name or "").startswith(EASYLIST)
                    or (e.is_whitelisted and not e.classification.is_blacklisted)
                ),
                "#EPhits": sum(1 for e in entries if e.blacklist_name == EASYPRIVACY),
            }
        )
    print(render_table(rows, title=f"active crawl over top-{args.sites} (paper Table 1)"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.traffic import TrafficAccumulator

    _check_checkpoint_args(args)
    _check_parallel_args(args)
    if args.workers is not None and args.checkpoint_dir:
        raise SystemExit(
            "error: --workers with --checkpoint-dir is only supported for classify"
        )
    if args.workers is not None:
        from repro.parallel import ParallelRun

        policy = ErrorPolicy(args.on_error)
        quarantine = None
        quarantine_path = None
        if policy is ErrorPolicy.QUARANTINE:
            quarantine_path = _quarantine_path(args)
            quarantine = QuarantineWriter.open(quarantine_path)
        try:
            outcome = ParallelRun(
                workers=args.workers,
                input_path=args.trace,
                pipeline_factory=_pipeline_factory(args),
                on_error=policy,
                emit="fold",
                quarantine=quarantine,
                **_supervision_kwargs(args),
            ).run()
        finally:
            if quarantine is not None:
                quarantine.close()
        if quarantine is not None and quarantine.count:
            print(f"quarantined {quarantine.count} lines to {quarantine_path}")
        health = outcome.health
        accumulator = outcome.accumulator
        assert accumulator is not None
        return _report_tables(accumulator, health, fmt=args.health_format)

    get_lists = _lists_factory(args)

    if args.checkpoint_dir:
        lists = get_lists()
        expected = _expected_engine_fingerprint(lists) if args.engine_snapshot else None
        pipeline = _resolve_pipeline(args, get_lists, expected_fingerprint=expected)
        sink = TrafficSink()
        result = _durable_run(
            args,
            command="report",
            pipeline=pipeline,
            lists=lists,
            sink=sink,
            params={
                "command": "report",
                "publishers": args.publishers,
                "eco_seed": args.eco_seed,
                "on_error": args.on_error,
            },
        )
        health = result.health
        accumulator = sink.accumulator
    else:
        pipeline = _resolve_pipeline(args, get_lists)
        health = PipelineHealth()
        records = _load_http_records(args, health)
        accumulator = TrafficAccumulator()
        for entry in pipeline.iter_process(records, fixup_window=None, health=health):
            accumulator.add(entry)

    _note_cache(health, pipeline)
    return _report_tables(accumulator, health, fmt=args.health_format)


def _report_tables(
    accumulator: "TrafficAccumulator", health: PipelineHealth, *, fmt: str = "text"
) -> int:
    summary = accumulator.summary()
    print(f"requests: {summary.total_requests}; ad share "
          f"{summary.ad_request_share:.2%} of requests / "
          f"{summary.ad_byte_share:.2%} of bytes")
    print(f"list split: EasyList {summary.easylist_share_of_ads:.1%}, "
          f"EasyPrivacy {summary.easyprivacy_share_of_ads:.1%}, "
          f"non-intrusive {summary.non_intrusive_share_of_ads:.1%}\n")
    rows = [
        {
            "Content-type": row.content_type,
            "Ads Reqs": f"{100 * row.ad_request_share:.1f}%",
            "Ads Bytes": f"{100 * row.ad_byte_share:.1f}%",
            "Non-Ads Reqs": f"{100 * row.nonad_request_share:.1f}%",
            "Non-Ads Bytes": f"{100 * row.nonad_byte_share:.1f}%",
        }
        for row in accumulator.content_type_rows()
    ]
    print(render_table(rows, title="traffic by Content-Type (paper Table 4)"))
    return _finish(health, fmt=fmt)


def _cmd_compile_lists(args: argparse.Namespace) -> int:
    """`repro compile-lists`: freeze lists into an engine snapshot."""
    import json
    import time

    from repro.filterlist.engine import FilterEngine
    from repro.robustness.runstate import fingerprint_lists
    from repro.serve import EngineSource

    source = EngineSource(
        list_paths=args.lists,
        publishers=args.publishers,
        eco_seed=args.eco_seed,
        lint=args.lint,
    )
    started = time.perf_counter()
    lists = source.load_lists()
    engine = FilterEngine()
    for name, filter_list in lists.items():
        engine.add_filters(filter_list.filters, list_name=name)
    build_s = time.perf_counter() - started
    info = write_snapshot(
        args.out,
        engine,
        lists_fingerprint=fingerprint_lists(lists),
        source=json.dumps(source.describe(), sort_keys=True),
    )
    size = os.path.getsize(args.out)
    print(f"compiled {info.filter_count} filters from "
          f"{', '.join(info.list_names)} in {build_s:.2f}s")
    print(f"wrote snapshot to {args.out} ({size / 1024:.0f} KiB, "
          f"engine fingerprint {info.fingerprint[:12]}…)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.filterlist.cache import DEFAULT_CACHE_SIZE
    from repro.robustness.crash import CHAOS_ENV
    from repro.serve import EngineHolder, EngineSource, ServeApp, ServeConfig

    source = EngineSource(
        list_paths=args.lists,
        publishers=args.publishers,
        eco_seed=args.eco_seed,
        lint=args.lint,
        snapshot_path=args.engine_snapshot,
        matcher=args.matcher,
    )
    try:
        engine = source.build()
    except FileNotFoundError:
        raise  # main() maps this to EXIT_MISSING_INPUT
    except SnapshotError:
        raise  # main() maps this to exit 4 (identity) or 6 (damage)
    except (OSError, ValueError) as exc:
        print(f"error: could not build engine: {exc}", file=sys.stderr)
        return EXIT_STRICT_ABORT
    holder = EngineHolder(
        engine,
        cache_size=None if args.no_decision_cache else DEFAULT_CACHE_SIZE,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        timeout_s=args.timeout,
        concurrency=args.concurrency,
        drain_timeout_s=args.drain_timeout,
        chaos=args.chaos or os.environ.get(CHAOS_ENV),
    )
    app = ServeApp(holder, source, config, log=lambda message: print(message, flush=True))
    return asyncio.run(app.serve_forever())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticcheck import (
        Severity,
        apply_baseline,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )

    if not args.files and not args.self:
        raise SystemExit("error: give filter-list files to lint, or --self")

    diagnostics = []
    if args.files:
        from repro.staticcheck import lint_paths

        # Baseline fingerprints embed the list path; normalize to a
        # cwd-relative form so absolute and relative invocations agree.
        paths = []
        for path in args.files:
            relative = os.path.relpath(path)
            paths.append(path if relative.startswith("..") else relative)
        diagnostics.extend(lint_paths(paths))
    if args.self:
        import repro
        from repro.staticcheck import lint_package

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        source_root = os.path.dirname(package_root)
        diagnostics.extend(lint_package(package_root, source_root=source_root))

    if args.write_baseline:
        count = write_baseline(args.write_baseline, diagnostics)
        print(f"wrote baseline with {count} fingerprint(s) to {args.write_baseline}")
        return 0

    suppressed = 0
    if args.baseline:
        diagnostics, suppressed = apply_baseline(diagnostics, load_baseline(args.baseline))

    if args.format == "json":
        print(render_json(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))
    else:
        print("no findings")
    if suppressed:
        print(f"({suppressed} baselined finding(s) suppressed)", file=sys.stderr)

    threshold = Severity.parse(args.fail_on)
    return 1 if any(diag.severity >= threshold for diag in diagnostics) else 0


def _cmd_corrupt(args: argparse.Namespace) -> int:
    corruptor = TraceCorruptor(
        CorruptionConfig(
            rate=args.rate,
            duplicate_rate=args.duplicate_rate,
            jitter_s=args.jitter_s,
            skew_segments=args.skew_segments,
            skew_s=args.skew_s,
            seed=args.seed,
        )
    )
    stats = corruptor.corrupt_file(args.trace, args.out)
    print(f"wrote {args.out}: {stats.lines_corrupted}/{stats.lines_seen} lines damaged, "
          f"{stats.lines_duplicated} duplicated, {stats.lines_jittered} reordered, "
          f"{stats.lines_skewed} clock-skewed")
    for pathology, count in stats.by_pathology.most_common():
        print(f"  {pathology}: {count}")
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Annoyed Users' (IMC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eco = sub.add_parser("ecosystem", help="inspect the synthetic web & filter lists")
    _add_ecosystem_flags(p_eco)
    p_eco.set_defaults(func=_cmd_ecosystem)

    p_trace = sub.add_parser("trace", help="generate an RBN capture to TSV or binlog")
    _add_ecosystem_flags(p_trace)
    p_trace.add_argument("--preset", choices=("rbn1", "rbn2"), default="rbn2")
    p_trace.add_argument("--scale", type=float, default=0.002)
    p_trace.add_argument("--out", required=True, help="HTTP log path")
    p_trace.add_argument("--format", choices=("tsv", "bin"), default="tsv",
                         help="HTTP log encoding: TSV interchange (default) or "
                              "the binary ingestion fast path (DESIGN.md §16)")
    p_trace.add_argument("--tls-out", help="TLS connection log TSV path")
    p_trace.set_defaults(func=_cmd_trace)

    p_convert = sub.add_parser(
        "convert",
        help="transcode an HTTP log between TSV and binary framing",
        description="Transcode an HTTP log between the TSV interchange format and "
                    "the binary ingestion framing (DESIGN.md §16). The input format "
                    "is sniffed; classification over either encoding of the same "
                    "records is byte-identical.",
    )
    p_convert.add_argument("--trace", required=True, help="input HTTP log (format sniffed)")
    p_convert.add_argument("--out", required=True, help="output path")
    p_convert.add_argument("--to", choices=("tsv", "bin"),
                           help="target encoding (default: the opposite of the input)")
    p_convert.add_argument("--on-error", choices=("strict", "skip", "quarantine"),
                           default="strict",
                           help="what to do with damaged frames (default strict)")
    p_convert.add_argument("--quarantine-out",
                           help="sidecar path for rejected frames "
                                "(default <trace>.quarantine)")
    p_convert.set_defaults(func=_cmd_convert)

    p_classify = sub.add_parser("classify", help="classify a stored HTTP log")
    _add_ecosystem_flags(p_classify)
    _add_robustness_flags(p_classify)
    _add_checkpoint_flags(p_classify)
    _add_parallel_flags(p_classify)
    _add_cache_flags(p_classify)
    _add_matcher_flags(p_classify)
    p_classify.add_argument("--trace", required=True)
    p_classify.add_argument("--out", help="write per-request classification TSV")
    p_classify.add_argument("--max-users", type=int,
                            help="LRU-evict idle per-user state beyond this many users")
    p_classify.add_argument("--reorder-window", type=float,
                            help="re-sort out-of-order records within this many seconds")
    p_classify.set_defaults(func=_cmd_classify)

    p_usage = sub.add_parser("usage", help="ad-blocker usage study over stored logs")
    _add_ecosystem_flags(p_usage)
    _add_robustness_flags(p_usage)
    _add_checkpoint_flags(p_usage)
    _add_cache_flags(p_usage)
    _add_matcher_flags(p_usage)
    p_usage.add_argument("--trace", required=True)
    p_usage.add_argument("--tls", required=True)
    p_usage.add_argument("--threshold", type=float, default=0.05)
    p_usage.add_argument("--min-requests", type=int, default=1000)
    p_usage.set_defaults(func=_cmd_usage)

    p_lint = sub.add_parser(
        "lint", help="static analysis: filter-list lint / codebase gate (DESIGN.md §9)"
    )
    p_lint.add_argument("files", nargs="*",
                        help="filter-list files to lint (FL001-FL008)")
    p_lint.add_argument("--self", action="store_true",
                        help="lint the repro package itself (RC001-RC004)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--fail-on", choices=("error", "warning"), default="error",
                        help="lowest severity that makes the exit code 1 "
                             "(default error)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="suppress findings whose fingerprint is in this "
                             "baseline file")
    p_lint.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the accepted baseline "
                             "and exit 0")
    p_lint.set_defaults(func=_cmd_lint)

    p_corrupt = sub.add_parser(
        "corrupt", help="inject capture faults into a stored HTTP log (testing)"
    )
    p_corrupt.add_argument("--trace", required=True, help="clean HTTP log TSV")
    p_corrupt.add_argument("--out", required=True, help="damaged HTTP log TSV")
    p_corrupt.add_argument("--rate", type=float, default=0.1,
                           help="fraction of lines hit by unparseable damage")
    p_corrupt.add_argument("--duplicate-rate", type=float, default=0.0)
    p_corrupt.add_argument("--jitter-s", type=float, default=0.0,
                           help="locally shuffle records within this ts window")
    p_corrupt.add_argument("--skew-segments", type=int, default=0)
    p_corrupt.add_argument("--skew-s", type=float, default=0.0)
    p_corrupt.add_argument("--seed", type=int, default=1337)
    p_corrupt.set_defaults(func=_cmd_corrupt)

    p_crawl = sub.add_parser("crawl", help="active measurement study (Table 1)")
    _add_ecosystem_flags(p_crawl)
    p_crawl.add_argument("--sites", type=int, default=100)
    p_crawl.add_argument("--seed", type=int, default=4)
    p_crawl.set_defaults(func=_cmd_crawl)

    p_report = sub.add_parser("report", help="traffic characterization (Table 4)")
    _add_ecosystem_flags(p_report)
    _add_robustness_flags(p_report)
    _add_checkpoint_flags(p_report)
    _add_parallel_flags(p_report)
    _add_cache_flags(p_report)
    _add_matcher_flags(p_report)
    p_report.add_argument("--trace", required=True)
    p_report.set_defaults(func=_cmd_report)

    p_compile = sub.add_parser(
        "compile-lists",
        help="compile filter lists into a precompiled engine snapshot "
             "(DESIGN.md §15)",
    )
    _add_ecosystem_flags(p_compile)
    p_compile.add_argument("--lists", nargs="+", metavar="FILE",
                           help="filter-list files to compile; omit to compile "
                                "the synthetic ecosystem's lists")
    p_compile.add_argument("--lint", choices=("off", "refuse", "quarantine"),
                           default="refuse",
                           help="filter-list lint gate applied before compiling "
                                "(default refuse; DESIGN.md §9.4)")
    p_compile.add_argument("--out", required=True,
                           help="snapshot path (restored via --engine-snapshot)")
    p_compile.set_defaults(func=_cmd_compile_lists)

    p_serve = sub.add_parser(
        "serve", help="long-lived classification daemon (DESIGN.md §13)"
    )
    _add_ecosystem_flags(p_serve)
    _add_cache_flags(p_serve)
    p_serve.add_argument("--lists", nargs="+", metavar="FILE",
                         help="filter-list files to serve (re-read on reload); "
                              "omit to serve the synthetic ecosystem's lists")
    p_serve.add_argument("--lint", choices=("off", "refuse", "quarantine"),
                         default="refuse",
                         help="filter-list lint gate applied on load and on every "
                              "reload (default refuse; DESIGN.md §9.4)")
    p_serve.add_argument("--matcher", choices=MATCHERS, default="buckets",
                         help="matcher backend (DESIGN.md §15); all three are "
                              "decision-identical (default buckets)")
    p_serve.add_argument("--engine-snapshot", metavar="FILE",
                         help="serve a `repro compile-lists` snapshot; SIGHUP / "
                              "POST /-/reload re-reads the file, so swapping the "
                              "artifact is a zero-parse hot reload; a snapshot "
                              "that fails validation at startup exits 6, on "
                              "reload keeps the last good engine serving")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8400,
                         help="listen port (default 8400; 0 picks a free port)")
    p_serve.add_argument("--queue-depth", type=int, default=1024,
                         help="bounded admission queue depth; beyond it requests "
                              "are shed with 429 + Retry-After (default 1024)")
    p_serve.add_argument("--timeout", type=float, default=5.0, metavar="S",
                         help="per-request deadline; admitted requests not "
                              "answered in time get 503 (default 5)")
    p_serve.add_argument("--concurrency", type=int, default=8,
                         help="classification workers draining the queue "
                              "(default 8)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0, metavar="S",
                         help="seconds a shutdown signal waits for accepted "
                              "requests before deadlining them (default 10)")
    # Testing hook for the serve chaos harness, e.g.
    # "slow-handler:after=10:delay=0.2;reload-storm:every=5".  The
    # REPRO_CHAOS environment variable is an equivalent spelling.
    p_serve.add_argument("--chaos", metavar="SPEC", help=argparse.SUPPRESS)
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except LogParseError as exc:
        print(f"error: malformed input at {exc}; rerun with "
              f"--on-error skip|quarantine to degrade gracefully", file=sys.stderr)
        return EXIT_STRICT_ABORT
    except ManifestMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MANIFEST_MISMATCH
    except SnapshotFingerprintMismatch as exc:
        # The snapshot is valid but compiled from different list content
        # — an identity violation, same contract as a manifest mismatch.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MANIFEST_MISMATCH
    except SnapshotError as exc:
        print(f"error: {exc}; recompile with `repro compile-lists` or rerun "
              f"with --snapshot-policy rebuild", file=sys.stderr)
        return EXIT_SNAPSHOT_INVALID
    except FileNotFoundError as exc:
        print(f"error: input file not found: {exc.filename}", file=sys.stderr)
        return EXIT_MISSING_INPUT
    except WorkerFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_WORKER_FAILURE
    except RunInterrupted as exc:
        print(f"interrupted: {exc}; durable state kept for --resume", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        # Non-durable serial path: no checkpoint to keep, but the exit
        # code contract (130 = interrupted) holds everywhere.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
