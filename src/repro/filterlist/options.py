"""Filter ``$option`` model for Adblock-Plus-style filters.

A filter line may end with ``$opt1,opt2,...`` qualifying when the
pattern applies.  This module models the options the paper's
classification relies on:

* content-type options (``script``, ``image``, ``stylesheet``,
  ``object``, ``xmlhttprequest``, ``subdocument``, ``document``,
  ``media``, ``font``, ``other``, ``popup``) and their ``~`` inverses;
* ``domain=a.com|~b.com`` restrictions on the *page* domain;
* ``third-party`` / ``~third-party``;
* ``match-case``;
* exception-only modifiers ``document`` and ``elemhide``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntFlag

__all__ = ["ContentType", "FilterOptions", "OptionParseError", "parse_options"]


class ContentType(IntFlag):
    """Request content categories, as Adblock Plus defines them.

    The passive pipeline infers one of these per request (§3.1) and the
    engine matches it against each filter's type mask.
    """

    OTHER = 1 << 0
    SCRIPT = 1 << 1
    IMAGE = 1 << 2
    STYLESHEET = 1 << 3
    OBJECT = 1 << 4
    SUBDOCUMENT = 1 << 5
    DOCUMENT = 1 << 6
    XMLHTTPREQUEST = 1 << 7
    MEDIA = 1 << 8
    FONT = 1 << 9
    POPUP = 1 << 10
    PING = 1 << 11

    @classmethod
    def default_mask(cls) -> "ContentType":
        """Types a filter matches when no type option is given.

        Following ABP semantics, ``document``, ``popup`` and
        ``elemhide`` never apply implicitly.
        """
        mask = cls(0)
        for member in cls:
            if member not in (cls.DOCUMENT, cls.POPUP):
                mask |= member
        return mask


_TYPE_NAMES: dict[str, ContentType] = {
    "other": ContentType.OTHER,
    "script": ContentType.SCRIPT,
    "image": ContentType.IMAGE,
    "background": ContentType.IMAGE,  # legacy alias
    "stylesheet": ContentType.STYLESHEET,
    "object": ContentType.OBJECT,
    "object-subrequest": ContentType.OBJECT,
    "subdocument": ContentType.SUBDOCUMENT,
    "document": ContentType.DOCUMENT,
    "xmlhttprequest": ContentType.XMLHTTPREQUEST,
    "media": ContentType.MEDIA,
    "font": ContentType.FONT,
    "popup": ContentType.POPUP,
    "ping": ContentType.PING,
}


class OptionParseError(ValueError):
    """Raised for unknown or malformed ``$options``."""


@dataclass(slots=True)
class FilterOptions:
    """Parsed option set of one filter."""

    type_mask: ContentType = field(default_factory=ContentType.default_mask)
    domains_include: frozenset[str] = frozenset()
    domains_exclude: frozenset[str] = frozenset()
    third_party: bool | None = None
    match_case: bool = False
    elemhide_exception: bool = False
    generic_hide: bool = False
    collapse: bool | None = None
    # Lint bookkeeping (DESIGN.md §9): options the parser did not
    # recognize (lenient mode only — strict parsing raises instead) and
    # self-contradictions that strict parsing silently resolves
    # last-wins today.  Matching behaviour ignores both fields.
    unknown_options: tuple[str, ...] = ()
    conflicts: tuple[str, ...] = ()

    @property
    def is_document_exception(self) -> bool:
        """True when ``$document`` was given (whole-page whitelisting)."""
        return bool(self.type_mask & ContentType.DOCUMENT)

    def applies_to_domain(self, page_host: str) -> bool:
        """Check the ``domain=`` restriction against the page host.

        ABP semantics: the most specific listed domain wins; with only
        inclusions an unlisted host never matches; with only exclusions
        an unlisted host matches.
        """
        if not self.domains_include and not self.domains_exclude:
            return True
        page_host = page_host.lower()
        best_include = _longest_suffix_match(page_host, self.domains_include)
        best_exclude = _longest_suffix_match(page_host, self.domains_exclude)
        if best_include is None and best_exclude is None:
            return not self.domains_include
        if best_include is None:
            return False
        if best_exclude is None:
            return True
        return len(best_include) > len(best_exclude)


def _longest_suffix_match(host: str, domains: frozenset[str]) -> str | None:
    best: str | None = None
    for domain in domains:
        if host == domain or host.endswith("." + domain):
            if best is None or len(domain) > len(best):
                best = domain
    return best


def parse_options(text: str, *, is_exception: bool, lenient: bool = False) -> FilterOptions:
    """Parse the comma-separated option list of a filter.

    Args:
        text: everything after the ``$`` separator.
        is_exception: whether the filter is an ``@@`` exception —
            required because ``document``/``elemhide`` are only valid
            there.
        lenient: record unknown or misplaced options in
            :attr:`FilterOptions.unknown_options` instead of raising —
            the linter's mode (FL007), so it can report the rule text,
            list and line number instead of losing the rule.

    Raises:
        OptionParseError: for options this engine does not know; real
            ABP versions do the same, discarding the whole filter, so
            unknown options must not silently match everything.

    Self-contradictory combinations (``$third-party,~third-party``, a
    content type both included and excluded) parse in both modes —
    matching keeps the historical last-wins/include-wins behaviour —
    but are recorded in :attr:`FilterOptions.conflicts` so FL003 can
    flag the rule as dead instead of letting it silently skew
    classification.
    """
    include_types = ContentType(0)
    exclude_types = ContentType(0)
    options = FilterOptions()
    domains_include: set[str] = set()
    domains_exclude: set[str] = set()
    unknown: list[str] = []
    conflicts: list[str] = []
    third_party_seen: set[bool] = set()

    def _reject(reason: str, option: str) -> None:
        if lenient:
            unknown.append(option)
        else:
            raise OptionParseError(reason)

    for raw in text.split(","):
        option = raw.strip()
        if not option:
            continue
        lower = option.lower()
        inverted = lower.startswith("~")
        name = lower[1:] if inverted else lower

        if name in _TYPE_NAMES:
            if name == "document" and not is_exception and not inverted:
                _reject("$document is only valid in exception filters", option)
                continue
            if inverted:
                exclude_types |= _TYPE_NAMES[name]
            else:
                include_types |= _TYPE_NAMES[name]
        elif name.startswith("domain="):
            for domain in option[len("domain=") :].split("|"):
                domain = domain.strip().lower()
                if not domain:
                    continue
                if domain.startswith("~"):
                    domains_exclude.add(domain[1:])
                else:
                    domains_include.add(domain)
        elif name == "third-party":
            third_party_seen.add(not inverted)
            options.third_party = not inverted
        elif name == "match-case":
            options.match_case = True
        elif name == "elemhide":
            if not is_exception:
                _reject("$elemhide is only valid in exception filters", option)
                continue
            options.elemhide_exception = True
        elif name == "generichide":
            options.generic_hide = True
        elif name == "collapse":
            options.collapse = not inverted
        else:
            _reject(f"unknown filter option: {option!r}", option)

    if len(third_party_seen) == 2:
        conflicts.append("third-party and ~third-party both given")
    contradictory = include_types & exclude_types
    if contradictory:
        names = ", ".join(
            member.name.lower() for member in ContentType if member & contradictory
        )
        conflicts.append(f"content type(s) both included and excluded: {names}")

    if include_types:
        options.type_mask = include_types
    elif exclude_types:
        options.type_mask = ContentType.default_mask() & ~exclude_types
    elif options.elemhide_exception and not include_types:
        # A pure $elemhide exception matches no resource requests.
        options.type_mask = ContentType(0)
    options.domains_include = frozenset(domains_include)
    options.domains_exclude = frozenset(domains_exclude)
    options.unknown_options = tuple(unknown)
    options.conflicts = tuple(conflicts)
    return options
