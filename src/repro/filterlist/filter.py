"""Compiled filter objects and single-filter URL matching.

Implements the documented Adblock Plus pattern language:

* plain substring patterns (``/adserver/``),
* ``*`` wildcards,
* the ``^`` separator placeholder (matches any character that is not a
  letter, digit or one of ``_ - . %``, and also the end of the URL),
* ``|`` start/end anchors and the ``||`` domain anchor,
* ``@@`` exception markers and ``$options`` (see
  :mod:`repro.filterlist.options`),
* element-hiding rules ``domains##selector`` / ``#@#``.

Patterns compile to Python regexes the same way ABP compiles them to
JavaScript regexes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.filterlist.options import ContentType, FilterOptions, parse_options

__all__ = [
    "FilterKind",
    "Filter",
    "ElementHidingRule",
    "compile_pattern",
    "extract_keywords",
]


class FilterKind(str, Enum):
    BLOCKING = "blocking"
    EXCEPTION = "exception"


_SEPARATOR_REGEX = r"(?:[^\w\-.%]|$)"
# ABP's domain-anchor prefix: scheme, ://, optionally any subdomains.
_DOMAIN_ANCHOR_REGEX = r"^[\w\-]+:/+(?:[^/]+\.)?"


def compile_pattern(pattern: str, *, match_case: bool = False) -> re.Pattern[str]:
    """Compile an ABP filter pattern into a regex.

    The translation mirrors adblockplus/lib/matcher semantics:
    collapse runs of ``*``, read the anchors off the true pattern
    edges, escape everything else, then substitute the special tokens.

    Anchors are detected *before* edge wildcards are stripped: in
    ``*|foo`` the ``|`` is mid-pattern and therefore a literal, and in
    ``|*foo`` / ``foo*|`` the wildcard neutralizes the adjacent anchor
    (the anchored position may be arbitrarily far from the literal).
    The seed stripped wildcards first, which silently promoted those
    literal ``|`` characters to anchors.
    """
    text = re.sub(r"\*+", "*", pattern)

    anchor_start = anchor_domain = anchor_end = False
    if text.startswith("||"):
        anchor_domain = True
        text = text[2:]
    elif text.startswith("|"):
        anchor_start = True
        text = text[1:]
    if text.endswith("|"):
        anchor_end = True
        text = text[:-1]

    # Edge wildcards are no-ops for unanchored substring search and
    # cancel an anchor they sit next to.
    if text.startswith("*"):
        anchor_domain = anchor_start = False
        text = text.lstrip("*")
    if text.endswith("*"):
        anchor_end = False
        text = text.rstrip("*")

    out: list[str] = []
    if anchor_domain:
        out.append(_DOMAIN_ANCHOR_REGEX)
    elif anchor_start:
        out.append("^")
    for char in text:
        if char == "*":
            out.append(".*")
        elif char == "^":
            out.append(_SEPARATOR_REGEX)
        else:
            out.append(re.escape(char))
    if anchor_end:
        out.append("$")
    flags = 0 if match_case else re.IGNORECASE
    return re.compile("".join(out), flags)


_KEYWORD_TOKEN = re.compile(r"[a-z0-9%]{3,}")


def extract_keywords(pattern: str) -> list[str]:
    """Candidate index keywords of a filter pattern.

    Follows ABP's matcher exactly: a keyword is a literal run (length
    >= 3) *bounded on both sides by non-keyword, non-wildcard
    characters* in the pattern.  Only then is the run guaranteed to
    appear as a complete URL token in every matching URL — a run at
    the pattern edge (``track``) can match mid-token (``track0``) and
    must leave the filter un-indexed.  The caller picks one keyword
    (the least common) to index the filter under.
    """
    text = pattern.lower()
    if text.startswith("@@"):
        text = text[2:]
    dollar = _find_options_separator(text)
    if dollar is not None:
        text = text[:dollar]
    # Replace anchors so they act as boundaries without gluing literals.
    text = text.replace("||", " ").replace("|", " ")
    keywords: list[str] = []
    for match in _KEYWORD_TOKEN.finditer(text):
        start, end = match.span()
        if start == 0 or text[start - 1] == "*":
            continue  # run may be a suffix of a longer URL token
        if end >= len(text) or text[end] == "*":
            continue  # run may be a prefix of a longer URL token
        keywords.append(match.group())
    return keywords


def _find_options_separator(text: str) -> int | None:
    """Index of the ``$`` starting the options, or None.

    A ``$`` only separates options when what follows looks like an
    option list; this mirrors ABP's regex and keeps patterns containing
    ``$`` literals (rare) working.
    """
    candidate = text.rfind("$")
    while candidate > 0:
        tail = text[candidate + 1 :]
        if re.fullmatch(r"[\w\-~,=.|!*^]*", tail) and not tail.startswith("/"):
            return candidate
        candidate = text.rfind("$", 0, candidate)
    return None


@dataclass(slots=True)
class Filter:
    """One compiled request filter (blocking or exception)."""

    text: str
    kind: FilterKind
    pattern: str
    regex: re.Pattern[str]
    options: FilterOptions
    list_name: str = ""

    @property
    def is_exception(self) -> bool:
        return self.kind is FilterKind.EXCEPTION

    @classmethod
    def parse(cls, line: str, *, list_name: str = "", lenient: bool = False) -> "Filter":
        """Parse one filter line (not a comment / elemhide rule).

        ``lenient`` is the linter's mode: unknown ``$options`` are
        recorded on :attr:`FilterOptions.unknown_options` instead of
        rejecting the rule (FL007 needs the parsed rule to report it).
        """
        text = line.strip()
        body = text
        kind = FilterKind.BLOCKING
        if body.startswith("@@"):
            kind = FilterKind.EXCEPTION
            body = body[2:]

        dollar = _find_options_separator(body)
        if dollar is not None:
            pattern, option_text = body[:dollar], body[dollar + 1 :]
            options = parse_options(
                option_text,
                is_exception=(kind is FilterKind.EXCEPTION),
                lenient=lenient,
            )
        else:
            pattern, options = body, FilterOptions()

        regex = compile_pattern(pattern, match_case=options.match_case)
        return cls(
            text=text,
            kind=kind,
            pattern=pattern,
            regex=regex,
            options=options,
            list_name=list_name,
        )

    def matches(
        self,
        url: str,
        content_type: ContentType,
        page_host: str,
        *,
        third_party: bool,
    ) -> bool:
        """Does this filter apply to ``url`` in the given request context?"""
        if not (self.options.type_mask & content_type):
            return False
        if self.options.third_party is not None and self.options.third_party != third_party:
            return False
        if not self.options.applies_to_domain(page_host):
            return False
        return self.regex.search(url) is not None

    def matches_document(self, page_url: str, page_host: str) -> bool:
        """``$document`` exception check against the page itself."""
        if not self.is_exception or not self.options.is_document_exception:
            return False
        if not self.options.applies_to_domain(page_host):
            return False
        return self.regex.search(page_url) is not None


@dataclass(frozen=True, slots=True)
class ElementHidingRule:
    """An element-hiding rule: ``domain1,domain2##selector``.

    These rules never block requests; ABP applies them as CSS at render
    time (§2: "element hiding"), so the passive methodology cannot see
    them.  We parse them to drive the browser emulator's hidden-ad
    accounting and to keep synthetic lists realistic.
    """

    text: str
    selector: str
    domains_include: frozenset[str]
    domains_exclude: frozenset[str]
    is_exception: bool

    @classmethod
    def parse(cls, line: str) -> "ElementHidingRule":
        text = line.strip()
        for marker, is_exception in (("#@#", True), ("##", False)):
            index = text.find(marker)
            if index >= 0:
                domain_part, selector = text[:index], text[index + len(marker) :]
                include: set[str] = set()
                exclude: set[str] = set()
                for domain in domain_part.split(","):
                    domain = domain.strip().lower()
                    if not domain:
                        continue
                    if domain.startswith("~"):
                        exclude.add(domain[1:])
                    else:
                        include.add(domain)
                return cls(
                    text=text,
                    selector=selector.strip(),
                    domains_include=frozenset(include),
                    domains_exclude=frozenset(exclude),
                    is_exception=is_exception,
                )
        raise ValueError(f"not an element hiding rule: {line!r}")

    def applies_to(self, host: str) -> bool:
        host = host.lower()
        if any(host == d or host.endswith("." + d) for d in self.domains_exclude):
            return False
        if not self.domains_include:
            return True
        return any(host == d or host.endswith("." + d) for d in self.domains_include)
