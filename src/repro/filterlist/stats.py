"""Filter-list composition statistics.

The EasyList maintainers publish periodic composition statistics (the
paper cites their 2011 post for EasyPrivacy adoption); this module
computes the same kind of breakdown for any list — rule kinds, anchor
styles, option usage — which is also how the synthetic generators are
sanity-checked against real-list shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.filterlist.filter import Filter
from repro.filterlist.lists import FilterList
from repro.filterlist.options import ContentType

__all__ = ["ListStats", "list_stats", "compare_lists"]


@dataclass(slots=True)
class ListStats:
    """Composition summary of one filter list."""

    name: str
    total_rules: int = 0
    blocking: int = 0
    exceptions: int = 0
    hiding_rules: int = 0
    domain_anchored: int = 0  # ||…
    start_anchored: int = 0  # |…
    with_options: int = 0
    third_party_scoped: int = 0
    domain_scoped: int = 0  # $domain=
    type_scoped: int = 0  # restricted content-type mask
    document_exceptions: int = 0
    option_counts: Counter = field(default_factory=Counter)

    @property
    def exception_share(self) -> float:
        requests = self.blocking + self.exceptions
        return self.exceptions / requests if requests else 0.0

    @property
    def anchored_share(self) -> float:
        requests = self.blocking + self.exceptions
        return (self.domain_anchored + self.start_anchored) / requests if requests else 0.0


def _filter_stats(stats: ListStats, filter_: Filter) -> None:
    if filter_.is_exception:
        stats.exceptions += 1
    else:
        stats.blocking += 1
    if filter_.pattern.startswith("||"):
        stats.domain_anchored += 1
    elif filter_.pattern.startswith("|"):
        stats.start_anchored += 1

    options = filter_.options
    has_option = False
    if options.third_party is not None:
        stats.third_party_scoped += 1
        stats.option_counts["third-party"] += 1
        has_option = True
    if options.domains_include or options.domains_exclude:
        stats.domain_scoped += 1
        stats.option_counts["domain="] += 1
        has_option = True
    if options.type_mask != ContentType.default_mask():
        stats.type_scoped += 1
        for member in ContentType:
            if member is ContentType.DOCUMENT:
                continue  # counted via document_exceptions below
            if member in options.type_mask and member not in ContentType.default_mask():
                stats.option_counts[member.name.lower()] += 1
        has_option = True
    if options.is_document_exception:
        stats.document_exceptions += 1
        stats.option_counts["document"] += 1
        has_option = True
    if options.match_case:
        stats.option_counts["match-case"] += 1
        has_option = True
    if has_option:
        stats.with_options += 1


def list_stats(filter_list: FilterList) -> ListStats:
    """Compute the composition summary of ``filter_list``."""
    stats = ListStats(name=filter_list.name)
    for filter_ in filter_list.filters:
        _filter_stats(stats, filter_)
    stats.hiding_rules = len(filter_list.hiding_rules)
    stats.total_rules = len(filter_list.filters) + stats.hiding_rules
    return stats


def compare_lists(lists: dict[str, FilterList]) -> list[dict]:
    """Tabular comparison across a list bundle (for reports)."""
    rows = []
    for name, filter_list in lists.items():
        stats = list_stats(filter_list)
        rows.append(
            {
                "list": name,
                "rules": stats.total_rules,
                "blocking": stats.blocking,
                "exceptions": stats.exceptions,
                "hiding": stats.hiding_rules,
                "||anchored": stats.domain_anchored,
                "$options": stats.with_options,
                "exception share": f"{100 * stats.exception_share:.1f}%",
            }
        )
    return rows
