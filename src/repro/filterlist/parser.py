"""Filter-list text parser.

Splits a list file into request filters, element-hiding rules and
metadata.  List files follow the EasyList conventions: a ``[Adblock
Plus 2.0]`` header, ``!``-prefixed comments carrying ``key: value``
metadata (``Title``, ``Expires``, ``Version``, ...), then one rule per
line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.filterlist.filter import ElementHidingRule, Filter
from repro.filterlist.options import OptionParseError

__all__ = ["ParsedList", "RejectedLine", "parse_list_text", "parse_expires"]


@dataclass(frozen=True, slots=True)
class RejectedLine:
    """One rule line the parser discarded, with enough context to lint.

    The seed kept only the raw text, which made unknown ``$options``
    effectively silent — nothing downstream could say *which* option on
    *which line* killed the rule.  FL001/FL007 report straight from
    these records (DESIGN.md §9).
    """

    line_no: int
    text: str
    reason: str


@dataclass(slots=True)
class ParsedList:
    """Result of parsing one filter-list file."""

    name: str
    filters: list[Filter] = field(default_factory=list)
    hiding_rules: list[ElementHidingRule] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)
    invalid_lines: list[str] = field(default_factory=list)
    rejected: list[RejectedLine] = field(default_factory=list)

    @property
    def title(self) -> str:
        return self.metadata.get("title", self.name)

    @property
    def expires_seconds(self) -> float | None:
        """Soft-expiry interval from the ``Expires`` header (§3.2)."""
        raw = self.metadata.get("expires")
        if raw is None:
            return None
        return parse_expires(raw)


_EXPIRES_RE = re.compile(r"(\d+)\s*(day|days|hour|hours)", re.IGNORECASE)


def parse_expires(value: str) -> float | None:
    """Parse an ``Expires: N days`` header into seconds."""
    match = _EXPIRES_RE.search(value)
    if not match:
        return None
    amount = int(match.group(1))
    unit = match.group(2).lower()
    if unit.startswith("day"):
        return amount * 86400.0
    return amount * 3600.0


_METADATA_RE = re.compile(r"^!\s*([A-Za-z][A-Za-z ]*?)\s*:\s*(.+)$")


def parse_list_text(text: str, name: str = "") -> ParsedList:
    """Parse filter-list file content.

    Invalid filter lines (unknown options, broken syntax) are collected
    in :attr:`ParsedList.invalid_lines` instead of raising — a client
    must keep working when a list update ships one bad rule.
    """
    result = ParsedList(name=name)
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            result.metadata.setdefault("header", line[1:-1])
            continue
        if line.startswith("!"):
            meta = _METADATA_RE.match(line)
            if meta:
                result.metadata[meta.group(1).strip().lower()] = meta.group(2).strip()
            continue
        if "##" in line or "#@#" in line:
            try:
                result.hiding_rules.append(ElementHidingRule.parse(line))
            except ValueError as exc:
                result.invalid_lines.append(line)
                result.rejected.append(RejectedLine(line_no, line, str(exc)))
            continue
        try:
            result.filters.append(Filter.parse(line, list_name=name))
        except (OptionParseError, re.error, ValueError) as exc:
            result.invalid_lines.append(line)
            result.rejected.append(RejectedLine(line_no, line, str(exc)))
    return result
