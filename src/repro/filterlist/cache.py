"""Memoized decision layer over a :class:`FilterEngine` (DESIGN.md §11).

Trace traffic is massively repetitive — the same ad/CDN URLs recur
across users and pageviews (the repetition the paper's base-URL
normalization exploits, §4) — yet the engine re-tokenizes and re-scans
filter buckets for every record.  :class:`CachingEngine` wraps any
engine with a bounded LRU over complete classification outcomes, keyed
on everything the outcome is a function of:

* the request URL and content type,
* the page host (third-party bit, ``$domain=`` scoping),
* the full page URL **only when the engine carries a ``$document``
  exception whose outcome can depend on the page path** — for the
  common ``@@||host^$document`` shape the page host suffices, which is
  what keeps the hit rate high (see
  ``FilterEngine.document_matching_needs_page_url``).

Every cache entry is guarded by the engine's **fingerprint** — a hash
chained over all filter text ever loaded — so results computed against
one filter state can never be served against another: ``add_filters``
rotates the fingerprint and drops the cache, and a warm cache attached
to a mismatched engine is refused with :class:`EngineFingerprintMismatch`.

Cache contents are *transient by contract*: they are pure memoization,
excluded from checkpoint ``export_state``/``merge_state`` (RC004 knows
the rule — see ``_TRANSIENT_STATE`` in ``robustness/health.py``), so
cached and uncached runs are byte-identical and resume never depends
on cache warmth.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Protocol

from repro.filterlist.engine import Classification, FilterEngine, MatchResult, RequestContext
from repro.filterlist.filter import Filter

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "CacheStats",
    "DecisionCache",
    "DecisionEngine",
    "CachingEngine",
    "EngineFingerprintMismatch",
]


class DecisionEngine(Protocol):
    """The matcher surface :class:`CachingEngine` (and the pipeline)
    requires — satisfied by :class:`FilterEngine`, the actrie engine,
    and :class:`~repro.filterlist.combined.CombinedRegexEngine`."""

    @property
    def fingerprint(self) -> str: ...

    @property
    def document_matching_needs_page_url(self) -> bool: ...

    @property
    def list_names(self) -> list[str]: ...

    @property
    def filter_count(self) -> int: ...

    def add_filters(self, filters: Iterable[Filter], list_name: str | None = None) -> None: ...

    def iter_filters(self) -> list[Filter]: ...

    def classify(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> Classification: ...

    def match(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> MatchResult: ...

DEFAULT_CACHE_SIZE = 65536

_MISSING = object()


class EngineFingerprintMismatch(RuntimeError):
    """A warm cache was attached to an engine with different filters."""


@dataclass(slots=True)
class CacheStats:
    """Observable cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions


class DecisionCache:
    """Bounded LRU of classification outcomes, fingerprint-guarded.

    The cache never serializes: it holds live :class:`Classification` /
    :class:`MatchResult` objects (frozen, safely shared) and is rebuilt
    from scratch on every process start or filter reload.
    """

    def __init__(self, fingerprint: str, *, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self._fingerprint = fingerprint
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.stats = CacheStats()

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def check_fingerprint(self, fingerprint: str) -> None:
        """Refuse to keep warm entries across a filter-state change."""
        if fingerprint != self._fingerprint:
            raise EngineFingerprintMismatch(
                f"decision cache was built for engine {self._fingerprint[:12]}… "
                f"but is being used with engine {fingerprint[:12]}…; "
                "call invalidate() after changing filters"
            )

    def get(self, key: Hashable) -> object:
        """Cached outcome for ``key`` or the module-level miss sentinel."""
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.stats.misses += 1
            return _MISSING
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Hashable, value: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value

    def invalidate(self, fingerprint: str) -> None:
        """Drop every entry and re-key the cache to ``fingerprint``."""
        self._entries.clear()
        self._fingerprint = fingerprint

    @staticmethod
    def missing() -> object:
        return _MISSING


class CachingEngine:
    """Drop-in :class:`FilterEngine` front with memoized decisions.

    Delegates every classification to the wrapped engine on a miss and
    replays the engine's exact (frozen) result objects on a hit, so a
    cached run is byte-identical to an uncached one by construction —
    the property tests in ``tests/test_decision_cache.py`` and the
    golden gate enforce it end to end.
    """

    def __init__(self, engine: DecisionEngine, *, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        self._engine = engine
        self._cache = DecisionCache(engine.fingerprint, maxsize=maxsize)

    @property
    def engine(self) -> DecisionEngine:
        """The wrapped engine (escape hatch for uncached access)."""
        return self._engine

    @property
    def cache(self) -> DecisionCache:
        return self._cache

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    # -- delegated engine surface -------------------------------------

    @property
    def list_names(self) -> list[str]:
        return self._engine.list_names

    @property
    def filter_count(self) -> int:
        return self._engine.filter_count

    @property
    def fingerprint(self) -> str:
        return self._engine.fingerprint

    @property
    def document_matching_needs_page_url(self) -> bool:
        return self._engine.document_matching_needs_page_url

    def iter_filters(self) -> list[Filter]:
        return self._engine.iter_filters()

    def add_filters(self, filters: Iterable[Filter], list_name: str | None = None) -> None:
        """Load more filters and drop every memoized decision.

        The wrapped engine's fingerprint rotates with the new filter
        text; re-keying the cache to it keeps the guard honest.  The
        invalidation runs even when the engine's ``add_filters`` raises
        partway: the engine may already have mutated matching state
        (the stale-fingerprint window), and a warm cache keyed on the
        pre-mutation fingerprint would silently replay decisions from
        the old filter set — e.g. after a snapshot load followed by a
        failed incremental list add.
        """
        try:
            self._engine.add_filters(filters, list_name)
        finally:
            self._cache.invalidate(self._engine.fingerprint)

    # -- memoized classification --------------------------------------

    def _key(self, kind: str, url: str, context: RequestContext) -> Hashable:
        page = (
            context.page_url
            if self._engine.document_matching_needs_page_url
            else context.page_host
        )
        return (kind, url, context.content_type, page)

    def classify(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> Classification:
        self._cache.check_fingerprint(self._engine.fingerprint)
        key = self._key("classify", url, context)
        cached = self._cache.get(key)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        result = self._engine.classify(url, context, request_host=request_host)
        self._cache.put(key, result)
        return result

    def match(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> MatchResult:
        self._cache.check_fingerprint(self._engine.fingerprint)
        key = self._key("match", url, context)
        cached = self._cache.get(key)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        result = self._engine.match(url, context, request_host=request_host)
        self._cache.put(key, result)
        return result

    def should_block(self, url: str, context: RequestContext) -> bool:
        return self.match(url, context).is_blocked
