"""AdBlock-Plus-compatible filter engine substrate.

This package replaces the paper's ``libadblockplus`` dependency with a
from-scratch implementation of the documented filter syntax and the
ABP matching semantics, plus deterministic generators for synthetic
EasyList / EasyPrivacy / acceptable-ads lists targeting the synthetic
web ecosystem.
"""

from repro.filterlist.easylist import (
    GENERIC_AD_PATTERNS,
    GENERIC_TRACKER_PATTERNS,
    ListSynthesisSpec,
    build_lists,
    synthesize_acceptable_ads,
    synthesize_easylist,
    synthesize_easyprivacy,
    synthesize_language_derivative,
)
from repro.filterlist.actrie import ACTrieEngine, AhoCorasick
from repro.filterlist.cache import (
    CacheStats,
    CachingEngine,
    DecisionCache,
    DecisionEngine,
    EngineFingerprintMismatch,
)
from repro.filterlist.engine import (
    Classification,
    Decision,
    FilterEngine,
    MatchResult,
    RequestContext,
)
from repro.filterlist.filter import ElementHidingRule, Filter, FilterKind, compile_pattern
from repro.filterlist.lists import (
    ACCEPTABLE_ADS,
    DEFAULT_EXPIRES,
    EASYLIST,
    EASYPRIVACY,
    FilterList,
    Subscription,
    SubscriptionSet,
)
from repro.filterlist.options import ContentType, FilterOptions, OptionParseError, parse_options
from repro.filterlist.combined import CombinedRegexEngine
from repro.filterlist.evolution import ChurnRates, evolve, staleness_series
from repro.filterlist.stats import ListStats, compare_lists, list_stats
from repro.filterlist.parser import ParsedList, parse_expires, parse_list_text
from repro.filterlist.snapshot import (
    MATCHERS,
    LoadedSnapshot,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotFingerprintMismatch,
    SnapshotInfo,
    SnapshotVersionError,
    inspect_snapshot,
    load_snapshot,
    write_snapshot,
)

__all__ = [
    "ACTrieEngine",
    "AhoCorasick",
    "CacheStats",
    "CachingEngine",
    "DecisionCache",
    "DecisionEngine",
    "EngineFingerprintMismatch",
    "MATCHERS",
    "LoadedSnapshot",
    "SnapshotCorrupt",
    "SnapshotError",
    "SnapshotFingerprintMismatch",
    "SnapshotInfo",
    "SnapshotVersionError",
    "inspect_snapshot",
    "load_snapshot",
    "write_snapshot",
    "CombinedRegexEngine",
    "ChurnRates",
    "evolve",
    "staleness_series",
    "ListStats",
    "compare_lists",
    "list_stats",
    "GENERIC_AD_PATTERNS",
    "GENERIC_TRACKER_PATTERNS",
    "ListSynthesisSpec",
    "build_lists",
    "synthesize_easylist",
    "synthesize_easyprivacy",
    "synthesize_acceptable_ads",
    "synthesize_language_derivative",
    "Classification",
    "Decision",
    "FilterEngine",
    "MatchResult",
    "RequestContext",
    "ElementHidingRule",
    "Filter",
    "FilterKind",
    "compile_pattern",
    "ACCEPTABLE_ADS",
    "DEFAULT_EXPIRES",
    "EASYLIST",
    "EASYPRIVACY",
    "FilterList",
    "Subscription",
    "SubscriptionSet",
    "ContentType",
    "FilterOptions",
    "OptionParseError",
    "parse_options",
    "ParsedList",
    "parse_expires",
    "parse_list_text",
]
