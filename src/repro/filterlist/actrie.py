"""Aho–Corasick substring prefilter matcher core.

The keyword-bucket engine (:mod:`repro.filterlist.engine`) spends most
of an uncached decision on discovery overhead the profile singles out:
the linear ``$document``-exception scan, per-candidate
:class:`~enum.IntFlag` arithmetic inside :meth:`Filter.matches`, and
generator plumbing in ``_FilterIndex.candidates``.  This module keeps
the *semantics* of the bucket engine bit-for-bit (the differential
harness in ``tests/test_engine_differential.py`` holds it to that)
while replacing the discovery machinery:

1. **Keyword discovery** runs one Aho–Corasick automaton over the URL
   instead of tokenizing and probing the bucket dict per token.  The
   automaton is built from every indexed keyword and executed through a
   trie-structured regex (:meth:`AhoCorasick.to_regex`), so the scan
   happens at C speed inside :mod:`re`; the pure-Python automaton walk
   (:meth:`AhoCorasick.iter_matches`) stays as the reference
   implementation the property tests compare against.
2. **Candidate confirmation** uses flattened per-filter records
   ``(type_mask_int, third_party, domain_opts, regex_search, list_name,
   filter)`` so the hot loop does plain-``int`` mask tests and a bound
   ``regex.search`` instead of attribute chases through ``Filter`` and
   ``FilterOptions``.
3. **Keywordless tail** filters are guarded by one "any required
   literal present?" automaton pass; the per-filter containment loop
   only runs on the rare URLs that pass it.
4. **Document exceptions** are bucketed by registrable domain exactly
   like the host-anchored blocking filters, eliminating the per-request
   linear scan for the common ``@@||host^$document`` shape.

Candidate *order* — which decides the reported filter on multi-match
URLs — is preserved exactly: host bucket first, then keyword buckets in
URL-token first-occurrence order, then the keywordless tail in
insertion order.  (Visiting a keyword bucket twice when a token repeats
cannot change any first-match/first-per-list outcome, so unlike the
bucket engine no dedup pass is needed.)
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Iterator

from repro.filterlist.engine import (
    Classification,
    Decision,
    FilterEngine,
    MatchResult,
    RequestContext,
    _host_bucket_key,
)
from repro.filterlist.filter import Filter
from repro.http.url import is_third_party, registrable_domain, split_url

__all__ = ["AhoCorasick", "ACTrieEngine"]


class AhoCorasick:
    """A classic Aho–Corasick automaton over a set of literal words.

    Two execution modes share one trie:

    * :meth:`iter_matches` walks goto/fail links in pure Python — the
      reference implementation, easy to verify against a naive scan;
    * :meth:`to_regex` serializes the trie into a regex alternation so
      the same automaton runs inside :mod:`re`'s C loop.  Shared
      prefixes collapse into one branch, which is what makes a large
      keyword alternation tractable.
    """

    def __init__(self, words: "list[str] | tuple[str, ...]" = ()) -> None:
        # Node 0 is the root.  _goto maps per-node char transitions;
        # _output collects the words ending at a node (after build(),
        # also every word ending at a fail-link suffix).
        self._goto: list[dict[str, int]] = [{}]
        self._fail: list[int] = [0]
        self._output: list[list[str]] = [[]]
        self._words: set[str] = set()
        self._built = False
        for word in words:
            self.add(word)

    def add(self, word: str) -> None:
        if self._built:
            raise RuntimeError("automaton already built")
        if not word:
            raise ValueError("empty word")
        if word in self._words:
            return
        self._words.add(word)
        node = 0
        for char in word:
            nxt = self._goto[node].get(char)
            if nxt is None:
                nxt = len(self._goto)
                self._goto[node][char] = nxt
                self._goto.append({})
                self._fail.append(0)
                self._output.append([])
            node = nxt
        self._output[node].append(word)

    def build(self) -> None:
        """Compute BFS failure links (idempotent)."""
        if self._built:
            return
        queue: deque[int] = deque()
        for child in self._goto[0].values():
            self._fail[child] = 0
            queue.append(child)
        while queue:
            node = queue.popleft()
            for char, child in self._goto[node].items():
                queue.append(child)
                fallback = self._fail[node]
                while fallback and char not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._goto[fallback].get(char, 0)
                self._output[child] = self._output[child] + self._output[self._fail[child]]
        self._built = True

    def iter_matches(self, text: str) -> Iterator[tuple[int, str]]:
        """Yield ``(start, word)`` for every occurrence, in text order.

        Overlapping and nested occurrences are all reported (standard
        Aho–Corasick semantics).
        """
        self.build()
        node = 0
        for index, char in enumerate(text):
            while node and char not in self._goto[node]:
                node = self._fail[node]
            node = self._goto[node].get(char, 0)
            for word in self._output[node]:
                yield index - len(word) + 1, word

    def words(self) -> list[str]:
        """Every word added, sorted."""
        return sorted(self._words)

    def _trie(self) -> dict:
        """Nested-dict view of the word set (``None`` key = word end)."""
        root: dict = {}
        for word in self.words():
            cursor = root
            for char in word:
                cursor = cursor.setdefault(char, {})
            cursor[None] = {}
        return root

    def to_regex(self) -> str:
        """Trie-structured regex source matching exactly the added words.

        Longest-match preference falls out of the structure: at a node
        that both ends a word and continues, the continuation branch is
        tried first (greedy ``(?:...)?``), so a caller wrapping this in
        token-boundary lookarounds sees whole-token matches.
        """

        def serialize(node: dict) -> str:
            end = None in node
            branches = [
                re.escape(char) + serialize(child)
                for char, child in sorted(node.items(), key=lambda kv: kv[0] or "")
                if char is not None
            ]
            if not branches:
                return ""
            if len(branches) == 1 and not end:
                return branches[0]
            return "(?:" + "|".join(branches) + ")" + ("?" if end else "")

        trie = self._trie()
        if not trie:
            raise ValueError("no words added")
        return serialize(trie)


# One confirmation record per filter: everything Filter.matches() needs,
# pre-extracted so the hot loop never touches IntFlag or FilterOptions
# attributes.  Layout: (type_mask_int, third_party, domain_opts_or_None,
# regex_search, list_name, filter).
_Record = tuple


def _record(filter_: Filter) -> _Record:
    opts = filter_.options
    domain_opts = opts if (opts.domains_include or opts.domains_exclude) else None
    return (
        int(opts.type_mask),
        opts.third_party,
        domain_opts,
        filter_.regex.search,
        filter_.list_name,
        filter_,
    )


def _required_literal(pattern: str) -> str | None:
    """Longest literal every URL matching ``pattern`` must contain.

    Edge anchors (``||``, ``|``) are positional, not literal, so they
    are stripped; the remainder is split on ``*`` (wildcard), ``^``
    (separator class) and ``|`` (mid-pattern pipes are literal, but a
    fragment of a required literal is itself required, so splitting
    stays sound).  Lower-cased because prefiltering scans the
    lower-cased URL — sound even for ``$match-case`` filters, which can
    only be *stricter* than the case-blind containment test.
    """
    text = pattern.lower()
    if text.startswith("||"):
        text = text[2:]
    elif text.startswith("|"):
        text = text[1:]
    if text.endswith("|"):
        text = text[:-1]
    segments = re.split(r"[*^|]", text)
    best = max(segments, key=len, default="")
    return best if len(best) >= 3 else None


_TOKEN_BOUNDARY_BEFORE = r"(?<![a-z0-9%])"
_TOKEN_BOUNDARY_AFTER = r"(?![a-z0-9%])"

# IntFlag attribute access goes through a descriptor on every call;
# memoize the plain int once per distinct flag value instead.
_CT_VALUE: dict = {}


def _ct_int(content_type: Any) -> int:
    value = _CT_VALUE.get(content_type)
    if value is None:
        value = _CT_VALUE[content_type] = int(content_type)
    return value


class _CompiledIndex:
    """Flattened, discovery-ready form of one ``_FilterIndex``."""

    __slots__ = ("by_host", "host_all", "by_keyword", "tail", "tail_always", "tail_any")

    def __init__(self, filters_by_host: dict, filters_by_keyword: dict, keywordless: list):
        self.by_host: dict[str, list[_Record]] = {}
        self.host_all: list[_Record] = []
        for key, bucket in filters_by_host.items():
            records = [_record(f) for f in bucket]
            self.by_host[key] = records
            self.host_all.extend(records)
        self.by_keyword: dict[str, list[_Record]] = {}
        for keyword, bucket in filters_by_keyword.items():
            records = [_record(f) for f in bucket]
            if records:
                self.by_keyword[keyword] = records
        # The keywordless tail, guarded by one any-literal automaton:
        # when no required literal occurs in the URL, only the filters
        # with no extractable literal (tail_always) need confirming —
        # and their relative order is their insertion order, unchanged.
        self.tail: list[tuple[str | None, _Record]] = [
            (_required_literal(f.pattern), _record(f)) for f in keywordless
        ]
        self.tail_always: list[_Record] = [rec for lit, rec in self.tail if lit is None]
        literals = {lit for lit, _rec in self.tail if lit is not None}
        self.tail_any: re.Pattern[str] | None = (
            re.compile(AhoCorasick(sorted(literals)).to_regex()) if literals else None
        )

    def buckets_for(
        self, host_bucket: "list[_Record] | None", tokens: list[str], url_lower: str
    ) -> list:
        """Candidate buckets in bucket-engine consultation order."""
        buckets: list[list[_Record]] = []
        if host_bucket:
            buckets.append(host_bucket)
        if tokens:
            get_bucket = self.by_keyword.get
            for token in tokens:
                bucket = get_bucket(token)
                if bucket:
                    buckets.append(bucket)
        if self.tail_any is not None and self.tail_any.search(url_lower) is not None:
            buckets.append(
                [rec for lit, rec in self.tail if lit is None or lit in url_lower]
            )
        elif self.tail_always:
            buckets.append(self.tail_always)
        return buckets


class _Compiled:
    """All lazily-built matcher state (never serialized — transient).

    ``host_cache`` / ``page_cache`` memoize *bucket pointers* per
    hostname / page URL — which candidate lists a host resolves to —
    never decisions: every request still runs its full confirmation
    pass, so (unlike the decision cache) cache state can never change a
    result, only skip re-deriving ``registrable_domain`` and dict
    probes for hosts the trace repeats.  Both are bounded and process-
    local.
    """

    __slots__ = (
        "finder",
        "findall",
        "blocking",
        "exceptions",
        "doc_by_host",
        "doc_rest",
        "doc_all",
        "host_cache",
        "page_cache",
        "total_lists",
        "ex_keyed",
    )

    def __init__(
        self,
        finder: "re.Pattern[str] | None",
        blocking: _CompiledIndex,
        exceptions: _CompiledIndex,
        doc_by_host: dict[str, list[tuple[int, Filter]]],
        doc_rest: list[tuple[int, Filter]],
        doc_all: list[tuple[int, Filter]],
        total_lists: int,
    ) -> None:
        self.finder = finder
        self.findall = finder.findall if finder is not None else None
        self.blocking = blocking
        self.exceptions = exceptions
        self.doc_by_host = doc_by_host
        self.doc_rest = doc_rest
        self.doc_all = doc_all
        self.total_lists = total_lists
        # Whether the exception index has any non-host discovery paths:
        # when False and the host probe missed, the whole pass is a no-op.
        self.ex_keyed = bool(
            exceptions.by_keyword or exceptions.tail_any is not None or exceptions.tail_always
        )
        # request_host -> (bl_bucket|None, ex_bucket|None, doc_bucket|None, opaque)
        self.host_cache: dict[str, tuple] = {}
        # page_url -> (page_host, doc_bucket|None, opaque)
        self.page_cache: dict[str, tuple] = {}

    _CACHE_LIMIT = 1 << 17

    def host_entry(self, request_host: str) -> tuple:
        """Cache-miss path; hot callers probe ``host_cache`` directly."""
        entry = self.host_cache.get(request_host)
        if entry is None:
            if "@" in request_host or ":" in request_host:
                # Same fallback as _FilterIndex.candidates: an opaque
                # host voids the registrable-domain shortcut.
                entry = (
                    self.blocking.host_all if self.blocking.by_host else None,
                    self.exceptions.host_all if self.exceptions.by_host else None,
                    None,
                    True,
                )
            elif not request_host:
                # The bucket engine probes its host dict even for an
                # empty host (and misses); only the document-exception
                # pass, which the bucket engine runs as a full linear
                # scan, needs the conservative opaque fallback here.
                entry = (None, None, None, True)
            else:
                key = registrable_domain(request_host)
                entry = (
                    self.blocking.by_host.get(key),
                    self.exceptions.by_host.get(key),
                    self.doc_by_host.get(key),
                    False,
                )
            if len(self.host_cache) >= self._CACHE_LIMIT:
                self.host_cache.clear()
            self.host_cache[request_host] = entry
        return entry

    def page_entry(self, page_url: str) -> tuple:
        """Cache-miss path; hot callers probe ``page_cache`` directly."""
        entry = self.page_cache.get(page_url)
        if entry is None:
            page_host = split_url(page_url).host
            if not page_host or "@" in page_host or ":" in page_host:
                entry = (page_host, None, True)
            else:
                entry = (page_host, self.doc_by_host.get(registrable_domain(page_host)), False)
            if len(self.page_cache) >= self._CACHE_LIMIT:
                self.page_cache.clear()
            self.page_cache[page_url] = entry
        return entry


_NO_MATCH = MatchResult(decision=Decision.NONE)
_NO_CLASSIFICATION = Classification(blacklist_filter=None, whitelist_filter=None)


class ACTrieEngine(FilterEngine):
    """Drop-in :class:`FilterEngine` with an Aho–Corasick matcher core.

    Semantics (including which filter is reported on multi-match URLs)
    are identical to the bucket engine — only candidate discovery and
    confirmation change.  The compiled automaton is process-local,
    rebuilt lazily after any :meth:`add_filters` and never serialized:
    snapshots carry the portable bucket state and each process compiles
    its own tries on first use.
    """

    _TRANSIENT_STATE = ("_compiled",)

    def __init__(self, *, use_keyword_index: bool = True):
        super().__init__(use_keyword_index=use_keyword_index)
        self._compiled: _Compiled | None = None

    def add_filters(self, filters, list_name: str | None = None) -> None:  # type: ignore[override]
        super().add_filters(filters, list_name)
        self._compiled = None

    # -- compilation --------------------------------------------------

    def _compile(self) -> _Compiled:
        blocking_index = self._blocking
        exception_index = self._exceptions
        blocking = _CompiledIndex(
            blocking_index._by_host,  # noqa: SLF001 — same-package internals
            blocking_index._by_keyword,
            blocking_index._keywordless,
        )
        # Document exceptions get their own page-level pass; drop them
        # from the compiled request-exception index (the bucket engine
        # skips them inline at the same point).
        not_doc = lambda fs: [f for f in fs if not f.options.is_document_exception]  # noqa: E731
        exceptions = _CompiledIndex(
            {k: not_doc(b) for k, b in exception_index._by_host.items()},
            {k: not_doc(b) for k, b in exception_index._by_keyword.items()},
            not_doc(exception_index._keywordless),
        )

        keywords = set(blocking.by_keyword) | set(exceptions.by_keyword)
        finder: re.Pattern[str] | None = None
        if keywords:
            automaton = AhoCorasick(sorted(keywords))
            finder = re.compile(
                _TOKEN_BOUNDARY_BEFORE + "(?:" + automaton.to_regex() + ")" + _TOKEN_BOUNDARY_AFTER
            )

        doc_by_host: dict[str, list[tuple[int, Filter]]] = {}
        doc_rest: list[tuple[int, Filter]] = []
        doc_all: list[tuple[int, Filter]] = []
        for serial, filter_ in enumerate(self._document_exceptions):
            entry = (serial, filter_)
            doc_all.append(entry)
            key = _host_bucket_key(filter_.pattern)
            if key is not None:
                doc_by_host.setdefault(key, []).append(entry)
            else:
                doc_rest.append(entry)

        compiled = _Compiled(
            finder, blocking, exceptions, doc_by_host, doc_rest, doc_all, len(self._list_names)
        )
        self._compiled = compiled
        return compiled

    @staticmethod
    def _doc_merge(
        compiled: _Compiled,
        first: "list[tuple[int, Filter]] | None",
        second: "list[tuple[int, Filter]] | None",
    ) -> "list[tuple[int, Filter]] | tuple[()]":
        """Merge doc-exception buckets back into insertion (serial) order.

        The bucket engine consults ``_document_exceptions`` in add
        order, so multi-source candidates re-sort by serial before
        confirmation.  Identical bucket objects (request and page host
        sharing a registrable domain) collapse to one.
        """
        if second is first:
            second = None
        if first is None:
            merged = second
        elif second is None:
            merged = first
        else:
            merged = sorted(first + second)
        rest = compiled.doc_rest
        if rest:
            merged = rest if merged is None else sorted(merged + rest)
        return merged if merged is not None else ()

    # -- matching -----------------------------------------------------

    def match(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> MatchResult:
        if not self._use_index:
            return super().match(url, context, request_host=request_host)
        compiled = self._compiled or self._compile()
        page_url = context.page_url
        page_host, page_doc, page_opaque = compiled.page_cache.get(
            page_url
        ) or compiled.page_entry(page_url)
        if request_host is None:
            request_host = split_url(url).host

        if compiled.doc_all:
            if page_opaque:
                doc_candidates = compiled.doc_all
            else:
                doc_candidates = self._doc_merge(compiled, page_doc, None)
            for _serial, exception in doc_candidates:
                if exception.matches_document(page_url, page_host):
                    return MatchResult(
                        decision=Decision.WHITELIST,
                        blocking_filter=None,
                        exception_filter=exception,
                    )

        bl_host, ex_host, _req_doc, _req_opaque = compiled.host_cache.get(
            request_host
        ) or compiled.host_entry(request_host)
        url_lower = url.lower()
        findall = compiled.findall
        tokens = findall(url_lower) if findall is not None else []
        content_type = _ct_int(context.content_type)
        third_party: bool | None = None  # computed on first $third-party candidate

        blocking_hit: Filter | None = None
        for bucket in compiled.blocking.buckets_for(bl_host, tokens, url_lower):
            for mask, party, domain_opts, search, _list_name, filter_ in bucket:
                if not mask & content_type:
                    continue
                if party is not None:
                    if third_party is None:
                        third_party = (
                            is_third_party(request_host, page_host) if page_host else True
                        )
                    if party != third_party:
                        continue
                if domain_opts is not None and not domain_opts.applies_to_domain(page_host):
                    continue
                if search(url) is not None:
                    blocking_hit = filter_
                    break
            if blocking_hit is not None:
                break
        if blocking_hit is None:
            return _NO_MATCH

        if ex_host is None and not compiled.ex_keyed:
            return MatchResult(decision=Decision.BLOCK, blocking_filter=blocking_hit)
        for bucket in compiled.exceptions.buckets_for(ex_host, tokens, url_lower):
            for mask, party, domain_opts, search, _list_name, exception in bucket:
                if not mask & content_type:
                    continue
                if party is not None:
                    if third_party is None:
                        third_party = (
                            is_third_party(request_host, page_host) if page_host else True
                        )
                    if party != third_party:
                        continue
                if domain_opts is not None and not domain_opts.applies_to_domain(page_host):
                    continue
                if search(url) is not None:
                    return MatchResult(
                        decision=Decision.WHITELIST,
                        blocking_filter=blocking_hit,
                        exception_filter=exception,
                    )
        return MatchResult(decision=Decision.BLOCK, blocking_filter=blocking_hit)

    def classify(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> Classification:
        if not self._use_index:
            return super().classify(url, context, request_host=request_host)
        compiled = self._compiled or self._compile()
        page_url = context.page_url
        page_host, page_doc, page_opaque = compiled.page_cache.get(
            page_url
        ) or compiled.page_entry(page_url)
        if request_host is None:
            request_host = split_url(url).host
        bl_host, ex_host, req_doc, req_opaque = compiled.host_cache.get(
            request_host
        ) or compiled.host_entry(request_host)

        url_lower = url.lower()
        findall = compiled.findall
        tokens = findall(url_lower) if findall is not None else []
        content_type = _ct_int(context.content_type)
        third_party: bool | None = None  # computed on first $third-party candidate

        blacklist_hit: Filter | None = None
        hit_lists: list[str] = []
        total_lists = compiled.total_lists
        for bucket in compiled.blocking.buckets_for(bl_host, tokens, url_lower):
            for mask, party, domain_opts, search, list_name, filter_ in bucket:
                if list_name in hit_lists or not mask & content_type:
                    continue
                if party is not None:
                    if third_party is None:
                        third_party = (
                            is_third_party(request_host, page_host) if page_host else True
                        )
                    if party != third_party:
                        continue
                if domain_opts is not None and not domain_opts.applies_to_domain(page_host):
                    continue
                if search(url) is None:
                    continue
                if blacklist_hit is None:
                    blacklist_hit = filter_
                hit_lists.append(list_name)
            if len(hit_lists) == total_lists:
                break

        whitelist_hit: Filter | None = None
        if ex_host is not None or compiled.ex_keyed:
            for bucket in compiled.exceptions.buckets_for(ex_host, tokens, url_lower):
                for mask, party, domain_opts, search, _list_name, exception in bucket:
                    if not mask & content_type:
                        continue
                    if party is not None:
                        if third_party is None:
                            third_party = (
                                is_third_party(request_host, page_host) if page_host else True
                            )
                        if party != third_party:
                            continue
                    if domain_opts is not None and not domain_opts.applies_to_domain(page_host):
                        continue
                    if search(url) is not None:
                        whitelist_hit = exception
                        break
                if whitelist_hit is not None:
                    break
        if whitelist_hit is None and compiled.doc_all:
            if req_opaque or page_opaque:
                doc_candidates = compiled.doc_all
            else:
                doc_candidates = self._doc_merge(compiled, req_doc, page_doc)
            if doc_candidates:
                for _serial, exception in doc_candidates:
                    if exception.matches_document(url, request_host) or (
                        exception.matches_document(page_url, page_host)
                    ):
                        whitelist_hit = exception
                        break

        if blacklist_hit is None and whitelist_hit is None:
            return _NO_CLASSIFICATION
        return Classification(
            blacklist_filter=blacklist_hit,
            whitelist_filter=whitelist_hit,
            blacklist_lists=tuple(hit_lists),
        )
