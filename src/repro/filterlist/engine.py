"""Keyword-indexed filter matching engine.

This is the reproduction's replacement for ``libadblockplus``: given a
request URL plus the context the passive pipeline reconstructs (content
type, page host, third-party bit), it answers the classification the
paper needs (Fig 1): *is it a match, from which filter list, and is it
whitelisted*.

Matching strategy follows the ABP/adblock-rust matcher design:

1. each filter is indexed under one keyword — a literal substring that
   every matching URL must contain — chosen to keep index buckets
   small;
2. a URL is tokenized into candidate keywords; only filters indexed
   under those tokens (plus the keyword-less remainder) are tried;
3. exception filters are only consulted after some blocking filter
   matched, and ``$document`` page-level exceptions short-circuit
   everything.
"""

from __future__ import annotations

import hashlib
import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.filterlist.filter import Filter, FilterKind, compile_pattern, extract_keywords
from repro.filterlist.options import ContentType, FilterOptions
from repro.http.url import is_third_party, registrable_domain, split_url

__all__ = [
    "MatchResult",
    "Decision",
    "FilterEngine",
    "RequestContext",
    "Classification",
    "SNAPSHOT_STATE_VERSION",
    "fingerprint_of_filters",
]


@dataclass(frozen=True, slots=True)
class RequestContext:
    """Everything besides the URL that filter matching consumes.

    ``page_url`` is the URL of the page that (transitively) triggered
    the request — in the passive pipeline this comes from the referrer
    map; in the browser emulator it is exact.
    """

    content_type: ContentType
    page_url: str

    @property
    def page_host(self) -> str:
        return split_url(self.page_url).host


class Decision:
    """Tri-state classification outcome constants."""

    NONE = "none"
    BLOCK = "block"
    WHITELIST = "whitelist"


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of classifying one request (paper Fig 1's result box).

    Attributes:
        decision: :data:`Decision.BLOCK` when a blocking filter matched
            and no exception saved it; :data:`Decision.WHITELIST` when
            a blocking filter matched but an exception applies;
            :data:`Decision.NONE` otherwise.
        blocking_filter: the blacklist filter that matched, if any.
        exception_filter: the exception that rescued the request.
        list_name: list of the *blocking* filter (EasyList vs
            EasyPrivacy attribution in the paper).
        whitelist_name: list of the exception filter (the acceptable
            ads attribution).
    """

    decision: str
    blocking_filter: Filter | None = None
    exception_filter: Filter | None = None

    @property
    def is_ad(self) -> bool:
        """Paper's "ad request": blacklisted OR whitelisted (§6 fn 2)."""
        return self.decision != Decision.NONE

    @property
    def is_blocked(self) -> bool:
        return self.decision == Decision.BLOCK

    @property
    def is_whitelisted(self) -> bool:
        return self.decision == Decision.WHITELIST

    @property
    def list_name(self) -> str | None:
        return self.blocking_filter.list_name if self.blocking_filter else None

    @property
    def whitelist_name(self) -> str | None:
        return self.exception_filter.list_name if self.exception_filter else None


_URL_TOKEN = re.compile(r"[a-z0-9%]{3,}")


def tokenize_url(url: str) -> list[str]:
    """Candidate keywords contained in a URL (lower-cased)."""
    return _URL_TOKEN.findall(url.lower())


# ``||host^`` / ``||host/…`` patterns whose anchor is a plain hostname.
# The anchor must be immediately followed by ``^`` or ``/``: only then is
# every matching URL guaranteed to have the anchor as a host suffix, so
# the filter can be bucketed by registrable domain (see _host_bucket_key).
_HOST_ANCHOR = re.compile(r"^\|\|([a-z0-9\-]+(?:\.[a-z0-9\-]+)+)[/^]")


def _host_bucket_key(pattern: str) -> str | None:
    """Registrable-domain bucket for a ``||domain^``-style pattern.

    Returns ``None`` when the pattern cannot be soundly bucketed by the
    request host's registrable domain: no clean host anchor, or the
    anchor *is* (or sits inside) a public suffix, in which case hosts
    with different registrable domains can still match the filter
    (``||co.uk^`` matches every ``*.co.uk`` host).
    """
    match = _HOST_ANCHOR.match(pattern.lower())
    if match is None:
        return None
    anchor = match.group(1)
    domain = registrable_domain(anchor)
    if registrable_domain("x." + anchor) != domain:
        return None  # anchor is a public suffix or a single label
    return domain


# Doc-exception patterns whose outcome is a function of the page *host*
# alone: a hostname anchor with nothing after it but an optional ``^``.
# The domain-anchor regex confines such patterns to the netloc, and a
# host-char-only literal cannot distinguish two netlocs that share a
# host (ports are all-digit and colon-delimited), so page path/query
# never influence the match.
_HOST_ONLY_DOC = re.compile(r"^\|\|[a-z0-9.\-]+\^?$")


def _document_is_host_only(filter_: Filter) -> bool:
    if filter_.options.match_case:
        return False  # raw page URLs may differ from the split host in case
    return _HOST_ONLY_DOC.match(filter_.pattern.lower()) is not None


# Version of the engine's *state* wire form (the snapshot container in
# repro.filterlist.snapshot has its own header version; this one guards
# the pickled payload layout below it).
SNAPSHOT_STATE_VERSION = 1


def fingerprint_of_filters(groups: "Iterable[tuple[str, Iterable[Filter]]]") -> str:
    """The fingerprint an engine would carry after adding these groups.

    Replays the :meth:`FilterEngine.add_filters` hash chain (one batch
    per ``(list_name, filters)`` group, in order) without building any
    index — cheap enough to pin a snapshot's identity against freshly
    parsed lists before trusting it (DESIGN.md §15).
    """
    fingerprint = hashlib.sha256(b"repro.filterlist.engine").hexdigest()
    for list_name, filters in groups:
        hasher = hashlib.sha256(fingerprint.encode("ascii"))
        for filter_ in filters:
            hasher.update(filter_.text.encode("utf-8", "replace"))
            hasher.update(b"\x00")
            hasher.update((filter_.list_name or list_name).encode("utf-8", "replace"))
            hasher.update(b"\x00")
        fingerprint = hasher.hexdigest()
    return fingerprint


def _filter_to_wire(filter_: Filter) -> tuple:
    """Primitive, regex-free wire form of one compiled filter."""
    opts = filter_.options
    return (
        filter_.text,
        filter_.kind.value,
        filter_.pattern,
        filter_.list_name,
        (
            int(opts.type_mask),
            sorted(opts.domains_include),
            sorted(opts.domains_exclude),
            opts.third_party,
            opts.match_case,
            opts.elemhide_exception,
            opts.generic_hide,
            opts.collapse,
            tuple(opts.unknown_options),
            tuple(opts.conflicts),
        ),
    )


def _filter_from_wire(wire: tuple) -> Filter:
    """Rebuild a filter from its wire form, recompiling the regex.

    Reconstructs directly rather than via :meth:`Filter.parse` so the
    restored object is independent of parse-mode defaults: the snapshot
    records exactly the option set the original engine matched with.
    """
    text, kind_value, pattern, list_name, opt_wire = wire
    (
        type_mask,
        domains_include,
        domains_exclude,
        third_party,
        match_case,
        elemhide_exception,
        generic_hide,
        collapse,
        unknown_options,
        conflicts,
    ) = opt_wire
    options = FilterOptions(
        type_mask=ContentType(type_mask),
        domains_include=frozenset(domains_include),
        domains_exclude=frozenset(domains_exclude),
        third_party=third_party,
        match_case=match_case,
        elemhide_exception=elemhide_exception,
        generic_hide=generic_hide,
        collapse=collapse,
        unknown_options=tuple(unknown_options),
        conflicts=tuple(conflicts),
    )
    return Filter(
        text=text,
        kind=FilterKind(kind_value),
        pattern=pattern,
        regex=compile_pattern(pattern, match_case=match_case),
        options=options,
        list_name=list_name,
    )


class _FilterIndex:
    """Keyword index over one kind of filters (blocking or exception).

    Host-anchored filters (the bulk of EasyList-style lists) are kept in
    a dedicated registrable-domain bucket map: a ``||domain^`` filter can
    only ever match URLs whose host shares ``domain``'s registrable
    domain, so one dict lookup on the request host replaces both the
    keyword buckets and the keywordless linear tail for those filters.
    """

    def __init__(self) -> None:
        self._by_keyword: dict[str, list[Filter]] = defaultdict(list)
        self._by_host: dict[str, list[Filter]] = defaultdict(list)
        self._keywordless: list[Filter] = []
        self._count = 0

    def add(self, filter_: Filter, keyword_counts: dict[str, int]) -> None:
        self._count += 1
        host_key = _host_bucket_key(filter_.pattern)
        if host_key is not None:
            self._by_host[host_key].append(filter_)
            return
        keywords = extract_keywords(filter_.pattern)
        if not keywords:
            self._keywordless.append(filter_)
            return
        # Pick the keyword with the fewest filters indexed so far,
        # breaking ties towards longer (more selective) keywords.
        best = min(keywords, key=lambda k: (keyword_counts.get(k, 0), -len(k)))
        keyword_counts[best] = keyword_counts.get(best, 0) + 1
        self._by_keyword[best].append(filter_)

    def candidates(self, url_tokens: list[str], request_host: str = "") -> Iterable[Filter]:
        if self._by_host:
            if "@" in request_host or ":" in request_host:
                # Userinfo / non-numeric "port": the split host is not a
                # clean hostname, so the registrable-domain shortcut is
                # unsound — fall back to scanning every host bucket.
                for bucket in self._by_host.values():
                    yield from bucket
            else:
                bucket = self._by_host.get(registrable_domain(request_host))
                if bucket:
                    yield from bucket
        seen_buckets = set()
        for token in url_tokens:
            if token in self._by_keyword and token not in seen_buckets:
                seen_buckets.add(token)
                yield from self._by_keyword[token]
        yield from self._keywordless

    def all_filters(self) -> list[Filter]:
        filters: list[Filter] = []
        for bucket in self._by_host.values():
            filters.extend(bucket)
        filters.extend(self._keywordless)
        for bucket in self._by_keyword.values():
            filters.extend(bucket)
        return filters

    def __len__(self) -> int:
        return self._count

    def to_snapshot(self, ref: "Callable[[Filter], int]") -> dict:
        """Primitive wire form preserving the exact bucket layout.

        Bucket membership *and* iteration order decide which filter a
        multi-match reports, so the snapshot stores the index shape
        explicitly (as lists of table references) instead of letting the
        loader re-run keyword selection over a different history.
        """
        return {
            "by_host": [(key, [ref(f) for f in bucket]) for key, bucket in self._by_host.items()],
            "by_keyword": [
                (kw, [ref(f) for f in bucket]) for kw, bucket in self._by_keyword.items()
            ],
            "keywordless": [ref(f) for f in self._keywordless],
            "count": self._count,
        }

    @classmethod
    def from_snapshot(cls, data: dict, filters: list[Filter]) -> "_FilterIndex":
        index = cls()
        for key, bucket in data["by_host"]:
            index._by_host[key] = [filters[i] for i in bucket]
        for kw, bucket in data["by_keyword"]:
            index._by_keyword[kw] = [filters[i] for i in bucket]
        index._keywordless = [filters[i] for i in data["keywordless"]]
        index._count = data["count"]
        return index


class FilterEngine:
    """Multi-list filter matcher with ABP semantics.

    Lists are added in priority order only for attribution purposes —
    matching semantics do not depend on list order (any blocking match
    can be cancelled by any exception match, as in ABP where all
    subscriptions share one matcher).

    Args:
        use_keyword_index: disable to fall back to a linear scan over
            all filters — kept for the ablation benchmark.
    """

    def __init__(self, *, use_keyword_index: bool = True):
        self._use_index = use_keyword_index
        self._blocking = _FilterIndex()
        self._exceptions = _FilterIndex()
        self._document_exceptions: list[Filter] = []
        self._keyword_counts: dict[str, int] = {}
        self._list_names: list[str] = []
        self._fingerprint = hashlib.sha256(b"repro.filterlist.engine").hexdigest()
        self._page_sensitive_documents = False

    def add_filters(self, filters: Iterable[Filter], list_name: str | None = None) -> None:
        """Register filters; ``list_name`` overrides their attribution.

        The fingerprint rotates *before* the indexes mutate: if indexing
        a filter raises halfway through the batch, the engine is left
        with changed matching state but must never be left with the old
        fingerprint, or a warm :class:`~repro.filterlist.cache.DecisionCache`
        keyed on it would keep replaying decisions computed against the
        pre-mutation filter set (the stale-fingerprint window).
        """
        materialized = list(filters)
        hasher = hashlib.sha256(self._fingerprint.encode("ascii"))
        for filter_ in materialized:
            if list_name is not None and not filter_.list_name:
                filter_.list_name = list_name
            hasher.update(filter_.text.encode("utf-8", "replace"))
            hasher.update(b"\x00")
            hasher.update(filter_.list_name.encode("utf-8", "replace"))
            hasher.update(b"\x00")
        self._fingerprint = hasher.hexdigest()
        for filter_ in materialized:
            if filter_.is_exception:
                self._exceptions.add(filter_, self._keyword_counts)
                if filter_.options.is_document_exception:
                    self._document_exceptions.append(filter_)
                    if not _document_is_host_only(filter_):
                        self._page_sensitive_documents = True
            else:
                self._blocking.add(filter_, self._keyword_counts)
        if list_name is not None and list_name not in self._list_names:
            self._list_names.append(list_name)

    @property
    def list_names(self) -> list[str]:
        return list(self._list_names)

    @property
    def filter_count(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    def iter_filters(self) -> list[Filter]:
        """Every registered filter, in index-iteration order.

        Document exceptions live in both the exception index and the
        ``_document_exceptions`` fast path; they appear once here.
        """
        return self._blocking.all_filters() + self._exceptions.all_filters()

    @property
    def fingerprint(self) -> str:
        """Hash chained over every (filter text, attribution) ever added.

        Two engines with the same fingerprint produce identical
        classifications; a decision cache keyed on it can therefore
        never serve results computed against different filter state.
        """
        return self._fingerprint

    @property
    def document_matching_needs_page_url(self) -> bool:
        """Whether classification can depend on the page URL's *path*.

        ``$document`` exceptions are matched against the full page URL.
        For the common ``@@||host^$document`` shape the outcome is a
        function of the page host alone, so a decision cache may key on
        ``page_host``; any other doc-exception pattern forces the full
        page URL into the key.
        """
        return self._page_sensitive_documents

    def _candidates(
        self, index: _FilterIndex, tokens: list[str], request_host: str
    ) -> Iterable[Filter]:
        if self._use_index:
            return index.candidates(tokens, request_host)
        return index.all_filters()

    def match(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> MatchResult:
        """Classify one request.

        Implements ABP precedence: ``$document`` page exceptions first,
        then blocking filters, then request exceptions.  Callers that
        already split the URL pass ``request_host`` to skip the re-split.
        """
        page_host = context.page_host
        if request_host is None:
            request_host = split_url(url).host
        third_party = is_third_party(request_host, page_host) if page_host else True

        for exception in self._document_exceptions:
            if exception.matches_document(context.page_url, page_host):
                return MatchResult(
                    decision=Decision.WHITELIST,
                    blocking_filter=None,
                    exception_filter=exception,
                )

        tokens = tokenize_url(url)
        blocking_hit: Filter | None = None
        for filter_ in self._candidates(self._blocking, tokens, request_host):
            if filter_.matches(url, context.content_type, page_host, third_party=third_party):
                blocking_hit = filter_
                break
        if blocking_hit is None:
            return MatchResult(decision=Decision.NONE)

        for exception in self._candidates(self._exceptions, tokens, request_host):
            if exception.options.is_document_exception:
                continue  # handled above against the page URL
            if exception.matches(url, context.content_type, page_host, third_party=third_party):
                return MatchResult(
                    decision=Decision.WHITELIST,
                    blocking_filter=blocking_hit,
                    exception_filter=exception,
                )
        return MatchResult(decision=Decision.BLOCK, blocking_filter=blocking_hit)

    def should_block(self, url: str, context: RequestContext) -> bool:
        """Convenience wrapper: would ABP prevent this request?"""
        return self.match(url, context).is_blocked

    def classify(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> "Classification":
        """Offline classification used by the passive methodology.

        Unlike :meth:`match` (runtime ABP semantics), the paper's
        pipeline records blacklist and whitelist hits *independently*:
        §7.3 reports whitelisted requests that no blacklist rule would
        have blocked (42.7% of whitelist matches), which is only
        observable when exceptions are evaluated unconditionally.
        ``$document`` exceptions are additionally tested against the
        request URL itself — exactly how overly general rules like
        ``@@||gstatic.com^$document`` rack up request-level matches in
        the paper.
        """
        page_host = context.page_host
        if request_host is None:
            request_host = split_url(url).host
        third_party = is_third_party(request_host, page_host) if page_host else True
        tokens = tokenize_url(url)

        blacklist_hit: Filter | None = None
        hit_lists: list[str] = []
        for filter_ in self._candidates(self._blocking, tokens, request_host):
            if filter_.list_name in hit_lists:
                continue  # already know this list matches
            if filter_.matches(url, context.content_type, page_host, third_party=third_party):
                if blacklist_hit is None:
                    blacklist_hit = filter_
                hit_lists.append(filter_.list_name)
                if len(hit_lists) == len(self._list_names):
                    break

        whitelist_hit: Filter | None = None
        for exception in self._candidates(self._exceptions, tokens, request_host):
            if exception.options.is_document_exception:
                continue
            if exception.matches(url, context.content_type, page_host, third_party=third_party):
                whitelist_hit = exception
                break
        if whitelist_hit is None:
            for exception in self._document_exceptions:
                if exception.matches_document(url, request_host) or exception.matches_document(
                    context.page_url, page_host
                ):
                    whitelist_hit = exception
                    break

        return Classification(
            blacklist_filter=blacklist_hit,
            whitelist_filter=whitelist_hit,
            blacklist_lists=tuple(hit_lists),
        )

    def export_snapshot_state(self) -> dict:
        """Picklable primitive form of the full matcher state.

        The filter table is deduplicated by object identity so document
        exceptions (which appear both in the exception index and the
        ``_document_exceptions`` fast path) restore as one shared object,
        preserving the original aliasing.
        """
        table: list[Filter] = []
        ids: dict[int, int] = {}

        def ref(filter_: Filter) -> int:
            key = id(filter_)
            if key not in ids:
                ids[key] = len(table)
                table.append(filter_)
            return ids[key]

        blocking = self._blocking.to_snapshot(ref)
        exceptions = self._exceptions.to_snapshot(ref)
        document_exceptions = [ref(f) for f in self._document_exceptions]
        return {
            "state_version": SNAPSHOT_STATE_VERSION,
            "fingerprint": self._fingerprint,
            "use_index": self._use_index,
            "list_names": list(self._list_names),
            "page_sensitive_documents": self._page_sensitive_documents,
            "keyword_counts": sorted(self._keyword_counts.items()),
            "filters": [_filter_to_wire(f) for f in table],
            "blocking": blocking,
            "exceptions": exceptions,
            "document_exceptions": document_exceptions,
        }

    @classmethod
    def restore_snapshot_state(cls, state: dict) -> "FilterEngine":
        """Rebuild an engine from :meth:`export_snapshot_state` output.

        A classmethod so subclasses (the actrie engine) restore as their
        own type.  ``_keyword_counts`` is restored too: filters added
        *after* a snapshot load must land in the same buckets they would
        have landed in had the whole history run in one process, or the
        restored engine and a from-scratch engine could report different
        filters for multi-match URLs.
        """
        version = state.get("state_version")
        if version != SNAPSHOT_STATE_VERSION:
            raise ValueError(
                f"unsupported engine snapshot state version {version!r} "
                f"(expected {SNAPSHOT_STATE_VERSION})"
            )
        engine = cls(use_keyword_index=state["use_index"])
        filters = [_filter_from_wire(wire) for wire in state["filters"]]
        engine._blocking = _FilterIndex.from_snapshot(state["blocking"], filters)
        engine._exceptions = _FilterIndex.from_snapshot(state["exceptions"], filters)
        engine._document_exceptions = [filters[i] for i in state["document_exceptions"]]
        engine._keyword_counts = dict(state["keyword_counts"])
        engine._list_names = list(state["list_names"])
        engine._fingerprint = state["fingerprint"]
        engine._page_sensitive_documents = state["page_sensitive_documents"]
        return engine


@dataclass(frozen=True, slots=True)
class Classification:
    """Offline classification record (paper Fig 1 result box).

    ``is a match`` -> :attr:`is_ad`; ``which filter list`` ->
    :attr:`blacklist_name`; ``is whitelisted`` -> :attr:`is_whitelisted`.
    ``blacklist_lists`` carries *every* list with a blocking match —
    §7.3 needs to know that a whitelisted request would also have been
    filtered by EasyPrivacy, even when EasyList matched first.
    """

    blacklist_filter: Filter | None
    whitelist_filter: Filter | None
    blacklist_lists: tuple[str, ...] = ()

    @property
    def is_ad(self) -> bool:
        """Paper's "ad request": any blacklist or whitelist hit (§6 fn 2)."""
        return self.blacklist_filter is not None or self.whitelist_filter is not None

    @property
    def is_blacklisted(self) -> bool:
        return self.blacklist_filter is not None

    @property
    def is_whitelisted(self) -> bool:
        return self.whitelist_filter is not None

    @property
    def would_block(self) -> bool:
        """Runtime outcome: blocked unless an exception rescues it."""
        return self.blacklist_filter is not None and self.whitelist_filter is None

    @property
    def blacklist_name(self) -> str | None:
        return self.blacklist_filter.list_name if self.blacklist_filter else None

    @property
    def whitelist_name(self) -> str | None:
        return self.whitelist_filter.list_name if self.whitelist_filter else None
