"""Combined-regex matcher: an alternative engine backend.

Early ad-blockers (and some HTTP proxies) compiled all patterns into
one giant alternation regex instead of keyword-indexing individual
filters.  This backend implements that design for comparison:

* **pre-filter**: one combined regex per filter list answers "does ANY
  pattern of this list occur in the URL?" in a single scan;
* filters with context options (types, ``$domain=``, third-party)
  still need individual confirmation, so the combined pass is used as
  a *negative* filter — URLs that cannot match anything are rejected
  in one regex execution, which is the common case.

Semantics are identical to :class:`~repro.filterlist.engine.FilterEngine`
(property-tested); the trade-off is build time and per-hit cost versus
the keyword index.

**ReDoS guard (FL006, DESIGN.md §9.3).** One catastrophic-backtracking
fragment spliced into the alternation would stall *every* URL
classification.  With ``redos_guard`` on (the default), every fragment
is statically pre-screened before it reaches the combined regex;
hazardous fragments are left out of the alternation and the engine
falls back to full per-filter confirmation whenever such filters exist
— slower, but never wrong and never pathological in the combined scan.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.filterlist.engine import Classification, FilterEngine, MatchResult, RequestContext
from repro.filterlist.filter import Filter
from repro.staticcheck.redos import scan_pattern_source

__all__ = ["CombinedRegexEngine", "CombinedAlternation"]


def _pattern_regex_source(filter_: Filter) -> str:
    """The already-compiled single-filter regex, as a source fragment."""
    return f"(?:{filter_.regex.pattern})"


# Bounds per compiled sub-pattern.  CPython's sre compiler has internal
# limits (code-size overflow, 100-group caps for some constructs) that a
# single 50k+-fragment alternation can trip; chunking keeps every
# individual compile comfortably small while a scan stays O(#chunks).
_MAX_CHUNK_FRAGMENTS = 1024
_MAX_CHUNK_CHARS = 262144


class CombinedAlternation:
    """An alternation over many fragments, compiled in bounded chunks.

    Semantically equivalent to ``re.compile("|".join(sources))`` but
    never hands the :mod:`re` compiler more than
    ``_MAX_CHUNK_FRAGMENTS`` fragments (or ``_MAX_CHUNK_CHARS`` of
    source) at once, so pathological list sizes cannot hit the sre
    compiler's internal limits.
    """

    def __init__(self, sources: list[str], flags: int = re.IGNORECASE) -> None:
        self._patterns: list[re.Pattern[str]] = []
        chunk: list[str] = []
        chunk_chars = 0
        for source in sources:
            if chunk and (
                len(chunk) >= _MAX_CHUNK_FRAGMENTS
                or chunk_chars + len(source) > _MAX_CHUNK_CHARS
            ):
                self._patterns.append(re.compile("|".join(chunk), flags))
                chunk, chunk_chars = [], 0
            chunk.append(source)
            chunk_chars += len(source) + 1
        if chunk:
            self._patterns.append(re.compile("|".join(chunk), flags))

    @property
    def chunk_count(self) -> int:
        return len(self._patterns)

    def search(self, text: str) -> re.Match[str] | None:
        """First match in fragment order across all chunks, or None."""
        for pattern in self._patterns:
            match = pattern.search(text)
            if match is not None:
                return match
        return None


class CombinedRegexEngine:
    """Drop-in matcher using combined-alternation pre-filtering.

    Wraps a linear-scan :class:`FilterEngine` for the confirmation
    step; the combined regexes reject non-matching URLs first.

    Args:
        redos_guard: statically screen each pattern fragment (FL006)
            before splicing it into the combined alternation.
    """

    def __init__(self, *, redos_guard: bool = True) -> None:
        # The confirmation engine uses the keyword index so every
        # matcher backend reports the *same* filter on multi-match URLs
        # (the differential harness asserts identity, not just equal
        # decisions); the combined pass only pre-rejects misses.
        self._inner = FilterEngine(use_keyword_index=True)
        self._redos_guard = redos_guard
        self._blocking_sources: list[str] = []
        self._exception_sources: list[str] = []
        self._blocking_combined: CombinedAlternation | None = None
        self._exception_combined: CombinedAlternation | None = None
        # Filters whose fragment was quarantined from the alternation;
        # while present, the negative pre-filter cannot prove a miss.
        self._hazardous_blocking: list[Filter] = []
        self._hazardous_exceptions: list[Filter] = []

    @classmethod
    def from_inner(cls, inner: FilterEngine, *, redos_guard: bool = True) -> "CombinedRegexEngine":
        """Wrap an already-built engine (e.g. restored from a snapshot).

        The alternation sources are rebuilt from the inner engine's
        filter tables; source *order* only shapes the negative
        pre-filter, never a decision, so index-iteration order is fine.
        """
        engine = cls(redos_guard=redos_guard)
        engine._inner = inner
        engine._register_sources(inner.iter_filters())
        return engine

    def add_filters(self, filters: Iterable[Filter], list_name: str | None = None) -> None:
        materialized = list(filters)
        self._inner.add_filters(materialized, list_name=list_name)
        self._register_sources(materialized)

    def _register_sources(self, filters: Iterable[Filter]) -> None:
        for filter_ in filters:
            source = _pattern_regex_source(filter_)
            hazardous = (
                self._redos_guard and scan_pattern_source(filter_.regex.pattern) is not None
            )
            if filter_.is_exception:
                if hazardous:
                    self._hazardous_exceptions.append(filter_)
                else:
                    self._exception_sources.append(source)
            else:
                if hazardous:
                    self._hazardous_blocking.append(filter_)
                else:
                    self._blocking_sources.append(source)
        self._blocking_combined = None  # rebuild lazily
        self._exception_combined = None

    @property
    def hazardous_filters(self) -> list[Filter]:
        """Filters excluded from the alternation by the ReDoS guard."""
        return [*self._hazardous_blocking, *self._hazardous_exceptions]

    def _combined(self, sources: list[str]) -> CombinedAlternation | None:
        if not sources:
            return None
        return CombinedAlternation(sources)

    @property
    def filter_count(self) -> int:
        return self._inner.filter_count

    def iter_filters(self) -> list[Filter]:
        return self._inner.iter_filters()

    @property
    def list_names(self) -> list[str]:
        return self._inner.list_names

    @property
    def fingerprint(self) -> str:
        """Delegates to the inner engine so a decision cache composes."""
        return self._inner.fingerprint

    @property
    def document_matching_needs_page_url(self) -> bool:
        return self._inner.document_matching_needs_page_url

    def _ensure_built(self) -> None:
        if self._blocking_combined is None and self._blocking_sources:
            self._blocking_combined = self._combined(self._blocking_sources)
        if self._exception_combined is None and self._exception_sources:
            self._exception_combined = self._combined(self._exception_sources)

    def match(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> MatchResult:
        self._ensure_built()
        if self._hazardous_blocking or self._hazardous_exceptions:
            # Quarantined fragments are absent from the alternation, so
            # a combined miss proves nothing — confirm individually.
            return self._inner.match(url, context, request_host=request_host)
        if (
            self._blocking_combined is not None
            and self._blocking_combined.search(url) is None
        ):
            # Nothing can block this URL; exceptions alone never block,
            # and $document page whitelisting needs no blocking hit —
            # delegate those rare cases.
            if self._exception_combined is None or (
                self._exception_combined.search(context.page_url) is None
            ):
                return MatchResult(decision="none")
        return self._inner.match(url, context, request_host=request_host)

    def classify(
        self, url: str, context: RequestContext, *, request_host: str | None = None
    ) -> Classification:
        self._ensure_built()
        if self._hazardous_blocking or self._hazardous_exceptions:
            return self._inner.classify(url, context, request_host=request_host)
        blocking_possible = (
            self._blocking_combined is not None
            and self._blocking_combined.search(url) is not None
        )
        exception_possible = self._exception_combined is not None and (
            self._exception_combined.search(url) is not None
            or self._exception_combined.search(context.page_url) is not None
        )
        if not blocking_possible and not exception_possible:
            return Classification(blacklist_filter=None, whitelist_filter=None)
        return self._inner.classify(url, context, request_host=request_host)

    def should_block(self, url: str, context: RequestContext) -> bool:
        return self.match(url, context).is_blocked
