"""Filter-list evolution: version drift and stale-list effects.

EasyList changes daily — rules are added for new ad placements and
removed when sites die or complain (the paper's §1 notes advertisers
pressuring list maintainers for removal).  The paper classified an
August trace with lists fetched around capture time; a *stale* list
misses newer ad URLs and keeps dead rules.

:func:`evolve` produces a derived list version with controlled churn;
the ablation bench measures how classification recall decays with list
age — a reproducibility caveat the paper could not quantify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.filterlist.filter import Filter
from repro.filterlist.lists import FilterList

__all__ = ["ChurnRates", "evolve", "staleness_series"]


@dataclass(frozen=True, slots=True)
class ChurnRates:
    """Per-step churn fractions (one step ~ one list release).

    Defaults approximate EasyList's public commit activity around
    2015: a few percent of rules touched per week.
    """

    removed: float = 0.02  # share of rules dropped per step
    added: float = 0.03  # share of new rules (relative to size) per step
    rewritten: float = 0.01  # share of rules whose pattern is adjusted


def _synthetic_rule(rng: random.Random, index: int) -> str:
    """A plausible new blocking rule for a not-yet-seen ad placement."""
    style = rng.randrange(4)
    token = f"newad{index:04d}"
    if style == 0:
        return f"||{token}-serving.com^$third-party"
    if style == 1:
        return f"/{token}/banner/*$image"
    if style == 2:
        return f"&{token}_id="
    return f"/{token}.js$script"


def evolve(
    filter_list: FilterList,
    *,
    steps: int = 1,
    rates: ChurnRates | None = None,
    seed: int = 20150811,
) -> FilterList:
    """Produce the list as it would look ``steps`` releases later.

    Deterministic in (list content, steps, seed).  Exception filters
    are preserved preferentially — whitelist entries are contractual
    (the acceptable-ads programme) and churn far less.
    """
    rates = rates or ChurnRates()
    rng = random.Random(f"{seed}:{filter_list.name}:{steps}")
    filters = list(filter_list.filters)
    added_counter = 0

    for _step in range(steps):
        blocking = [f for f in filters if not f.is_exception]
        exceptions = [f for f in filters if f.is_exception]

        n_remove = int(len(blocking) * rates.removed)
        if n_remove:
            removed_indices = set(rng.sample(range(len(blocking)), n_remove))
            blocking = [f for i, f in enumerate(blocking) if i not in removed_indices]

        n_rewrite = int(len(blocking) * rates.rewritten)
        for _ in range(n_rewrite):
            index = rng.randrange(len(blocking))
            original = blocking[index]
            # Pattern tightening: append a separator anchor.
            new_text = original.text
            if not new_text.endswith("^") and "$" not in new_text:
                new_text += "^"
            try:
                blocking[index] = Filter.parse(new_text, list_name=filter_list.name)
            except ValueError:
                pass  # keep the original on a bad rewrite

        n_add = int((len(blocking) + len(exceptions)) * rates.added)
        for _ in range(max(1, n_add)):
            added_counter += 1
            blocking.append(
                Filter.parse(_synthetic_rule(rng, added_counter), list_name=filter_list.name)
            )
        filters = blocking + exceptions

    version = f"{filter_list.version}+{steps}"
    return FilterList(
        name=filter_list.name,
        filters=filters,
        hiding_rules=list(filter_list.hiding_rules),
        version=version,
        expires_seconds=filter_list.expires_seconds,
    )


def staleness_series(
    filter_list: FilterList, *, max_steps: int = 10, seed: int = 20150811
) -> list[tuple[int, FilterList]]:
    """The list at ages 0..max_steps (cumulative evolution)."""
    series = [(0, filter_list)]
    for steps in range(1, max_steps + 1):
        series.append((steps, evolve(filter_list, steps=steps, seed=seed)))
    return series
