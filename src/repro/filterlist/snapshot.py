"""Precompiled engine snapshots: compile once, deserialize in milliseconds.

Cold-start pays full list parse + regex compile + index build in every
process — for the RBN-scale list sets that is seconds per worker, and
`repro serve` pays it again on every hot reload.  ``repro compile-lists``
freezes a loaded :class:`~repro.filterlist.engine.FilterEngine` (filter
table, keyword buckets, hostname index, option tables, fingerprint) into
a single on-disk artifact that any later process restores without
re-parsing anything (DESIGN.md §15).

The framing is deliberately paranoid, mirroring the checkpoint format
(:mod:`repro.robustness.checkpoint`): magic, container version, payload
length and a SHA-256 digest precede the pickled payload, so truncated or
bit-flipped files are *detected* — :class:`SnapshotCorrupt` — rather
than deserialized into a silently different matcher.  Identity is pinned
twice:

* the **engine fingerprint** inside the payload is the same chained
  SHA-256 the run-manifest machinery records (DESIGN.md §8), so a
  snapshot compiled from different list content than a manifest expects
  is refused with :class:`SnapshotFingerprintMismatch` (exit 4, like
  any other manifest identity violation);
* the **payload digest** in the header covers the serialized bytes, so
  storage-level damage is distinguished from identity drift.

Snapshots are *matcher-agnostic*: the payload stores the exact bucket
layout, not matcher machinery, so one artifact restores as the classic
bucketed engine, the Aho–Corasick engine, or the combined-regex engine
(``load_snapshot(..., matcher=...)``) — all decision-identical by the
differential harness (``tests/test_engine_differential.py``).
"""

from __future__ import annotations

import hashlib
import mmap
import pickle
import struct
from dataclasses import dataclass

from repro.filterlist.actrie import ACTrieEngine
from repro.filterlist.combined import CombinedRegexEngine
from repro.filterlist.engine import SNAPSHOT_STATE_VERSION, FilterEngine
from repro.robustness.atomic import atomic_writer

__all__ = [
    "MATCHERS",
    "SNAPSHOT_VERSION",
    "LoadedSnapshot",
    "SnapshotCorrupt",
    "SnapshotError",
    "SnapshotFingerprintMismatch",
    "SnapshotInfo",
    "SnapshotVersionError",
    "build_engine",
    "inspect_snapshot",
    "load_snapshot",
    "write_snapshot",
]

SNAPSHOT_VERSION = 1

#: Selectable matcher backends (``--matcher``).  ``buckets`` is the
#: classic keyword/host-bucket engine, ``actrie`` adds the Aho–Corasick
#: token prefilter, ``combined`` the chunked-alternation prefilter.
MATCHERS = ("buckets", "actrie", "combined")

_MAGIC = b"RPROSNAP"
_HEADER = struct.Struct("<8sIQ32s")  # magic, version, payload length, sha256


class SnapshotError(Exception):
    """Base class for snapshot validation failures."""


class SnapshotCorrupt(SnapshotError):
    """The file is torn, truncated, bit-flipped, or not a snapshot."""


class SnapshotVersionError(SnapshotError):
    """Container or engine-state version is not one this build reads."""


class SnapshotFingerprintMismatch(SnapshotError):
    """The snapshot was compiled from different list content.

    Raised when the caller pins an expected engine fingerprint (from a
    run manifest or freshly-hashed list files) and the snapshot's does
    not match — the snapshot is *valid*, just not the one this run is
    allowed to use.
    """

    def __init__(self, expected: str, actual: str) -> None:
        super().__init__(
            f"snapshot engine fingerprint {actual[:12]}… does not match "
            f"expected {expected[:12]}…"
        )
        self.expected = expected
        self.actual = actual


@dataclass(frozen=True, slots=True)
class SnapshotInfo:
    """Validated snapshot metadata (no engine restored yet)."""

    version: int
    state_version: int
    fingerprint: str
    lists_fingerprint: str | None
    source: str
    filter_count: int
    list_names: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class LoadedSnapshot:
    """A restored engine plus the provenance it was pinned to."""

    engine: FilterEngine | CombinedRegexEngine
    info: SnapshotInfo


def write_snapshot(
    path: str,
    engine: FilterEngine,
    *,
    lists_fingerprint: str | None = None,
    source: str = "",
) -> SnapshotInfo:
    """Compile ``engine`` to a checksummed snapshot at ``path``.

    ``lists_fingerprint`` records the raw-list-file identity (as hashed
    by the run manifest) alongside the engine fingerprint; ``source`` is
    a human-readable provenance note (list paths or ecosystem seed).
    The write is atomic (temp + fsync + rename) and byte-deterministic
    for identical engine state, so re-compiling unchanged lists yields
    an identical artifact.
    """
    state = engine.export_snapshot_state()
    payload = {
        "state": state,
        "lists_fingerprint": lists_fingerprint,
        "source": source,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, SNAPSHOT_VERSION, len(blob), hashlib.sha256(blob).digest())
    with atomic_writer(path, mode="wb") as stream:
        stream.write(header)
        stream.write(blob)
    return _info_from_payload(payload)


def _info_from_payload(payload: dict) -> SnapshotInfo:
    state = payload["state"]
    return SnapshotInfo(
        version=SNAPSHOT_VERSION,
        state_version=state["state_version"],
        fingerprint=state["fingerprint"],
        lists_fingerprint=payload.get("lists_fingerprint"),
        source=payload.get("source", ""),
        filter_count=len(state["filters"]),
        list_names=tuple(state["list_names"]),
    )


def _read_payload(path: str, *, use_mmap: bool = True) -> dict:
    """Read and validate the framing; raises :class:`SnapshotError`.

    The file is mapped read-only (zero-copy restore, PR 9's leftover):
    header fields are unpacked in place, the digest is computed over a
    ``memoryview`` of the mapping, and ``pickle.loads`` consumes the
    same view — the payload bytes are never copied into an intermediate
    ``bytes`` object.  ``use_mmap=False`` forces the plain ``read()``
    path (empty or pseudo files, and the A/B leg in
    ``benchmarks/bench_ingest.py``).
    """
    try:
        stream = open(path, "rb")  # staticcheck: ok[RC001] read-only mmap source
    except FileNotFoundError:
        raise  # missing input, not damage — callers map it to exit 2
    except OSError as exc:
        raise SnapshotCorrupt(f"{path}: {exc}") from None
    mapped: mmap.mmap | None = None
    data: bytes | mmap.mmap
    try:
        if use_mmap:
            try:
                mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
                data = mapped
            except (ValueError, OSError):  # empty / unmappable file: fall back to a copy
                stream.seek(0)
                data = stream.read()
        else:
            data = stream.read()
        return _validate_payload(path, data)
    finally:
        if mapped is not None:
            mapped.close()
        stream.close()


def _validate_payload(path: str, data: bytes | mmap.mmap) -> dict:
    if len(data) < _HEADER.size:
        raise SnapshotCorrupt(f"{path}: truncated header ({len(data)} bytes)")
    magic, version, length, digest = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SnapshotCorrupt(f"{path}: bad magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{path}: unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
        )
    blob = memoryview(data)[_HEADER.size :]
    try:
        if len(blob) != length:
            raise SnapshotCorrupt(f"{path}: torn payload ({len(blob)}/{length} bytes)")
        if hashlib.sha256(blob).digest() != digest:
            raise SnapshotCorrupt(f"{path}: checksum mismatch")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # pickle raises a zoo of types; staticcheck: ok[RC002] rethrown as SnapshotCorrupt
            raise SnapshotCorrupt(f"{path}: undecodable payload: {exc}") from None
    finally:
        # Release the view before the caller closes the mapping —
        # mmap.close() raises BufferError while views are outstanding.
        blob.release()
    if not isinstance(payload, dict) or "state" not in payload:
        raise SnapshotCorrupt(f"{path}: unexpected payload shape")
    state = payload["state"]
    if state.get("state_version") != SNAPSHOT_STATE_VERSION:
        raise SnapshotVersionError(
            f"{path}: engine state version {state.get('state_version')!r} "
            f"(expected {SNAPSHOT_STATE_VERSION})"
        )
    return payload


def inspect_snapshot(path: str) -> SnapshotInfo:
    """Validate framing and return metadata without restoring an engine."""
    return _info_from_payload(_read_payload(path))


def build_engine(state: dict, matcher: str) -> FilterEngine | CombinedRegexEngine:
    """Restore exported engine state as the requested matcher backend."""
    if matcher == "buckets":
        return FilterEngine.restore_snapshot_state(state)
    if matcher == "actrie":
        return ACTrieEngine.restore_snapshot_state(state)
    if matcher == "combined":
        return CombinedRegexEngine.from_inner(FilterEngine.restore_snapshot_state(state))
    raise ValueError(f"unknown matcher {matcher!r} (expected one of {', '.join(MATCHERS)})")


def load_snapshot(
    path: str,
    *,
    matcher: str = "buckets",
    expected_fingerprint: str | None = None,
    use_mmap: bool = True,
) -> LoadedSnapshot:
    """Restore an engine from ``path``; raises :class:`SnapshotError`.

    ``expected_fingerprint`` pins identity: pass the engine fingerprint
    a run manifest recorded (or one freshly computed from list files) to
    refuse a stale or wrong snapshot *before* any decision is made.
    ``use_mmap=False`` opts out of the zero-copy restore path.
    """
    payload = _read_payload(path, use_mmap=use_mmap)
    state = payload["state"]
    if expected_fingerprint is not None and state["fingerprint"] != expected_fingerprint:
        raise SnapshotFingerprintMismatch(expected_fingerprint, state["fingerprint"])
    return LoadedSnapshot(engine=build_engine(state, matcher), info=_info_from_payload(payload))
