"""Filter-list subscriptions and the ABP update model.

Adblock Plus fetches its subscribed lists from the project's download
servers over HTTPS and re-fetches them when they soft-expire (EasyList
after 4 days, EasyPrivacy after 1 day — §3.2).  This download traffic
is the paper's second ad-blocker indicator, so the subscription model
matters for the trace generator: every simulated ABP install produces
realistic HTTPS connections to the filter servers on browser bootstrap
and on expiry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filterlist.engine import FilterEngine
from repro.filterlist.filter import ElementHidingRule, Filter
from repro.filterlist.parser import ParsedList, parse_list_text

__all__ = [
    "EASYLIST",
    "EASYPRIVACY",
    "ACCEPTABLE_ADS",
    "FilterList",
    "LintRefusedError",
    "Subscription",
    "SubscriptionSet",
    "DEFAULT_EXPIRES",
]


class LintRefusedError(ValueError):
    """Raised by ``FilterList.from_text(..., lint="refuse")`` when the
    list contains rules with error-severity lint findings."""

    def __init__(self, name: str, diagnostics: list) -> None:
        self.diagnostics = diagnostics
        preview = "; ".join(
            f"{diag.code} [{diag.subject or diag.message}]" for diag in diagnostics[:3]
        )
        more = f" (+{len(diagnostics) - 3} more)" if len(diagnostics) > 3 else ""
        super().__init__(
            f"filter list {name!r} refused by lint: {preview}{more}"
        )

# Canonical list names used for attribution throughout the repo.
EASYLIST = "easylist"
EASYPRIVACY = "easyprivacy"
ACCEPTABLE_ADS = "acceptable_ads"

# Soft-expiry intervals in seconds, per the paper (§3.2).
DEFAULT_EXPIRES: dict[str, float] = {
    EASYLIST: 4 * 86400.0,
    EASYPRIVACY: 1 * 86400.0,
    ACCEPTABLE_ADS: 4 * 86400.0,
}


@dataclass(slots=True)
class FilterList:
    """A named, versioned filter list."""

    name: str
    filters: list[Filter] = field(default_factory=list)
    hiding_rules: list[ElementHidingRule] = field(default_factory=list)
    version: str = "1"
    expires_seconds: float = 4 * 86400.0
    # Rules removed at load time by lint="quarantine" (DESIGN.md §9.4).
    quarantined_rules: list[Filter] = field(default_factory=list)

    @classmethod
    def from_text(cls, text: str, name: str, *, lint: str = "off") -> "FilterList":
        """Parse a list, optionally gating hazardous rules at load time.

        ``lint`` is the load policy for rules with *error*-severity
        lint findings (FL001/FL003/FL006/FL008 — see DESIGN.md §9.4):

        * ``"off"`` (default): keep every parseable rule, as before;
        * ``"refuse"``: raise :class:`LintRefusedError` naming the
          offending rules — for curated lists that must be clean;
        * ``"quarantine"``: drop flagged rules into
          :attr:`quarantined_rules` and load the rest.
        """
        if lint not in ("off", "refuse", "quarantine"):
            raise ValueError(f"unknown lint policy {lint!r}")
        parsed: ParsedList = parse_list_text(text, name=name)
        expires = parsed.expires_seconds or DEFAULT_EXPIRES.get(name, 4 * 86400.0)
        filters = parsed.filters
        quarantined: list[Filter] = []
        if lint != "off":
            # Local import: staticcheck depends on filterlist parsing,
            # so importing it at module scope would be circular.
            from repro.staticcheck.diagnostics import Severity
            from repro.staticcheck.filterlint import rule_local_diagnostics

            kept: list[Filter] = []
            findings = []
            for filter_ in filters:
                errors = [
                    diag
                    for diag in rule_local_diagnostics(filter_, source=name, line=0)
                    if diag.severity >= Severity.ERROR
                ]
                if errors:
                    findings.extend(errors)
                    quarantined.append(filter_)
                else:
                    kept.append(filter_)
            if findings and lint == "refuse":
                raise LintRefusedError(name, findings)
            filters = kept
        return cls(
            name=name,
            filters=filters,
            hiding_rules=parsed.hiding_rules,
            version=parsed.metadata.get("version", "1"),
            expires_seconds=expires,
            quarantined_rules=quarantined,
        )

    def to_text(self) -> str:
        """Serialize back to EasyList file format."""
        lines = [
            "[Adblock Plus 2.0]",
            f"! Title: {self.name}",
            f"! Version: {self.version}",
            f"! Expires: {int(self.expires_seconds // 86400) or 1} days",
        ]
        lines.extend(filter_.text for filter_ in self.filters)
        lines.extend(rule.text for rule in self.hiding_rules)
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.filters) + len(self.hiding_rules)


@dataclass(slots=True)
class Subscription:
    """One installed subscription with its refresh clock."""

    filter_list: FilterList
    last_fetch: float = float("-inf")

    def due(self, now: float) -> bool:
        return now - self.last_fetch >= self.filter_list.expires_seconds

    def mark_fetched(self, now: float) -> None:
        self.last_fetch = now


class SubscriptionSet:
    """The set of lists one ABP install subscribes to.

    A fresh install subscribes to EasyList plus the acceptable-ads
    whitelist (§2); users may add EasyPrivacy or opt out of acceptable
    ads.  :meth:`build_engine` materializes the matcher ABP would run.
    """

    def __init__(self, lists: list[FilterList]):
        self._subscriptions = {lst.name: Subscription(lst) for lst in lists}

    @property
    def names(self) -> list[str]:
        return list(self._subscriptions)

    def get(self, name: str) -> Subscription | None:
        return self._subscriptions.get(name)

    def add(self, filter_list: FilterList) -> None:
        self._subscriptions[filter_list.name] = Subscription(filter_list)

    def remove(self, name: str) -> None:
        self._subscriptions.pop(name, None)

    def due_updates(self, now: float) -> list[Subscription]:
        """Subscriptions whose soft expiry passed — each triggers one
        HTTPS download to the filter servers."""
        return [sub for sub in self._subscriptions.values() if sub.due(now)]

    def build_engine(self, **engine_kwargs: bool) -> FilterEngine:
        engine = FilterEngine(**engine_kwargs)
        for subscription in self._subscriptions.values():
            lst = subscription.filter_list
            engine.add_filters(lst.filters, list_name=lst.name)
        return engine
