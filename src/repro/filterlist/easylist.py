"""Synthetic EasyList / EasyPrivacy / acceptable-ads generators.

The real lists are large, constantly changing and fetched from the
network; the reproduction instead *synthesizes* lists that target the
synthetic web ecosystem while mirroring the structural make-up of the
real ones:

* ``||addomain^`` domain-anchor blocking rules for ad-tech hosts,
* generic path/query patterns (``/adserver/``, ``&banner_id=`` ...)
  with content-type and ``third-party`` options,
* ``$domain=`` scoped rules and per-publisher exceptions,
* element-hiding rules for in-HTML text ads,
* an acceptable-ads whitelist made of ``@@`` exceptions — including
  the paper's observed anomaly of overly general ``$document`` rules
  that whitelist an entire infrastructure domain (§7.3's
  ``gstatic.com`` example),
* EasyPrivacy rules for tracker beacons.

All generators are deterministic given the spec, so traces and lists
always agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filterlist.filter import Filter
from repro.filterlist.lists import (
    ACCEPTABLE_ADS,
    DEFAULT_EXPIRES,
    EASYLIST,
    EASYPRIVACY,
    FilterList,
)
from repro.filterlist.parser import parse_list_text

__all__ = [
    "ListSynthesisSpec",
    "GENERIC_AD_PATTERNS",
    "GENERIC_TRACKER_PATTERNS",
    "synthesize_easylist",
    "synthesize_easyprivacy",
    "synthesize_acceptable_ads",
    "synthesize_language_derivative",
    "build_lists",
]

# Generic pattern rules in the style real lists use.  These are written
# for this reproduction and match the synthetic ecosystem's URL shapes.
GENERIC_AD_PATTERNS: tuple[str, ...] = (
    "/adserver/*",
    "/adsales/*",
    "/adbanner.",
    "/adframe.$subdocument",
    "/banners/*$image",
    "/popunder.$script",
    "&ad_slot=",
    "&banner_id=",
    "?advert=",
    "/ad/creative/*",
    "-ad-300x250.",
    "-ad-728x90.",
    "/video-ads/*$media",
    "/sponsored/*$third-party",
    "||*/adtag/*$script,third-party",
)

GENERIC_TRACKER_PATTERNS: tuple[str, ...] = (
    "/pixel.gif?",
    "/beacon.gif?",
    "/collect?*&uid=",
    "/track.js$script",
    "/analytics.js$script,third-party",
    "/stats/event?",
    "&visitor_id=",
    "/__utm.gif?",
)


@dataclass(slots=True)
class ListSynthesisSpec:
    """Everything the generators need to know about the ecosystem.

    Built by :func:`repro.web.ecosystem.Ecosystem.list_spec`, but kept
    as plain data so the filter package stays independent of the web
    package.
    """

    ad_network_domains: list[str] = field(default_factory=list)
    tracker_domains: list[str] = field(default_factory=list)
    # Ad networks participating in the acceptable-ads programme.
    acceptable_ad_domains: list[str] = field(default_factory=list)
    # Infrastructure domains whitelisted with overly general rules
    # (the paper's gstatic.com anomaly).
    overly_general_whitelist_domains: list[str] = field(default_factory=list)
    # Publisher domains hosting first-party ad paths, matched by
    # $domain= scoped generic rules.
    self_hosting_publisher_domains: list[str] = field(default_factory=list)
    # Publisher domains with in-HTML text ads -> element hiding rules.
    text_ad_publisher_domains: list[str] = field(default_factory=list)
    # Non-English publisher domains for the language derivative list.
    foreign_publisher_domains: list[str] = field(default_factory=list)
    version: str = "201508110000"


def _header(title: str, version: str, expires_days: int) -> list[str]:
    return [
        "[Adblock Plus 2.0]",
        f"! Title: {title}",
        f"! Version: {version}",
        f"! Expires: {expires_days} days",
        "! Licence: synthetic reproduction list",
    ]


def synthesize_easylist(spec: ListSynthesisSpec) -> FilterList:
    """Build the synthetic EasyList (blocks ads on "English" sites)."""
    lines = _header("EasyList (synthetic)", spec.version, 4)

    for domain in sorted(spec.ad_network_domains):
        lines.append(f"||{domain}^$third-party")
        # A second, asset-scoped rule as real lists often carry.
        lines.append(f"||{domain}/creative/*$image,media")

    lines.extend(GENERIC_AD_PATTERNS)

    for domain in sorted(spec.self_hosting_publisher_domains):
        lines.append(f"/ads/serve/*$domain={domain}")

    # Exceptions that keep functional resources loadable: real lists
    # whitelist e.g. ad-network-hosted players used for main content.
    for domain in sorted(spec.ad_network_domains)[:3]:
        lines.append(f"@@||{domain}/player/core.js$script")

    for domain in sorted(spec.text_ad_publisher_domains):
        lines.append(f"{domain}##.textad")
        lines.append(f'{domain}###sponsored-links')
    lines.append("##.banner-ad-row")

    text = "\n".join(lines) + "\n"
    return FilterList.from_text(text, EASYLIST)


def synthesize_easyprivacy(spec: ListSynthesisSpec) -> FilterList:
    """Build the synthetic EasyPrivacy (blocks trackers)."""
    lines = _header("EasyPrivacy (synthetic)", spec.version, 1)
    for domain in sorted(spec.tracker_domains):
        lines.append(f"||{domain}^$third-party")
    lines.extend(GENERIC_TRACKER_PATTERNS)
    text = "\n".join(lines) + "\n"
    return FilterList.from_text(text, EASYPRIVACY)


def synthesize_acceptable_ads(spec: ListSynthesisSpec) -> FilterList:
    """Build the synthetic non-intrusive-ads whitelist.

    Exception-only list.  Participating networks get targeted ``@@``
    rules for their text/static ad paths; infrastructure domains get
    the overly general ``$document`` rules the paper flags (§7.3).
    """
    lines = _header("Allow non-intrusive advertising (synthetic)", spec.version, 4)
    for domain in sorted(spec.acceptable_ad_domains):
        lines.append(f"@@||{domain}/textad/$third-party")
        lines.append(f"@@||{domain}/static/*$image,script")
    for domain in sorted(spec.overly_general_whitelist_domains):
        lines.append(f"@@||{domain}^$document")
    text = "\n".join(lines) + "\n"
    return FilterList.from_text(text, ACCEPTABLE_ADS)


def synthesize_language_derivative(spec: ListSynthesisSpec, language: str = "de") -> FilterList:
    """An EasyList language customization (e.g. EasyList Germany)."""
    name = f"easylist_{language}"
    lines = _header(f"EasyList {language.upper()} (synthetic)", spec.version, 4)
    for domain in sorted(spec.foreign_publisher_domains):
        lines.append(f"/werbung/*$domain={domain}")
        lines.append(f"||anzeigen.{domain}^")
    text = "\n".join(lines) + "\n"
    parsed = FilterList.from_text(text, name)
    return parsed


def build_lists(spec: ListSynthesisSpec, *, language_derivative: bool = False) -> dict[str, FilterList]:
    """Build the standard list bundle keyed by canonical name."""
    lists = {
        EASYLIST: synthesize_easylist(spec),
        EASYPRIVACY: synthesize_easyprivacy(spec),
        ACCEPTABLE_ADS: synthesize_acceptable_ads(spec),
    }
    if language_derivative:
        derived = synthesize_language_derivative(spec)
        lists[derived.name] = derived
    for name, lst in lists.items():
        lst.expires_seconds = DEFAULT_EXPIRES.get(name, lst.expires_seconds)
    return lists


def filters_from_lines(lines: list[str], list_name: str) -> list[Filter]:
    """Parse raw filter lines into attributed filters (test helper)."""
    parsed = parse_list_text("\n".join(lines), name=list_name)
    return parsed.filters
