"""Synthetic "Alexa" popularity ranking over the ecosystem.

The active-measurement study (§4) crawls the Alexa top-1000 sites; the
reproduction's equivalent is the ecosystem's publishers ordered by
their Zipf popularity, which :func:`alexa_top` exposes in the familiar
rank-ordered form.
"""

from __future__ import annotations

from repro.web.ecosystem import Ecosystem, Publisher

__all__ = ["alexa_top", "alexa_urls"]


def alexa_top(ecosystem: Ecosystem, n: int = 1000) -> list[Publisher]:
    """The ``n`` most popular publishers, rank order (1 = top)."""
    ordered = sorted(ecosystem.publishers, key=lambda p: p.rank)
    return ordered[:n]


def alexa_urls(ecosystem: Ecosystem, n: int = 1000) -> list[str]:
    """Landing-page URLs of the top-``n`` list, as a crawler consumes."""
    return [f"http://{publisher.domain}/" for publisher in alexa_top(ecosystem, n)]
