"""Synthetic web + ad-tech ecosystem substrate.

Replaces "the Web as seen from the vantage point": publishers with
Zipf popularity and category-dependent page structure, ad networks and
exchanges (with RTB latency), trackers, CDNs/clouds and an AS registry
mirroring the player mix the paper reports in Table 5.
"""

from repro.web.adtech import AdChainKind, AdChainStep, ServerDelayModel, build_ad_chain
from repro.web.alexa import alexa_top, alexa_urls
from repro.web.asdb import AsDatabase, AsKind, AutonomousSystem, default_as_database
from repro.web.categories import PROFILES, CategoryProfile, SiteCategory, profile_for
from repro.web.dns import AuthoritativeZone, DnsRecord, Resolver, resolve_with_quorum
from repro.web.ecosystem import AdNetwork, Ecosystem, EcosystemConfig, Publisher, Tracker
from repro.web.page import ObjectKind, PageFetch, WebObject, build_page

__all__ = [
    "AuthoritativeZone",
    "DnsRecord",
    "Resolver",
    "resolve_with_quorum",
    "AdChainKind",
    "AdChainStep",
    "ServerDelayModel",
    "build_ad_chain",
    "alexa_top",
    "alexa_urls",
    "AsDatabase",
    "AsKind",
    "AutonomousSystem",
    "default_as_database",
    "PROFILES",
    "CategoryProfile",
    "SiteCategory",
    "profile_for",
    "AdNetwork",
    "Ecosystem",
    "EcosystemConfig",
    "Publisher",
    "Tracker",
    "ObjectKind",
    "PageFetch",
    "WebObject",
    "build_page",
]
