"""Site categories and per-category page profiles.

The paper groups publishers into content categories (news, adult,
streaming, shopping, ... — §7.3 uses a commercial categorization
service) and observes category-dependent ad behaviour: news pages are
object-heavy and ad-heavy, adult and file-sharing sites carry ads that
are never whitelisted, streaming produces few ad requests per byte.
The profiles below encode those structural differences; absolute
numbers are calibrated so the aggregate trace statistics land near the
paper's (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["SiteCategory", "CategoryProfile", "PROFILES", "profile_for"]


class SiteCategory(str, Enum):
    NEWS = "news"
    TECHNOLOGY = "technology"
    SHOPPING = "shopping"
    SOCIAL = "social"
    VIDEO_STREAMING = "video_streaming"
    AUDIO_STREAMING = "audio_streaming"
    FILE_SHARING = "file_sharing"
    ADULT = "adult"
    SEARCH = "search"
    DATING = "dating"
    TRANSLATION = "translation"
    GAMES = "games"
    REFERENCE = "reference"
    MIXED = "mixed"


@dataclass(frozen=True, slots=True)
class CategoryProfile:
    """Structural parameters of pages in one category.

    Attributes:
        objects_mean: mean number of non-ad embedded objects per page.
        ad_slots_mean: mean number of display-ad slots per page.
        tracker_mean: mean number of third-party trackers per page.
        text_ad_probability: chance a page embeds in-HTML text ads
            (element-hiding territory — invisible to the passive
            methodology, §3.1).
        video_probability: chance the page's main content is video
            (chunked media objects).
        video_ad_probability: chance a video page plays a pre-roll
            video ad (unchunked, 15-45 s).
        acceptable_ads_affinity: propensity of the category's ad slots
            to come from acceptable-ads participants (drives §7.3's
            per-category whitelisting differences).
        xhr_mean: mean number of XHR/API calls (interactive sites).
        popularity_weight: relative share of user page views going to
            this category.
    """

    objects_mean: float
    ad_slots_mean: float
    tracker_mean: float
    text_ad_probability: float
    video_probability: float
    video_ad_probability: float
    acceptable_ads_affinity: float
    xhr_mean: float
    popularity_weight: float


PROFILES: dict[SiteCategory, CategoryProfile] = {
    SiteCategory.NEWS: CategoryProfile(
        objects_mean=55.0,
        ad_slots_mean=3.06,
        tracker_mean=7.14,
        text_ad_probability=0.35,
        video_probability=0.10,
        video_ad_probability=0.2,
        acceptable_ads_affinity=0.175,
        xhr_mean=3.0,
        popularity_weight=0.18,
    ),
    SiteCategory.TECHNOLOGY: CategoryProfile(
        objects_mean=40.0,
        ad_slots_mean=2.04,
        tracker_mean=5.1,
        text_ad_probability=0.30,
        video_probability=0.05,
        video_ad_probability=0.16,
        acceptable_ads_affinity=0.385,
        xhr_mean=3.0,
        popularity_weight=0.10,
    ),
    SiteCategory.SHOPPING: CategoryProfile(
        objects_mean=45.0,
        ad_slots_mean=1.53,
        tracker_mean=6.12,
        text_ad_probability=0.20,
        video_probability=0.01,
        video_ad_probability=0.04,
        acceptable_ads_affinity=0.42,
        xhr_mean=4.0,
        popularity_weight=0.12,
    ),
    SiteCategory.SOCIAL: CategoryProfile(
        objects_mean=35.0,
        ad_slots_mean=1.27,
        tracker_mean=3.06,
        text_ad_probability=0.40,
        video_probability=0.15,
        video_ad_probability=0.08,
        acceptable_ads_affinity=0.21,
        xhr_mean=8.0,
        popularity_weight=0.16,
    ),
    SiteCategory.VIDEO_STREAMING: CategoryProfile(
        objects_mean=18.0,
        ad_slots_mean=0.77,
        tracker_mean=2.55,
        text_ad_probability=0.05,
        video_probability=0.95,
        video_ad_probability=0.22,
        acceptable_ads_affinity=0.35,
        xhr_mean=2.0,
        popularity_weight=0.14,
    ),
    SiteCategory.AUDIO_STREAMING: CategoryProfile(
        objects_mean=15.0,
        ad_slots_mean=0.77,
        tracker_mean=2.04,
        text_ad_probability=0.05,
        video_probability=0.05,
        video_ad_probability=0.08,
        acceptable_ads_affinity=0.42,
        xhr_mean=3.0,
        popularity_weight=0.04,
    ),
    SiteCategory.FILE_SHARING: CategoryProfile(
        objects_mean=20.0,
        ad_slots_mean=2.29,
        tracker_mean=2.04,
        text_ad_probability=0.10,
        video_probability=0.30,
        video_ad_probability=0.12,
        acceptable_ads_affinity=0.014,
        xhr_mean=1.0,
        popularity_weight=0.05,
    ),
    SiteCategory.ADULT: CategoryProfile(
        objects_mean=30.0,
        ad_slots_mean=2.55,
        tracker_mean=2.04,
        text_ad_probability=0.10,
        video_probability=0.60,
        video_ad_probability=0.16,
        acceptable_ads_affinity=0.0,
        xhr_mean=1.0,
        popularity_weight=0.06,
    ),
    SiteCategory.SEARCH: CategoryProfile(
        objects_mean=10.0,
        ad_slots_mean=0.51,
        tracker_mean=1.02,
        text_ad_probability=0.80,
        video_probability=0.0,
        video_ad_probability=0.0,
        acceptable_ads_affinity=0.595,
        xhr_mean=6.0,
        popularity_weight=0.07,
    ),
    SiteCategory.DATING: CategoryProfile(
        objects_mean=25.0,
        ad_slots_mean=1.53,
        tracker_mean=4.08,
        text_ad_probability=0.20,
        video_probability=0.02,
        video_ad_probability=0.04,
        acceptable_ads_affinity=0.49,
        xhr_mean=4.0,
        popularity_weight=0.02,
    ),
    SiteCategory.TRANSLATION: CategoryProfile(
        objects_mean=12.0,
        ad_slots_mean=1.02,
        tracker_mean=1.53,
        text_ad_probability=0.60,
        video_probability=0.0,
        video_ad_probability=0.0,
        acceptable_ads_affinity=0.525,
        xhr_mean=6.0,
        popularity_weight=0.02,
    ),
    SiteCategory.GAMES: CategoryProfile(
        objects_mean=30.0,
        ad_slots_mean=1.78,
        tracker_mean=3.06,
        text_ad_probability=0.15,
        video_probability=0.05,
        video_ad_probability=0.12,
        acceptable_ads_affinity=0.14,
        xhr_mean=3.0,
        popularity_weight=0.05,
    ),
    SiteCategory.REFERENCE: CategoryProfile(
        objects_mean=20.0,
        ad_slots_mean=1.02,
        tracker_mean=2.04,
        text_ad_probability=0.25,
        video_probability=0.01,
        video_ad_probability=0.04,
        acceptable_ads_affinity=0.35,
        xhr_mean=2.0,
        popularity_weight=0.04,
    ),
    SiteCategory.MIXED: CategoryProfile(
        objects_mean=30.0,
        ad_slots_mean=1.53,
        tracker_mean=3.57,
        text_ad_probability=0.25,
        video_probability=0.10,
        video_ad_probability=0.12,
        acceptable_ads_affinity=0.245,
        xhr_mean=3.0,
        popularity_weight=0.05,
    ),
}


def profile_for(category: SiteCategory) -> CategoryProfile:
    """Profile lookup with a safe fallback to MIXED."""
    return PROFILES.get(category, PROFILES[SiteCategory.MIXED])
