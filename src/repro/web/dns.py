"""DNS resolution substrate.

§3.2: "To identify Adblock Plus servers in the traces we rely on
multiple DNS resolvers to obtain an up-to-date list of Adblock Plus
server IPs"; §5 adds that the list was resolved before and after the
capture and "did not exhibit differences".

This module models exactly that workflow against the synthetic
ecosystem: authoritative records with TTLs (possibly multiple A
records per name for DNS round-robin), caching resolvers with
independent cache states, and the before/after stability check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.ecosystem import Ecosystem

__all__ = ["DnsRecord", "AuthoritativeZone", "Resolver", "resolve_with_quorum"]


@dataclass(frozen=True, slots=True)
class DnsRecord:
    """One A record."""

    name: str
    address: str
    ttl: float = 3600.0


class AuthoritativeZone:
    """Authoritative source of truth, backed by the ecosystem.

    Every ecosystem host resolves to its stable serving address; names
    can additionally be given extra round-robin addresses (ad servers
    and CDNs commonly return several).
    """

    def __init__(self, ecosystem: Ecosystem):
        self._ecosystem = ecosystem
        self._extra: dict[str, list[DnsRecord]] = {}

    def add_round_robin(self, name: str, addresses: list[str], *, ttl: float = 300.0) -> None:
        self._extra[name] = [DnsRecord(name, address, ttl) for address in addresses]

    def query(self, name: str) -> list[DnsRecord]:
        records = [DnsRecord(name, self._ecosystem.ip_for_host(name))]
        records.extend(self._extra.get(name, []))
        return records


@dataclass(slots=True)
class _CacheEntry:
    records: list[DnsRecord]
    expires_at: float


class Resolver:
    """A caching recursive resolver with its own cache state."""

    def __init__(self, zone: AuthoritativeZone, *, name: str = "resolver"):
        self.name = name
        self._zone = zone
        self._cache: dict[str, _CacheEntry] = {}
        self.upstream_queries = 0

    def resolve(self, name: str, *, now: float = 0.0) -> list[DnsRecord]:
        """Resolve ``name``, honouring cached entries until TTL expiry."""
        entry = self._cache.get(name)
        if entry is not None and entry.expires_at > now:
            return entry.records
        records = self._zone.query(name)
        self.upstream_queries += 1
        if records:
            ttl = min(record.ttl for record in records)
            self._cache[name] = _CacheEntry(records=records, expires_at=now + ttl)
        return records

    def addresses(self, name: str, *, now: float = 0.0) -> frozenset[str]:
        return frozenset(record.address for record in self.resolve(name, now=now))


def resolve_with_quorum(
    resolvers: list[Resolver],
    names: list[str],
    *,
    now: float = 0.0,
) -> frozenset[str]:
    """The paper's multi-resolver address harvest.

    Returns the union of the addresses every resolver reports for the
    given names — the IP list the capture infrastructure then matches
    TLS connections against.
    """
    addresses: set[str] = set()
    for name in names:
        for resolver in resolvers:
            addresses |= resolver.addresses(name, now=now)
    return frozenset(addresses)
