"""Synthetic web + ad-tech ecosystem generator.

Builds a deterministic universe of publishers, ad networks, trackers,
CDNs and their hosting — the stand-in for "the Web" as observed from
the paper's vantage point.  Everything downstream (filter lists, the
browser emulator, the RBN trace generator) derives from one
:class:`Ecosystem` instance, so ground truth is consistent everywhere.

Key structural properties reproduced:

* publisher popularity is Zipf-distributed (an "Alexa" ranking falls
  out of it);
* the ad-tech side is concentrated: one dominant search/ad company, a
  handful of exchanges/ad networks with their own ASes, the rest on
  clouds and CDNs (Table 5);
* the *same* CDN/cloud IPs serve both ad and non-ad objects, while
  dedicated ad-tech ASes serve (almost) only ads (§8.1);
* some ad networks participate in the acceptable-ads programme, some
  publishers run first-party ad paths, some embed in-HTML text ads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.filterlist.easylist import ListSynthesisSpec
from repro.web.asdb import AsDatabase, AsKind, AutonomousSystem, default_as_database
from repro.web.categories import PROFILES, CategoryProfile, SiteCategory, profile_for

__all__ = ["AdNetwork", "Tracker", "Publisher", "Ecosystem", "EcosystemConfig"]


@dataclass(slots=True)
class AdNetwork:
    """An ad-tech company: exchange, ad network or ad server."""

    name: str
    serving_domains: list[str]
    as_: AutonomousSystem
    is_exchange: bool = False
    acceptable_ads: bool = False
    market_share: float = 0.01
    # Exchanges auction impressions; §8.2's ~100 ms bidding delay.
    rtb_delay_ms: tuple[float, float] = (100.0, 140.0)

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(slots=True)
class Tracker:
    """An analytics / tracking company (EasyPrivacy territory)."""

    name: str
    serving_domains: list[str]
    as_: AutonomousSystem
    market_share: float = 0.01

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(slots=True)
class Publisher:
    """A content site users visit."""

    domain: str
    category: SiteCategory
    rank: int  # 1 = most popular
    popularity: float  # Zipf weight, unnormalized
    as_: AutonomousSystem
    on_cdn: bool = False
    cdn_as: AutonomousSystem | None = None
    self_hosted_ads: bool = False
    text_ads: bool = False
    ad_free: bool = False  # runs no display ads at all (rare but real)
    https_landing: bool = False
    ad_networks: list[AdNetwork] = field(default_factory=list)
    trackers: list[Tracker] = field(default_factory=list)

    @property
    def profile(self) -> CategoryProfile:
        return profile_for(self.category)

    def __hash__(self) -> int:
        return hash(self.domain)


@dataclass(slots=True)
class EcosystemConfig:
    """Knobs of :meth:`Ecosystem.generate`."""

    n_publishers: int = 1000
    n_ad_networks: int = 25
    n_trackers: int = 30
    zipf_exponent: float = 0.9
    https_landing_share: float = 0.12
    cdn_hosting_share: float = 0.30
    seed: int = 20151028  # IMC'15 first day


_CATEGORY_ORDER = list(PROFILES)


def _zipf_weights(n: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


class Ecosystem:
    """The generated universe.  Use :meth:`generate`, not ``__init__``."""

    def __init__(
        self,
        config: EcosystemConfig,
        asdb: AsDatabase,
        publishers: list[Publisher],
        ad_networks: list[AdNetwork],
        trackers: list[Tracker],
        dominant: AdNetwork,
    ):
        self.config = config
        self.asdb = asdb
        self.publishers = publishers
        self.ad_networks = ad_networks
        self.trackers = trackers
        self.dominant = dominant
        self._host_ips: dict[str, str] = {}
        self._host_counter: dict[int, int] = {}
        self._assign_ips()

    # ------------------------------------------------------------------
    # Generation

    @classmethod
    def generate(cls, config: EcosystemConfig | None = None) -> "Ecosystem":
        config = config or EcosystemConfig()
        rng = random.Random(config.seed)
        asdb = default_as_database()

        ad_networks = cls._make_ad_networks(config, rng, asdb)
        trackers = cls._make_trackers(config, rng, asdb)
        publishers = cls._make_publishers(config, rng, asdb, ad_networks, trackers)
        dominant = ad_networks[0]
        return cls(config, asdb, publishers, ad_networks, trackers, dominant)

    @staticmethod
    def _make_ad_networks(
        config: EcosystemConfig, rng: random.Random, asdb: AsDatabase
    ) -> list[AdNetwork]:
        googol = asdb.by_name("Googol")
        appnexus = asdb.by_name("AppNexus-like")
        criteo = asdb.by_name("Criterion")
        aol = asdb.by_name("AOLike")
        clouds = [as_ for as_ in asdb.all() if as_.kind == AsKind.CLOUD]
        cdns = [as_ for as_ in asdb.all() if as_.kind == AsKind.CDN]
        hosting = [as_ for as_ in asdb.all() if as_.kind == AsKind.HOSTING]
        assert googol and appnexus and criteo and aol

        networks = [
            # The dominant player: ad server + exchange + analytics,
            # acceptable-ads participant (§7.3: ~48% of its ad traffic
            # whitelisted).
            AdNetwork(
                name="googol-ads",
                serving_domains=[
                    "ads.googol-services.net",
                    "pagead.googol-syndication.com",
                    "exchange.doubleklick.net",
                ],
                as_=googol,
                is_exchange=True,
                acceptable_ads=True,
                market_share=0.20,
            ),
            AdNetwork(
                name="appnexus-like",
                serving_domains=["ib.appnexus-like.com", "secure.appnexus-like.com"],
                as_=appnexus,
                is_exchange=True,
                acceptable_ads=False,
                market_share=0.08,
            ),
            AdNetwork(
                name="criterion",
                serving_domains=["static.criterion-ads.net", "bidder.criterion-ads.net"],
                as_=criteo,
                is_exchange=True,
                acceptable_ads=False,
                market_share=0.06,
            ),
            AdNetwork(
                name="aol-adtech",
                serving_domains=["adserver.aolike-ads.com"],
                as_=aol,
                is_exchange=True,
                acceptable_ads=False,
                market_share=0.05,
            ),
            # A video-ad specialist (the paper's busiest ad server is
            # operated by Liverail, a video ad platform).
            AdNetwork(
                name="liverail-like",
                serving_domains=["vid.liverail-like.tv"],
                as_=rng.choice(clouds),
                is_exchange=True,
                acceptable_ads=False,
                market_share=0.07,
            ),
        ]

        remaining = config.n_ad_networks - len(networks)
        for index in range(max(0, remaining)):
            kind_roll = rng.random()
            if kind_roll < 0.4:
                as_ = rng.choice(clouds)
            elif kind_roll < 0.65:
                as_ = rng.choice(cdns)
            else:
                as_ = rng.choice(hosting)
            name = f"adnet{index:02d}"
            networks.append(
                AdNetwork(
                    name=name,
                    serving_domains=[f"serve.{name}-media.com"],
                    as_=as_,
                    is_exchange=rng.random() < 0.3,
                    acceptable_ads=rng.random() < 0.3,
                    market_share=0.44 / max(1, remaining),
                )
            )
        return networks

    @staticmethod
    def _make_trackers(
        config: EcosystemConfig, rng: random.Random, asdb: AsDatabase
    ) -> list[Tracker]:
        googol = asdb.by_name("Googol")
        clouds = [as_ for as_ in asdb.all() if as_.kind == AsKind.CLOUD]
        hosting = [as_ for as_ in asdb.all() if as_.kind == AsKind.HOSTING]
        assert googol

        trackers = [
            Tracker(
                name="googol-analytics",
                serving_domains=["www.googol-analytics.com", "stats.googol-services.net"],
                as_=googol,
                market_share=0.35,
            ),
            Tracker(
                name="addthis-like",
                serving_domains=["s7.addthis-like.com"],
                as_=rng.choice(clouds),
                market_share=0.08,
            ),
        ]
        remaining = config.n_trackers - len(trackers)
        for index in range(max(0, remaining)):
            as_ = rng.choice(clouds if rng.random() < 0.5 else hosting)
            name = f"tracker{index:02d}"
            trackers.append(
                Tracker(
                    name=name,
                    serving_domains=[f"pixel.{name}-metrics.io"],
                    as_=as_,
                    market_share=0.57 / max(1, remaining),
                )
            )
        return trackers

    @staticmethod
    def _make_publishers(
        config: EcosystemConfig,
        rng: random.Random,
        asdb: AsDatabase,
        ad_networks: list[AdNetwork],
        trackers: list[Tracker],
    ) -> list[Publisher]:
        weights = _zipf_weights(config.n_publishers, config.zipf_exponent)
        cdns = [as_ for as_ in asdb.all() if as_.kind == AsKind.CDN]
        hosting = [as_ for as_ in asdb.all() if as_.kind == AsKind.HOSTING]
        clouds = [as_ for as_ in asdb.all() if as_.kind == AsKind.CLOUD]

        category_names = list(PROFILES)
        category_weights = [PROFILES[c].popularity_weight for c in category_names]

        net_names = ad_networks
        net_weights = [network.market_share for network in ad_networks]
        tracker_weights = [tracker.market_share for tracker in trackers]

        publishers: list[Publisher] = []
        for rank in range(1, config.n_publishers + 1):
            category = rng.choices(category_names, weights=category_weights)[0]
            profile = PROFILES[category]
            tld = rng.choices(["com", "net", "org", "de", "co.uk"], weights=[50, 15, 10, 20, 5])[0]
            domain = f"{category.value.replace('_', '')}{rank:04d}.{tld}"
            on_cdn = rng.random() < config.cdn_hosting_share
            as_ = rng.choice(hosting + clouds)
            cdn_as = rng.choice(cdns) if on_cdn else None

            n_networks = 1 + int(rng.random() * 2 + (profile.ad_slots_mean > 3.5))
            pub_networks = _weighted_sample(rng, net_names, net_weights, n_networks)
            n_trackers = max(1, round(rng.gauss(profile.tracker_mean / 2.5, 0.8)))
            pub_trackers = _weighted_sample(rng, trackers, tracker_weights, n_trackers)

            # Some sites run no display advertising at all (donation- or
            # subscription-funded); concentrated in reference/search.
            if category is SiteCategory.REFERENCE:
                ad_free_probability = 0.70
            elif category in (SiteCategory.SEARCH, SiteCategory.TRANSLATION):
                ad_free_probability = 0.35
            else:
                ad_free_probability = 0.05

            publishers.append(
                Publisher(
                    domain=domain,
                    category=category,
                    rank=rank,
                    popularity=weights[rank - 1],
                    as_=as_,
                    on_cdn=on_cdn,
                    cdn_as=cdn_as,
                    self_hosted_ads=rng.random() < 0.08,
                    text_ads=rng.random() < profile.text_ad_probability,
                    ad_free=rng.random() < ad_free_probability,
                    https_landing=rng.random() < config.https_landing_share,
                    ad_networks=pub_networks,
                    trackers=pub_trackers,
                )
            )
        return publishers

    # ------------------------------------------------------------------
    # IP assignment and lookups

    def _assign_ips(self) -> None:
        """Give every serving host a stable IP inside its entity's AS.

        CDN- and cloud-hosted entities draw from small *shared edge
        pools* per AS: the same front-end IPs serve publisher content
        AND ad objects — the §8.1 "same infrastructure" effect (21% of
        servers serve at least one ad object; they also carry most
        non-ad objects).  Dedicated ad-tech ASes keep exclusive
        servers.
        """
        googol = self.asdb.by_name("Googol")
        if googol is not None:
            # Shared static infrastructure of the dominant player — the
            # gstatic.com analogue the acceptable-ads list whitelists
            # with an overly general $document rule (§7.3).
            self._host_ips["gstatic-like.com"] = self._next_ip(googol)
            self._host_ips["fonts.gstatic-like.com"] = self._next_ip(googol)
            # Popular JS library hosting — plain content served from the
            # dominant AS, diluting its internal ad ratio (Table 5:
            # Google's is ~50%, not ~100%, because the same AS serves
            # lots of non-ad traffic).
            self._host_ips["ajax.googol-apis.com"] = self._next_ip(googol)
            self._host_ips["cdn.googol-apis.com"] = self._next_ip(googol)

        shared_pools: dict[int, list[str]] = {}

        def pool_ip(as_: AutonomousSystem, index_hint: int) -> str:
            pool = shared_pools.get(as_.asn)
            if pool is None:
                pool = [self._next_ip(as_) for _ in range(8)]
                shared_pools[as_.asn] = pool
            return pool[index_hint % len(pool)]

        hint = 0
        for network in self.ad_networks:
            for domain in network.serving_domains:
                if network.as_.kind in (AsKind.CDN, AsKind.CLOUD):
                    self._host_ips[domain] = pool_ip(network.as_, hint)
                else:
                    self._host_ips[domain] = self._next_ip(network.as_)
                hint += 1
        for tracker in self.trackers:
            for domain in tracker.serving_domains:
                if tracker.as_.kind in (AsKind.CDN, AsKind.CLOUD):
                    self._host_ips[domain] = pool_ip(tracker.as_, hint)
                else:
                    self._host_ips[domain] = self._next_ip(tracker.as_)
                hint += 1
        for publisher in self.publishers:
            serving_as = publisher.cdn_as if publisher.on_cdn and publisher.cdn_as else publisher.as_
            if serving_as.kind in (AsKind.CDN, AsKind.CLOUD):
                self._host_ips[publisher.domain] = pool_ip(serving_as, hint)
                self._host_ips[f"static.{publisher.domain}"] = pool_ip(serving_as, hint + 1)
            else:
                self._host_ips[publisher.domain] = self._next_ip(serving_as)
                self._host_ips[f"static.{publisher.domain}"] = self._next_ip(serving_as)
            hint += 2

    def _next_ip(self, as_: AutonomousSystem) -> str:
        counter = self._host_counter.get(as_.asn, 0)
        self._host_counter[as_.asn] = counter + 1
        return self.asdb.address_in(as_, counter)

    def ip_for_host(self, host: str) -> str:
        """Stable DNS-like resolution for any ecosystem host."""
        ip = self._host_ips.get(host)
        if ip is not None:
            return ip
        # Unknown subdomain: resolve like its registrable parent when
        # known, else hash into generic hosting space.
        for known, known_ip in self._host_ips.items():
            if host.endswith("." + known):
                return known_ip
        generic = self.asdb.by_name("TierOne-Transit")
        assert generic is not None
        index = hash(host) % 60000
        return self.asdb.address_in(generic, index)

    def as_for_ip(self, ip: str) -> AutonomousSystem | None:
        return self.asdb.lookup(ip)

    def publisher_by_domain(self, domain: str) -> Publisher | None:
        for publisher in self.publishers:
            if publisher.domain == domain:
                return publisher
        return None

    # ------------------------------------------------------------------
    # Filter-list synthesis input

    def list_spec(self) -> ListSynthesisSpec:
        """Derive the filter-list synthesis spec from this universe."""
        ad_domains: list[str] = []
        acceptable: list[str] = []
        for network in self.ad_networks:
            ad_domains.extend(network.serving_domains)
            if network.acceptable_ads:
                acceptable.extend(network.serving_domains)
        tracker_domains = [
            domain for tracker in self.trackers for domain in tracker.serving_domains
        ]
        self_hosting = [p.domain for p in self.publishers if p.self_hosted_ads]
        text_ads = [p.domain for p in self.publishers if p.text_ads]
        foreign = [p.domain for p in self.publishers if p.domain.endswith(".de")]
        # The overly general $document whitelist anomaly (§7.3): the
        # dominant player's static-infrastructure domain.
        overly_general = ["gstatic-like.com"]
        return ListSynthesisSpec(
            ad_network_domains=sorted(set(ad_domains)),
            tracker_domains=sorted(set(tracker_domains)),
            acceptable_ad_domains=sorted(set(acceptable)),
            overly_general_whitelist_domains=overly_general,
            self_hosting_publisher_domains=sorted(self_hosting),
            text_ad_publisher_domains=sorted(text_ads),
            foreign_publisher_domains=sorted(foreign)[:50],
        )

    # ------------------------------------------------------------------
    # Popularity

    def sample_publisher(self, rng: random.Random) -> Publisher:
        """Draw a publisher according to Zipf popularity."""
        total = getattr(self, "_popularity_total", None)
        if total is None:
            total = sum(p.popularity for p in self.publishers)
            self._popularity_total = total
            cumulative: list[float] = []
            acc = 0.0
            for publisher in self.publishers:
                acc += publisher.popularity
                cumulative.append(acc)
            self._popularity_cumulative = cumulative
        point = rng.random() * total
        cumulative = self._popularity_cumulative
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return self.publishers[low]


def _weighted_sample(rng: random.Random, items: list, weights: list[float], k: int) -> list:
    """Sample up to ``k`` distinct items with probability ~ weights."""
    chosen: list = []
    available = list(range(len(items)))
    local_weights = list(weights)
    for _ in range(min(k, len(items))):
        total = sum(local_weights[i] for i in available)
        if total <= 0:
            break
        point = rng.random() * total
        acc = 0.0
        for position, index in enumerate(available):
            acc += local_weights[index]
            if acc >= point:
                chosen.append(items[index])
                available.pop(position)
                break
    return chosen
