"""Page models: the object tree a browser fetches for one page view.

:func:`build_page` materializes a page visit on a publisher into an
ordered list of :class:`WebObject` — main document, content assets,
ad-delivery chains (via :mod:`repro.web.adtech`), tracker beacons and
in-HTML text ads.  Every object carries

* the URL (shaped so the synthetic filter lists classify it the way
  the real lists classify real ad URLs),
* the *true* ABP content type (what a DOM-aware blocker sees),
* the *declared* Content-Type header — possibly missing or mismatched,
  reproducing the header pitfalls of Schneider et al. that the passive
  pipeline must survive (§4.2),
* the response size, drawn from per-(intent, class) distributions that
  reproduce Fig 6's characteristic modes (43-byte ad pixels,
  megabyte unchunked ad videos, chunked regular video),
* parent links that become ``Referer`` headers, including the broken
  chains (redirects, stripped referrers) §3.1's referrer map repairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.filterlist.options import ContentType
from repro.web.adtech import AdChainKind, ServerDelayModel, build_ad_chain, pick_tracker
from repro.web.ecosystem import Ecosystem, Publisher

__all__ = ["ObjectKind", "WebObject", "PageFetch", "build_page"]


class ObjectKind(str, Enum):
    MAIN_DOC = "main_doc"
    IMAGE = "image"
    SCRIPT = "script"
    STYLESHEET = "stylesheet"
    XHR = "xhr"
    MEDIA_CHUNK = "media_chunk"
    FONT = "font"
    SUBDOC = "subdoc"
    AD_SCRIPT = "ad_script"
    RTB_CALL = "rtb_call"
    AD_CREATIVE = "ad_creative"
    AD_VIDEO = "ad_video"
    AD_PIXEL = "ad_pixel"
    AD_REDIRECT = "ad_redirect"
    TRACKER_PIXEL = "tracker_pixel"
    TRACKER_SCRIPT = "tracker_script"
    TEXT_AD = "text_ad"  # embedded in HTML; no request of its own


@dataclass(slots=True)
class WebObject:
    """One would-be HTTP request of a page view (ground truth view)."""

    object_id: int
    url: str
    kind: ObjectKind
    intent: str  # "content" | "ad" | "tracker"
    abp_type: ContentType
    declared_mime: str | None
    size: int
    parent_id: int | None
    server_delay_ms: float
    acceptable: bool = False
    redirect_to: int | None = None  # object id this one redirects to
    referer_stripped: bool = False
    https: bool = False
    network_name: str = ""

    @property
    def is_ad_intent(self) -> bool:
        return self.intent in ("ad", "tracker")


@dataclass(slots=True)
class PageFetch:
    """A page visit: the URL plus its ordered object tree."""

    page_url: str
    publisher: Publisher
    objects: list[WebObject] = field(default_factory=list)
    text_ads: int = 0  # in-HTML ads; element-hiding territory

    def by_id(self, object_id: int) -> WebObject:
        return self.objects[object_id]

    def children_of(self, object_id: int) -> list[WebObject]:
        return [obj for obj in self.objects if obj.parent_id == object_id]


# ---------------------------------------------------------------------------
# Size model (Fig 6): log-normal components per (intent, MIME class).


def _ad_pixel_size(rng: random.Random) -> int:
    # The canonical 43-byte 1x1 GIF dominates; a small jittered tail.
    if rng.random() < 0.75:
        return 43
    return int(rng.lognormvariate(4.5, 0.8)) + 35


def _size_for(kind: ObjectKind, rng: random.Random) -> int:
    if kind in (ObjectKind.AD_PIXEL, ObjectKind.TRACKER_PIXEL):
        return _ad_pixel_size(rng)
    if kind is ObjectKind.AD_CREATIVE:
        return max(200, int(rng.lognormvariate(9.2, 1.0)))  # ~10 KB banners
    if kind is ObjectKind.AD_VIDEO:
        # 15-45 s spots, unchunked: > 1 MB, narrow spread.
        return int(rng.lognormvariate(14.8, 0.5))
    if kind is ObjectKind.AD_SCRIPT:
        return max(500, int(rng.lognormvariate(8.8, 0.9)))
    if kind is ObjectKind.TRACKER_SCRIPT:
        return max(2000, int(rng.lognormvariate(9.6, 0.7)))  # analytics.js ~15 KB
    if kind is ObjectKind.RTB_CALL:
        return max(300, int(rng.lognormvariate(7.6, 0.8)))  # bid JSON/text
    if kind is ObjectKind.AD_REDIRECT:
        return 0
    if kind is ObjectKind.IMAGE:
        return max(400, int(rng.lognormvariate(9.8, 1.3)))  # ~20 KB photos
    if kind is ObjectKind.SCRIPT:
        return max(300, int(rng.lognormvariate(9.5, 1.1)))
    if kind is ObjectKind.STYLESHEET:
        return max(300, int(rng.lognormvariate(9.0, 0.9)))
    if kind is ObjectKind.XHR:
        return max(60, int(rng.lognormvariate(5.8, 1.0)))  # small API blobs
    if kind is ObjectKind.MEDIA_CHUNK:
        return int(rng.lognormvariate(13.3, 0.5))  # ~0.6 MB chunks
    if kind is ObjectKind.FONT:
        return max(5000, int(rng.lognormvariate(10.2, 0.5)))
    if kind is ObjectKind.SUBDOC:
        return max(800, int(rng.lognormvariate(8.9, 0.8)))
    if kind is ObjectKind.MAIN_DOC:
        return max(2000, int(rng.lognormvariate(10.4, 0.7)))  # ~30 KB HTML
    return 1000


# ---------------------------------------------------------------------------
# Declared Content-Type model (Table 4 + §4.2 mismatches).

_TRUE_MIME: dict[ObjectKind, tuple[str | None, ContentType]] = {
    ObjectKind.MAIN_DOC: ("text/html", ContentType.DOCUMENT),
    ObjectKind.IMAGE: ("image/jpeg", ContentType.IMAGE),
    ObjectKind.SCRIPT: ("application/javascript", ContentType.SCRIPT),
    ObjectKind.STYLESHEET: ("text/css", ContentType.STYLESHEET),
    ObjectKind.XHR: ("text/plain", ContentType.XMLHTTPREQUEST),
    ObjectKind.MEDIA_CHUNK: (None, ContentType.MEDIA),
    ObjectKind.FONT: (None, ContentType.FONT),
    ObjectKind.SUBDOC: ("text/html", ContentType.SUBDOCUMENT),
    ObjectKind.AD_SCRIPT: ("application/javascript", ContentType.SCRIPT),
    ObjectKind.RTB_CALL: ("text/plain", ContentType.SCRIPT),
    ObjectKind.AD_CREATIVE: ("image/gif", ContentType.IMAGE),
    ObjectKind.AD_VIDEO: ("video/mp4", ContentType.MEDIA),
    ObjectKind.AD_PIXEL: ("image/gif", ContentType.IMAGE),
    ObjectKind.AD_REDIRECT: ("text/html", ContentType.OTHER),
    ObjectKind.TRACKER_PIXEL: ("image/gif", ContentType.IMAGE),
    ObjectKind.TRACKER_SCRIPT: ("application/javascript", ContentType.SCRIPT),
}


def _pick(rng: random.Random, table: list[tuple[str | None, float]],
          default: str | None) -> str | None:
    roll = rng.random()
    acc = 0.0
    for mime, weight in table:
        acc += weight
        if roll < acc:
            return mime
    return default


def _declared_mime(kind: ObjectKind, rng: random.Random) -> str | None:
    """Declared Content-Type, with realistic noise.

    Mismatch channels (§4.2): scripts served as ``text/html`` or
    ``text/plain`` (the paper's main false-positive source), odd types
    like ``text/x-c``, and missing Content-Type (frequent for
    media/fonts — Table 4's ``-`` rows).  The per-kind mixes are
    calibrated so the aggregate Table 4 distribution lands near the
    paper's (ad requests: gif 35%, plain 29%, html 14%, missing 12%).
    """
    true_mime, _ = _TRUE_MIME[kind]
    if kind is ObjectKind.AD_SCRIPT:
        # Ad tags are served by dynamic ad servers that rarely bother
        # with a proper JavaScript Content-Type.
        return _pick(rng, [("text/plain", 0.40), ("text/html", 0.30), (None, 0.12),
                           ("application/javascript", 0.12), ("text/x-c", 0.02)], true_mime)
    if kind is ObjectKind.RTB_CALL:
        return _pick(rng, [("text/plain", 0.55), ("application/xml", 0.20),
                           ("text/html", 0.15), (None, 0.10)], true_mime)
    if kind is ObjectKind.TRACKER_SCRIPT:
        return _pick(rng, [("text/plain", 0.35), ("text/html", 0.10), (None, 0.10)], true_mime)
    if kind is ObjectKind.SCRIPT:
        return _pick(rng, [("text/html", 0.12), ("text/x-c", 0.02), (None, 0.04)], true_mime)
    if kind is ObjectKind.IMAGE:
        # Format-level variety; passive side maps all to "image".
        return _pick(rng, [("image/png", 0.25), ("image/gif", 0.10), (None, 0.07)], true_mime)
    if kind is ObjectKind.AD_CREATIVE:
        return _pick(rng, [("image/png", 0.08), ("image/jpeg", 0.10),
                           ("application/x-shockwave-flash", 0.08), ("text/html", 0.13),
                           (None, 0.10)], true_mime)
    if kind in (ObjectKind.AD_PIXEL, ObjectKind.TRACKER_PIXEL):
        # Beacon endpoints answer with 1x1 GIFs, bare text/plain or no
        # Content-Type at all.
        return _pick(rng, [("text/plain", 0.08), (None, 0.20), ("image/png", 0.06)], true_mime)
    if kind is ObjectKind.AD_VIDEO:
        return _pick(rng, [("video/x-flv", 0.33)], true_mime)
    if kind is ObjectKind.MEDIA_CHUNK:
        # Chunked streams mostly ship without Content-Type (the bulk of
        # the paper's non-ad "-" bytes) but some declare video/*.
        return _pick(rng, [("video/mp4", 0.22), ("video/x-flv", 0.08)], None)
    if kind is ObjectKind.XHR:
        return _pick(rng, [("application/json", 0.30), ("text/html", 0.10)], true_mime)
    if rng.random() < 0.06:
        return None
    return true_mime


# ---------------------------------------------------------------------------
# URL shaping: must interlock with repro.filterlist.easylist patterns.

_AD_SIZES = ("300x250", "728x90", "160x600", "320x50")


def _creative_url(network_domain: str, acceptable: bool, video: bool, rng: random.Random) -> str:
    ident = rng.randrange(10**8)
    if acceptable:
        # Acceptable slots live under the paths the AA list whitelists.
        if rng.random() < 0.5:
            return f"http://{network_domain}/textad/{ident}.html"
        return f"http://{network_domain}/static/{ident}.gif"
    if video:
        return f"http://{network_domain}/video-ads/{ident}.mp4"
    size = rng.choice(_AD_SIZES)
    return f"http://{network_domain}/creative/{ident}-ad-{size}.gif"


def _content_url(host: str, kind: ObjectKind, index: int, rng: random.Random) -> str:
    ident = rng.randrange(10**6)
    if kind is ObjectKind.IMAGE:
        ext = rng.choice(["jpg", "jpg", "png", "gif"])
        return f"http://{host}/media/img/{ident}.{ext}"
    if kind is ObjectKind.SCRIPT:
        return f"http://{host}/js/app-{ident}.js"
    if kind is ObjectKind.STYLESHEET:
        return f"http://{host}/css/site-{ident}.css"
    if kind is ObjectKind.XHR:
        return f"http://{host}/api/v2/suggest?q=q{ident}&n={index}"
    if kind is ObjectKind.MEDIA_CHUNK:
        return f"http://{host}/stream/seg/{ident}/chunk_{index:05d}.ts"
    if kind is ObjectKind.FONT:
        return f"http://{host}/fonts/main-{ident}.woff"
    if kind is ObjectKind.SUBDOC:
        return f"http://{host}/embed/widget{ident}.html"
    return f"http://{host}/page/{ident}"


# ---------------------------------------------------------------------------


def build_page(
    publisher: Publisher,
    ecosystem: Ecosystem,
    rng: random.Random,
    delay_model: ServerDelayModel | None = None,
    *,
    page_path: str | None = None,
) -> PageFetch:
    """Materialize one page view on ``publisher`` into an object tree."""
    delays = delay_model or ServerDelayModel(rng)
    profile = publisher.profile
    page_path = page_path or f"/articles/{rng.randrange(10**6)}.html"
    page_url = f"http://{publisher.domain}{page_path}"
    page = PageFetch(page_url=page_url, publisher=publisher)

    def add(
        url: str,
        kind: ObjectKind,
        intent: str,
        parent: int | None,
        *,
        acceptable: bool = False,
        network_name: str = "",
        size: int | None = None,
    ) -> WebObject:
        mime, abp_type = _TRUE_MIME[kind]
        del mime  # declared separately, with noise
        obj = WebObject(
            object_id=len(page.objects),
            url=url,
            kind=kind,
            intent=intent,
            abp_type=abp_type,
            declared_mime=_declared_mime(kind, rng),
            size=_size_for(kind, rng) if size is None else size,
            parent_id=parent,
            server_delay_ms=(
                delays.content_ms() if intent == "content" else 0.0  # ads set below
            ),
            acceptable=acceptable,
            referer_stripped=rng.random() < 0.04,
            network_name=network_name,
        )
        page.objects.append(obj)
        return obj

    main = add(page_url, ObjectKind.MAIN_DOC, "content", None)
    main.referer_stripped = True  # page loads carry no referer here
    main.https = publisher.https_landing

    static_host = f"static.{publisher.domain}"
    is_video_page = rng.random() < profile.video_probability

    # Regular content objects.
    n_objects = max(2, round(rng.gauss(profile.objects_mean, profile.objects_mean / 4)))
    content_kind_weights = [
        (ObjectKind.IMAGE, 0.45),
        (ObjectKind.SCRIPT, 0.22),
        (ObjectKind.STYLESHEET, 0.10),
        (ObjectKind.FONT, 0.04),
        (ObjectKind.SUBDOC, 0.04),
        (ObjectKind.XHR, 0.15),
    ]
    kinds = [k for k, _ in content_kind_weights]
    weights = [w for _, w in content_kind_weights]
    for index in range(n_objects):
        kind = rng.choices(kinds, weights=weights)[0]
        host = static_host if rng.random() < 0.6 else publisher.domain
        if kind is ObjectKind.FONT and rng.random() < 0.5:
            # Web fonts frequently come from the dominant player's
            # shared static infrastructure (the gstatic analogue).
            host = "fonts.gstatic-like.com"
        elif kind is ObjectKind.SCRIPT and rng.random() < 0.18:
            # JS libraries from the dominant player's public CDN —
            # regular content served from an ad-heavy AS (§8.1).
            host = "ajax.googol-apis.com"
        obj = add(_content_url(host, kind, index, rng), kind, "content", main.object_id)
        if kind is ObjectKind.SUBDOC:
            # Widgets load a couple of their own assets.
            for child_index in range(rng.randrange(1, 3)):
                child_kind = rng.choices(kinds[:3], weights=weights[:3])[0]
                add(
                    _content_url(host, child_kind, child_index, rng),
                    child_kind,
                    "content",
                    obj.object_id,
                )

    # XHR burst for interactive sites (autocomplete etc. — §7.2).
    n_xhr = max(0, round(rng.gauss(profile.xhr_mean, 1.0)))
    for index in range(n_xhr):
        add(
            _content_url(publisher.domain, ObjectKind.XHR, index, rng),
            ObjectKind.XHR,
            "content",
            main.object_id,
        )

    # Video content: chunked segments (many requests, no CT header).
    if is_video_page:
        n_chunks = rng.randrange(6, 20)
        for index in range(n_chunks):
            add(
                _content_url(static_host, ObjectKind.MEDIA_CHUNK, index, rng),
                ObjectKind.MEDIA_CHUNK,
                "content",
                main.object_id,
            )

    # Ad slots (none on ad-free publishers).
    if publisher.ad_free:
        n_slots = 0
        video_ad = False
    else:
        n_slots = max(0, round(rng.gauss(profile.ad_slots_mean, 1.0)))
        video_ad = is_video_page and rng.random() < profile.video_ad_probability
    for slot in range(n_slots):
        slot_is_video = video_ad and slot == 0
        _add_ad_chain(page, publisher, ecosystem, rng, delays, add, main.object_id, slot_is_video)

    # First-party ("self-hosted") ad paths, matched by $domain= rules.
    if publisher.self_hosted_ads and not publisher.ad_free:
        for index in range(rng.randrange(1, 3)):
            obj = add(
                f"http://{publisher.domain}/ads/serve/unit{index}.js",
                ObjectKind.AD_SCRIPT,
                "ad",
                main.object_id,
                network_name="self",
            )
            obj.server_delay_ms = delays.backoffice_ms()

    # Trackers (ad-free sites still run a little analytics).
    tracker_mean = profile.tracker_mean * (0.3 if publisher.ad_free else 1.0)
    n_trackers = max(0, round(rng.gauss(tracker_mean, 1.2)))
    for index in range(n_trackers):
        tracker = pick_tracker(publisher, rng)
        if tracker is None:
            break
        domain = rng.choice(tracker.serving_domains)
        if rng.random() < 0.3:
            url = f"http://{domain}/analytics.js"
            kind = ObjectKind.TRACKER_SCRIPT
        else:
            url = f"http://{domain}/pixel.gif?uid=u{rng.randrange(10**9)}&ev=pv{index}"
            kind = ObjectKind.TRACKER_PIXEL
        obj = add(url, kind, "tracker", main.object_id, network_name=tracker.name)
        obj.server_delay_ms = delays.frontend_ms()

    # In-HTML text ads: no requests, element-hiding only (§3.1).
    if publisher.text_ads and rng.random() < 0.8:
        page.text_ads = rng.randrange(1, 4)

    return page


def _add_ad_chain(
    page: PageFetch,
    publisher: Publisher,
    ecosystem: Ecosystem,
    rng: random.Random,
    delays: ServerDelayModel,
    add,
    main_id: int,
    video_slot: bool,
) -> None:
    """Append one ad slot's delivery chain to the page."""
    chain = build_ad_chain(publisher, rng, video_slot=video_slot)
    if not chain:
        return
    kind_map = {
        AdChainKind.AD_SCRIPT: ObjectKind.AD_SCRIPT,
        AdChainKind.RTB_CALL: ObjectKind.RTB_CALL,
        AdChainKind.CREATIVE: ObjectKind.AD_CREATIVE,
        AdChainKind.TRACKING_PIXEL: ObjectKind.AD_PIXEL,
        AdChainKind.CLICK_REDIRECT: ObjectKind.AD_REDIRECT,
    }
    parent = main_id
    previous: WebObject | None = None
    for step in chain:
        network_domain = rng.choice(step.network.serving_domains)
        slot_id = rng.randrange(10**7)
        if step.acceptable:
            # Acceptable-ads slots are served under the /textad/ (and
            # /static/) namespaces the whitelist covers — the *entire*
            # chain, or a subscribed ABP install would block the tag
            # and the whitelisted creative would never be fetched.
            if step.kind is AdChainKind.AD_SCRIPT:
                url = f"http://{network_domain}/textad/tag.js?ad_slot={slot_id}"
            elif step.kind is AdChainKind.RTB_CALL:
                url = f"http://{network_domain}/textad/bid?ad_slot={slot_id}"
            elif step.kind is AdChainKind.CREATIVE:
                url = _creative_url(network_domain, True, step.is_video, rng)
            elif step.kind is AdChainKind.CLICK_REDIRECT:
                target = f"http://{network_domain}/textad/{slot_id}.html"
                url = f"http://{network_domain}/textad/click?redirect={target}"
            elif rng.random() < 0.25:
                # A minority of acceptable-slot beacons look like
                # tracking pixels to EasyPrivacy's generic rules — the
                # paper's whitelisted-yet-EP-blacklisted bucket (§7.3:
                # 23.2% of blacklist-matching whitelisted requests).
                url = f"http://{network_domain}/textad/pixel.gif?imp={slot_id}&uid=u{slot_id}"
            else:
                url = f"http://{network_domain}/textad/imp.gif?imp={slot_id}"
        elif step.kind is AdChainKind.AD_SCRIPT:
            url = f"http://{network_domain}/adtag/show.js?ad_slot={slot_id}"
        elif step.kind is AdChainKind.RTB_CALL:
            url = f"http://{network_domain}/rtb/bid?ad_slot={slot_id}&cb={rng.randrange(10**6)}"
        elif step.kind is AdChainKind.CREATIVE:
            url = _creative_url(network_domain, step.acceptable, step.is_video, rng)
        elif step.kind is AdChainKind.CLICK_REDIRECT:
            target = f"http://{network_domain}/creative/{slot_id}-ad-300x250.gif"
            url = f"http://{network_domain}/adserver/click?redirect={target}"
        else:
            url = f"http://{network_domain}/pixel.gif?imp={slot_id}&banner_id={slot_id}"

        object_kind = kind_map[step.kind]
        if object_kind is ObjectKind.AD_CREATIVE and step.is_video:
            object_kind = ObjectKind.AD_VIDEO
        obj = add(
            url,
            object_kind,
            "ad",
            parent,
            acceptable=step.acceptable,
            network_name=step.network.name,
        )
        obj.server_delay_ms = delays.ad_request_ms(step.kind, step.network)
        if previous is not None and previous.kind is ObjectKind.AD_REDIRECT:
            previous.redirect_to = obj.object_id
        # Chain children hang off the ad script / previous hop.
        if step.kind is AdChainKind.AD_SCRIPT:
            parent = obj.object_id
        previous = obj
