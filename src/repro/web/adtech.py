"""Ad delivery chains and the server-side latency model.

§8.2 infers real-time bidding from the gap between the HTTP handshake
(first response packet minus first request packet) and the TCP
handshake (SYN-ACK minus SYN): exchanges hold the request open for the
~100 ms auction window, so ad requests show a third latency mode near
120 ms that plain content lacks (Fig 7's modes at 1 ms, 10 ms, 120 ms).

This module models (a) the sequence of requests fetching one ad slot —
exchange script, auction, creative, tracking pixels — and (b) the
server-side processing delay of every request class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.web.ecosystem import AdNetwork, Publisher, Tracker

__all__ = ["ServerDelayModel", "AdChainStep", "AdChainKind", "build_ad_chain"]


class AdChainKind(str, Enum):
    """Role of one request in an ad-delivery chain."""

    AD_SCRIPT = "ad_script"  # publisher-embedded ad tag
    RTB_CALL = "rtb_call"  # exchange auction endpoint
    CREATIVE = "creative"  # winning ad's asset
    TRACKING_PIXEL = "tracking_pixel"  # impression beacon
    CLICK_REDIRECT = "click_redirect"  # redirector hop


@dataclass(frozen=True, slots=True)
class AdChainStep:
    """One request in an ad chain, before URL materialization."""

    kind: AdChainKind
    network: AdNetwork
    acceptable: bool  # served under an acceptable-ads programme slot
    is_video: bool = False


class ServerDelayModel:
    """Samples server-side processing delay in milliseconds.

    Three regimes reproduce Fig 7's modes:

    * front-end hits: ~1 ms (log-normal around 1);
    * back-office / origin fetches (CDN miss, dynamic rendering):
      ~10 ms;
    * RTB auctions: the exchange's configured window, ~100-140 ms.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng

    def frontend_ms(self) -> float:
        return self._rng.lognormvariate(0.0, 0.6)

    def backoffice_ms(self) -> float:
        return self._rng.lognormvariate(2.3, 0.5)  # median ~10 ms

    def rtb_ms(self, network: AdNetwork) -> float:
        low, high = network.rtb_delay_ms
        return self._rng.uniform(low, high) + self._rng.lognormvariate(0.0, 0.5)

    def content_ms(self) -> float:
        """Delay of a regular content request: mostly front-end, a
        minority hitting origin servers."""
        if self._rng.random() < 0.15:
            return self.backoffice_ms()
        return self.frontend_ms()

    def ad_request_ms(self, kind: AdChainKind, network: AdNetwork) -> float:
        """Delay for one ad-chain request.

        Creatives and pixels are cached at the edge (~1 ms), ad scripts
        often render dynamically (~10 ms), auction calls pay the full
        bidding window.
        """
        if kind is AdChainKind.RTB_CALL:
            return self.rtb_ms(network)
        if kind is AdChainKind.AD_SCRIPT:
            if self._rng.random() < 0.6:
                return self.backoffice_ms()
            return self.frontend_ms()
        if kind is AdChainKind.CLICK_REDIRECT:
            return self.backoffice_ms()
        if self._rng.random() < 0.2:
            return self.backoffice_ms()
        return self.frontend_ms()


def build_ad_chain(
    publisher: Publisher,
    rng: random.Random,
    *,
    video_slot: bool = False,
) -> list[AdChainStep]:
    """Materialize the request chain of one ad slot on ``publisher``.

    Fetching one advert involves several requests (§6 footnote 3): the
    ad tag script, optionally an exchange auction (when the slot's
    network runs RTB), the creative itself, and 1-2 impression pixels.
    Whether the slot is an *acceptable ads* slot depends on the
    network's programme participation and the category's affinity.
    """
    if not publisher.ad_networks:
        return []
    weights = [network.market_share for network in publisher.ad_networks]
    network = rng.choices(publisher.ad_networks, weights=weights)[0]
    acceptable = network.acceptable_ads and rng.random() < publisher.profile.acceptable_ads_affinity

    steps = [AdChainStep(AdChainKind.AD_SCRIPT, network, acceptable)]
    if network.is_exchange and rng.random() < 0.7:
        steps.append(AdChainStep(AdChainKind.RTB_CALL, network, acceptable))
    if rng.random() < 0.05:
        # Redirector hop in front of the creative: the follow-up
        # request has no referer, only the Location header links them.
        steps.append(AdChainStep(AdChainKind.CLICK_REDIRECT, network, acceptable))
    steps.append(AdChainStep(AdChainKind.CREATIVE, network, acceptable, is_video=video_slot))
    for _ in range(1 + int(rng.random() < 0.2)):
        steps.append(AdChainStep(AdChainKind.TRACKING_PIXEL, network, acceptable))
    return steps


def pick_tracker(publisher: Publisher, rng: random.Random) -> Tracker | None:
    """Choose one of the publisher's trackers by market share."""
    if not publisher.trackers:
        return None
    weights = [tracker.market_share for tracker in publisher.trackers]
    return rng.choices(publisher.trackers, weights=weights)[0]
