"""Autonomous-system registry and IP-prefix lookup.

§8.1 maps ad-serving IPs to ASes via global routing information; the
synthetic equivalent is a registry that allocates /16 IPv4 prefixes to
synthetic ASes and answers longest-prefix (here: exact /16) lookups.
The default registry mirrors the player mix of Table 5: a dominant
search/ad company, two cloud arms of one retailer, CDNs, European
hosters, dedicated ad-tech ASes and generic hosting for the long tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["AsKind", "AutonomousSystem", "AsDatabase", "default_as_database"]


class AsKind(str, Enum):
    SEARCH = "search"
    CLOUD = "cloud"
    CDN = "cdn"
    ADTECH = "adtech"
    HOSTING = "hosting"
    ISP = "isp"


@dataclass(slots=True)
class AutonomousSystem:
    """One synthetic AS with its allocated /16 prefixes."""

    asn: int
    name: str
    kind: AsKind
    prefixes: list[int] = field(default_factory=list)  # first-two-octet keys

    def __hash__(self) -> int:
        return hash(self.asn)


def _prefix_key(ip: str) -> int:
    first_dot = ip.find(".")
    second_dot = ip.find(".", first_dot + 1)
    return int(ip[:first_dot]) * 256 + int(ip[first_dot + 1 : second_dot])


class AsDatabase:
    """Allocates prefixes to ASes and resolves IPs back to them."""

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}
        self._by_prefix: dict[int, AutonomousSystem] = {}
        self._next_octet1 = 101  # synthetic "public" space starts here
        self._next_octet2 = 0

    def register(self, name: str, kind: AsKind, *, asn: int | None = None, n_prefixes: int = 1) -> AutonomousSystem:
        """Create an AS and allocate ``n_prefixes`` /16 blocks to it."""
        if asn is None:
            asn = 64500 + len(self._by_asn)
        if asn in self._by_asn:
            raise ValueError(f"ASN {asn} already registered")
        as_ = AutonomousSystem(asn=asn, name=name, kind=kind)
        for _ in range(n_prefixes):
            key = self._next_octet1 * 256 + self._next_octet2
            self._next_octet2 += 1
            if self._next_octet2 == 256:
                self._next_octet2 = 0
                self._next_octet1 += 1
            as_.prefixes.append(key)
            self._by_prefix[key] = as_
        self._by_asn[asn] = as_
        return as_

    def lookup(self, ip: str) -> AutonomousSystem | None:
        """Resolve an IPv4 address to its AS (None for client space)."""
        try:
            return self._by_prefix.get(_prefix_key(ip))
        except (ValueError, IndexError):
            return None

    def get(self, asn: int) -> AutonomousSystem | None:
        return self._by_asn.get(asn)

    def by_name(self, name: str) -> AutonomousSystem | None:
        for as_ in self._by_asn.values():
            if as_.name == name:
                return as_
        return None

    def all(self) -> list[AutonomousSystem]:
        return list(self._by_asn.values())

    def address_in(self, as_: AutonomousSystem, index: int) -> str:
        """The ``index``-th address of an AS, spread over its prefixes."""
        if not as_.prefixes:
            raise ValueError(f"AS {as_.name} has no prefixes")
        prefix = as_.prefixes[index % len(as_.prefixes)]
        host_part = (index // len(as_.prefixes)) % 65024 + 256  # skip .0.x
        return f"{prefix // 256}.{prefix % 256}.{host_part // 256}.{host_part % 256}"


# Synthetic stand-ins for the organisations of Table 5.  Names are
# lightly fictionalized; ``paper_name`` comments map them back.
_DEFAULT_ASES: tuple[tuple[str, AsKind, int], ...] = (
    ("Googol", AsKind.SEARCH, 4),  # Google
    ("Amazonia-EC2", AsKind.CLOUD, 3),  # Amazon-EC2
    ("Akamight", AsKind.CDN, 3),  # Akamai
    ("Amazonia-AWS", AsKind.CLOUD, 2),  # Am.-AWS
    ("Hetzfeld", AsKind.HOSTING, 2),  # Hetzner
    ("AppNexus-like", AsKind.ADTECH, 1),  # AppNexus
    ("MyLocal", AsKind.HOSTING, 1),  # MyLoc
    ("SoftStratum", AsKind.CDN, 2),  # SoftLayer
    ("AOLike", AsKind.ADTECH, 1),  # AOL
    ("Criterion", AsKind.ADTECH, 1),  # Criteo
    ("EuroHost-1", AsKind.HOSTING, 2),
    ("EuroHost-2", AsKind.HOSTING, 2),
    ("GenericCloud", AsKind.CLOUD, 2),
    ("TierOne-Transit", AsKind.HOSTING, 3),
    ("MediaCDN", AsKind.CDN, 2),
)


def default_as_database() -> AsDatabase:
    """Registry used by the default ecosystem (Table 5 player mix)."""
    db = AsDatabase()
    for name, kind, n_prefixes in _DEFAULT_ASES:
        db.register(name, kind, n_prefixes=n_prefixes)
    return db
