"""Diagnostic model for the static-analysis layer (DESIGN.md §9).

Every finding — whether about a filter *rule* (``FLxxx``) or about the
*codebase* (``RCxxx``) — is one :class:`Diagnostic` with a stable code,
a severity, a source location and a human-readable message.  Stable
codes make findings baseline-able: a committed baseline file pins the
accepted findings and CI fails only on the diff.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Severity",
    "Diagnostic",
    "CODES",
    "default_severity",
    "render_text",
    "render_json",
    "summarize",
]


class Severity(enum.IntEnum):
    """Finding severity; ordering is used by ``--fail-on``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


# Code registry: default severity + one-line title.  DESIGN.md §9 is
# the normative description of each check.
CODES: Mapping[str, tuple[Severity, str]] = {
    # -- filter-list lint (repro lint <files>) -------------------------
    "FL001": (Severity.ERROR, "unparseable rule"),
    "FL002": (Severity.WARNING, "rule shadowed by a broader rule"),
    "FL003": (Severity.ERROR, "dead rule: option combination unsatisfiable"),
    "FL004": (Severity.WARNING, "redundant duplicate after normalization"),
    "FL005": (Severity.WARNING, "exception rule whitelists nothing"),
    "FL006": (Severity.ERROR, "ReDoS hazard in regex-style rule"),
    "FL007": (Severity.WARNING, "unknown or misused $option"),
    "FL008": (Severity.ERROR, "conflicting domain= restriction"),
    # -- codebase gate (repro lint --self) -----------------------------
    "RC001": (Severity.ERROR, "file write bypasses robustness/atomic.py"),
    "RC002": (Severity.WARNING, "broad exception handler outside ErrorPolicy"),
    "RC003": (Severity.WARNING, "nondeterminism hazard"),
    "RC004": (Severity.ERROR, "export_state/restore_state field drift"),
    # -- flow-aware codebase gate (call graph + cross-file contracts) --
    "RC005": (Severity.ERROR, "blocking call reachable from async context"),
    "RC006": (Severity.ERROR, "coroutine never awaited / task handle dropped"),
    "RC007": (Severity.WARNING, "lock held across await with unguarded access"),
    "RC008": (Severity.ERROR, "signal handler does real work"),
    "RC009": (Severity.ERROR, "worker queue protocol drift"),
    "RC010": (Severity.ERROR, "exit code bypasses registry or README drift"),
    "RC011": (Severity.ERROR, "metric key surface drifts from committed schema"),
    "RC012": (Severity.ERROR, "transient field read in checkpoint wire form"),
}


def default_severity(code: str) -> Severity:
    return CODES[code][0]


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One static-analysis finding.

    ``source`` is the filter-list name/path or the Python file path;
    ``line`` is 1-based (0 for whole-file findings).  ``subject`` is
    the rule text or code symbol the finding is about — it anchors the
    baseline fingerprint so reordering lines does not churn baselines.
    """

    code: str
    message: str
    source: str
    line: int = 0
    subject: str = ""
    severity: Severity = field(default=Severity.ERROR)

    @classmethod
    def build(
        cls,
        code: str,
        message: str,
        *,
        source: str,
        line: int = 0,
        subject: str = "",
        severity: Severity | None = None,
    ) -> "Diagnostic":
        return cls(
            code=code,
            message=message,
            source=source,
            line=line,
            subject=subject,
            severity=default_severity(code) if severity is None else severity,
        )

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number-free)."""
        return f"{self.code}:{self.source}:{self.subject or self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "source": self.source,
            "line": self.line,
            "subject": self.subject,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for diagnostic in diagnostics:
        counts[str(diagnostic.severity)] += 1
    return counts


def render_text(diagnostics: list[Diagnostic]) -> str:
    """One classic compiler-style line per finding."""
    lines = []
    for diag in sorted(diagnostics, key=lambda d: (d.source, d.line, d.code)):
        location = f"{diag.source}:{diag.line}" if diag.line else diag.source
        subject = f"  [{diag.subject}]" if diag.subject else ""
        lines.append(f"{location}: {diag.code} {diag.severity}: {diag.message}{subject}")
    counts = summarize(diagnostics)
    lines.append(
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    payload = {
        "version": 1,
        "counts": summarize(diagnostics),
        "findings": [
            diag.to_dict()
            for diag in sorted(diagnostics, key=lambda d: (d.source, d.line, d.code))
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
