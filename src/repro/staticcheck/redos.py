"""FL006: ReDoS-hazard detection for regexes (DESIGN.md §9.3).

Two consumers:

* the filter-list linter, which analyzes ``/regex/``-style rules
  *before* they ever reach an engine;
* :class:`~repro.filterlist.combined.CombinedRegexEngine`, which
  pre-screens every compiled pattern fragment before splicing it into
  the giant alternation — one pathological fragment there would stall
  every URL classification, which is exactly the hot path the paper's
  pipeline lives on.

Detection is static and conservative, based on the parsed regex tree
(``re._parser``), looking for the classic exponential shapes:

* **nested unbounded quantifiers** — ``(a+)+``, ``(a*)*``, ``(a+)*``;
* **overlapping alternation under a quantifier** — ``(a|a)+``,
  ``(ab|a.)*`` where two branches can consume the same first
  character;
* **stacked large bounded repeats** — ``(a{1,N}){1,M}`` with
  ``N*M`` beyond a sanity bound.

A *quick scan* fast path makes screening effectively free for the
escaped-literal fragments ABP pattern compilation produces: a fragment
with no unescaped quantified group cannot backtrack exponentially, and
the two fixed helper fragments the compiler emits (the ``^`` separator
class and the ``||`` domain anchor) are known-safe by construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

try:  # Python >= 3.11
    from re import _parser as _sre_parser  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - Python 3.10 fallback
    import sre_parse as _sre_parser  # type: ignore[no-redef]

__all__ = ["RedosHazard", "analyze_regex", "scan_pattern_source", "regex_rule_body"]

_MAXREPEAT = _sre_parser.MAXREPEAT
# A bounded repeat counts as "large" beyond this many iterations;
# two stacked large repeats give >= _LARGE_REPEAT**2 states.
_LARGE_REPEAT = 64


@dataclass(frozen=True, slots=True)
class RedosHazard:
    """Why a regex is considered a backtracking hazard."""

    reason: str
    snippet: str = ""

    def __str__(self) -> str:
        return f"{self.reason} ({self.snippet})" if self.snippet else self.reason


def regex_rule_body(pattern: str) -> str | None:
    """The inner regex of a ``/regex/``-style filter rule, or None.

    ABP treats a pattern enclosed in slashes as a raw regular
    expression.  Plain path fragments like ``/adserver/`` also look
    slash-enclosed, so only patterns whose body uses regex
    metacharacters beyond the ABP pattern language are classified as
    regex-style — the ambiguity is precisely why the linter exists.
    """
    if len(pattern) < 3 or not (pattern.startswith("/") and pattern.endswith("/")):
        return None
    body = pattern[1:-1]
    if re.search(r"[(){}\[\]+?\\]|\|", body):
        return body
    return None


# -- parsed-tree analysis ---------------------------------------------------


def _is_unbounded(op: object, arg: object) -> bool:
    if op not in (_sre_parser.MAX_REPEAT, _sre_parser.MIN_REPEAT):
        return False
    _min, _max, _body = arg  # type: ignore[misc]
    return _max is _MAXREPEAT or _max >= _LARGE_REPEAT


def _first_chars(items: list[Any]) -> tuple[set[int], bool]:
    """Approximate first-character set of a parsed sequence.

    Returns ``(chars, wildcard)`` where ``wildcard`` means "can start
    with anything" (``.``, a negated class, a category, ...).
    """
    for op, arg in items:
        if op is _sre_parser.LITERAL:
            return {arg}, False
        if op is _sre_parser.NOT_LITERAL:
            return set(), True
        if op is _sre_parser.ANY:
            return set(), True
        if op is _sre_parser.IN:
            chars: set[int] = set()
            for member_op, member_arg in arg:
                if member_op is _sre_parser.LITERAL:
                    chars.add(member_arg)
                elif member_op is _sre_parser.RANGE:
                    low, high = member_arg
                    chars.update(range(low, min(high, low + 128) + 1))
                else:  # NEGATE, CATEGORY: treat as wildcard
                    return set(), True
            return chars, False
        if op is _sre_parser.SUBPATTERN:
            return _first_chars(list(arg[3]))
        if op is _sre_parser.BRANCH:
            merged: set[int] = set()
            for branch in arg[1]:
                chars, wildcard = _first_chars(list(branch))
                if wildcard:
                    return set(), True
                merged |= chars
            return merged, False
        if op in (_sre_parser.MAX_REPEAT, _sre_parser.MIN_REPEAT):
            _min, _max, body = arg
            chars, wildcard = _first_chars(list(body))
            if _min > 0:
                return chars, wildcard
            continue  # optional: look past it
        if op is _sre_parser.AT:
            continue  # anchors consume nothing
        return set(), False  # GROUPREF etc: give up, assume disjoint
    return set(), False


def _min_width(items: list[Any]) -> int:
    """Minimum number of characters a parsed sequence must consume.

    Unknown node types count as width 1 so that only provably nullable
    bodies are reported (no false hazards from e.g. backreferences).
    """
    total = 0
    for op, arg in items:
        if op in (_sre_parser.MAX_REPEAT, _sre_parser.MIN_REPEAT):
            _min, _max, body = arg
            total += _min * _min_width(list(body))
        elif op is _sre_parser.SUBPATTERN:
            total += _min_width(list(arg[3]))
        elif op is _sre_parser.BRANCH:
            total += min(_min_width(list(branch)) for branch in arg[1])
        elif op in (_sre_parser.AT, _sre_parser.ASSERT, _sre_parser.ASSERT_NOT):
            continue  # zero-width by definition
        else:
            total += 1
    return total


def _contains_large_repeat(items: list[Any]) -> bool:
    """Does the sequence contain an unbounded or large bounded repeat?"""
    for op, arg in items:
        if op in (_sre_parser.MAX_REPEAT, _sre_parser.MIN_REPEAT):
            _min, _max, body = arg
            if _max is _MAXREPEAT or _max >= _LARGE_REPEAT:
                return True
            if _contains_large_repeat(list(body)):
                return True
        elif op is _sre_parser.SUBPATTERN:
            if _contains_large_repeat(list(arg[3])):
                return True
        elif op is _sre_parser.BRANCH:
            for branch in arg[1]:
                if _contains_large_repeat(list(branch)):
                    return True
    return False


def _walk(items: list[Any], in_repeat: bool) -> RedosHazard | None:
    for op, arg in items:
        if op in (_sre_parser.MAX_REPEAT, _sre_parser.MIN_REPEAT):
            _min, _max, body = arg
            body_items = list(body)
            large = _max is _MAXREPEAT or _max >= _LARGE_REPEAT
            if large and _contains_large_repeat(body_items):
                return RedosHazard(
                    "nested quantifiers",
                    "an unbounded repeat applies to a body that itself repeats",
                )
            if large and body_items and _min_width(body_items) == 0:
                # e.g. (a?b?)+ — every iteration may consume nothing,
                # so the number of ways to parse a mismatch explodes.
                return RedosHazard(
                    "nullable repeat body",
                    "an unbounded repeat whose body can match the empty string",
                )
            hazard = _walk(body_items, in_repeat or large)
            if hazard is not None:
                return hazard
        elif op is _sre_parser.SUBPATTERN:
            hazard = _walk(list(arg[3]), in_repeat)
            if hazard is not None:
                return hazard
        elif op is _sre_parser.BRANCH:
            branches = [list(branch) for branch in arg[1]]
            if in_repeat and len(branches) > 1:
                # The parser factors common branch prefixes, so the
                # classic (a|a)* arrives here as a(|) — two or more
                # epsilon branches under a repeat mean every iteration
                # has redundant parses: exponential path count.
                empty = sum(1 for branch in branches if not branch)
                if empty >= 2:
                    return RedosHazard(
                        "exponential alternation",
                        "ambiguous (identical) branches under a quantifier",
                    )
                seen: set[int] = set()
                saw_wildcard = False
                for branch in branches:
                    chars, wildcard = _first_chars(branch)
                    if wildcard:
                        if saw_wildcard or seen:
                            return RedosHazard(
                                "exponential alternation",
                                "overlapping branches under a quantifier",
                            )
                        saw_wildcard = True
                    elif chars & seen or (chars and saw_wildcard):
                        return RedosHazard(
                            "exponential alternation",
                            "overlapping branches under a quantifier",
                        )
                    else:
                        seen |= chars
            for branch in branches:
                hazard = _walk(branch, in_repeat)
                if hazard is not None:
                    return hazard
    return None


def analyze_regex(source: str) -> RedosHazard | None:
    """Statically analyze one regex source for backtracking hazards.

    Returns a :class:`RedosHazard` or None.  A source that does not
    even parse is reported as a hazard too — the caller must not hand
    it to ``re.compile`` on the hot path.
    """
    try:
        tree = _sre_parser.parse(source)
    except (re.error, ValueError, OverflowError) as exc:
        return RedosHazard("unparseable regex", str(exc))
    return _walk(list(tree), in_repeat=False)


# -- fast pre-screen for compiled ABP fragments -----------------------------

# The two fixed fragments repro.filterlist.filter emits; both are
# linear-time by construction and stripped before the quick scan.
_KNOWN_SAFE_FRAGMENTS = (
    r"^[\w\-]+:/+(?:[^/]+\.)?",  # _DOMAIN_ANCHOR_REGEX
    r"(?:[^\w\-.%]|$)",  # _SEPARATOR_REGEX
)

_QUANTIFIED_GROUP = re.compile(r"(?<!\\)\)[*+{?]")


def scan_pattern_source(source: str) -> RedosHazard | None:
    """Cheap screen for a compiled ABP pattern fragment.

    Strips the compiler's fixed known-safe fragments, then looks for a
    quantified group — the only shape that can nest quantifiers.  Only
    when that textual smell is present does the full parsed-tree
    analysis run, so screening a list of escaped-literal patterns is a
    single string scan per rule.
    """
    stripped = source
    for fragment in _KNOWN_SAFE_FRAGMENTS:
        stripped = stripped.replace(fragment, "")
    if _QUANTIFIED_GROUP.search(stripped) is None:
        return None
    return analyze_regex(source)
