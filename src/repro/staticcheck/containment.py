"""Pattern containment for shadowing analysis (FL002, DESIGN.md §9.2).

``pattern_contains(a, b)`` decides — conservatively — whether every URL
matched by ABP pattern ``b`` is also matched by pattern ``a``.  Exact
regex-language containment is intractable in general; this module only
answers *True* for cases it can prove from the pattern structure:

* ``a`` unanchored: each of ``a``'s ``*``-separated literal segments
  occurs, in order, inside ``b``'s pattern text.  A literal occurrence
  in the pattern guarantees an occurrence in every matching URL
  (wildcards only add text, the ``^`` placeholder has identical
  semantics in both patterns).
* ``a`` domain-anchored (``||host...``): ``b`` must be domain-anchored
  to ``host`` or a subdomain of it, and ``a``'s post-host remainder
  must be a structural prefix of ``b``'s.
* start/end anchored patterns require matching anchors in ``b`` plus
  prefix/suffix containment of the literal segments.

False negatives are fine (a shadowing pair the linter misses), false
positives are not (a live rule reported dead) — every shortcut below
errs toward returning False.

Option containment (:func:`options_contain`) completes the check: the
broader rule must apply in at least every request context the narrower
one applies in.
"""

from __future__ import annotations

import re

from repro.filterlist.filter import Filter
from repro.filterlist.options import FilterOptions

__all__ = [
    "normalize_pattern",
    "pattern_contains",
    "options_contain",
    "filter_contains",
    "ParsedPattern",
    "parse_pattern",
]

# Characters the ``^`` separator placeholder can stand for that also
# appear literally in patterns — used for ||host^ vs ||host/... checks.
_SEPARATOR_LITERALS = frozenset("/:?=&^")


class ParsedPattern:
    """Anchor flags + core text of a normalized ABP pattern.

    Normalization mirrors :func:`repro.filterlist.filter.compile_pattern`:
    collapse ``*`` runs, *then* read the anchors off the true pattern
    edges, then drop edge wildcards (an edge ``*`` next to an anchor
    neutralizes the anchor; a ``|`` that is not at the pattern edge is
    a literal).
    """

    __slots__ = ("anchor_domain", "anchor_start", "anchor_end", "core", "segments")

    def __init__(self, pattern: str) -> None:
        text = re.sub(r"\*+", "*", pattern)
        self.anchor_domain = False
        self.anchor_start = False
        self.anchor_end = False
        if text.startswith("||"):
            self.anchor_domain = True
            text = text[2:]
        elif text.startswith("|"):
            self.anchor_start = True
            text = text[1:]
        if text.endswith("|") and text != "":
            self.anchor_end = True
            text = text[:-1]
        if text.startswith("*"):
            self.anchor_domain = self.anchor_start = False
            text = text.lstrip("*")
        if text.endswith("*"):
            self.anchor_end = False
            text = text.rstrip("*")
        self.core = text
        self.segments = [segment for segment in text.split("*") if segment]

    @property
    def canonical(self) -> str:
        """Reassembled canonical pattern text (the FL004 duplicate key)."""
        prefix = "||" if self.anchor_domain else ("|" if self.anchor_start else "")
        suffix = "|" if self.anchor_end else ""
        return f"{prefix}{self.core}{suffix}"

    @property
    def host(self) -> str:
        """For domain-anchored patterns: the anchored host prefix."""
        if not self.anchor_domain:
            return ""
        host = self.core
        for index, char in enumerate(host):
            if char in "/^*?":
                return host[:index]
        return host

    @property
    def after_host(self) -> str:
        return self.core[len(self.host) :] if self.anchor_domain else self.core


def normalize_pattern(pattern: str) -> str:
    """Canonical form of an ABP pattern (see :class:`ParsedPattern`)."""
    return ParsedPattern(pattern).canonical


def parse_pattern(pattern: str) -> ParsedPattern:
    return ParsedPattern(pattern)


def _segments_in_order(segments: list[str], text: str, *, from_start: bool = False) -> bool:
    """Do the literal segments occur, in order, inside ``text``?"""
    position = 0
    for index, segment in enumerate(segments):
        if index == 0 and from_start:
            if not text.startswith(segment):
                return False
            position = len(segment)
            continue
        found = text.find(segment, position)
        if found < 0:
            return False
        position = found + len(segment)
    return True


def pattern_contains(a: str, b: str) -> bool:
    """Conservative: does pattern ``a`` match a superset of pattern ``b``?"""
    pa, pb = ParsedPattern(a), ParsedPattern(b)
    if pa.core == pb.core and (
        (pa.anchor_domain, pa.anchor_start, pa.anchor_end)
        == (pb.anchor_domain, pb.anchor_start, pb.anchor_end)
    ):
        return True

    if pa.anchor_end and not pb.anchor_end:
        return False
    if pa.anchor_end and pb.anchor_end:
        last = pa.segments[-1] if pa.segments else ""
        if last and not pb.core.endswith(last):
            return False

    if pa.anchor_domain:
        if not pb.anchor_domain:
            return False
        host_a, host_b = pa.host, pb.host
        if not (host_b == host_a or host_b.endswith("." + host_a)):
            return False
        rest_a, rest_b = pa.after_host, pb.after_host
        if not rest_a:
            return True
        if rest_a == "^":
            # ``||host^`` needs a separator (or end) right after the
            # host; ``b`` guarantees that when its own remainder starts
            # with a separator literal or ``^`` — or ends the URL too.
            return bool(rest_b) and rest_b[0] in _SEPARATOR_LITERALS or (
                not rest_b and pb.anchor_end
            )
        rest_segments = [segment for segment in rest_a.split("*") if segment]
        return _segments_in_order(rest_segments, rest_b, from_start=not rest_a.startswith("*"))

    if pa.anchor_start:
        if not pb.anchor_start:
            return False
        return _segments_in_order(pa.segments, pb.core, from_start=True)

    # a is a floating substring pattern.
    if not pa.segments:
        # Core is empty or wildcards only: matches everything.
        return not pa.anchor_end or pb.anchor_end
    search_space = pb.core
    return _segments_in_order(pa.segments, search_space)


def options_contain(a: FilterOptions, b: FilterOptions) -> bool:
    """Does option set ``a`` apply in every context option set ``b`` does?"""
    if (a.type_mask & b.type_mask) != b.type_mask:
        return False
    if a.third_party is not None and a.third_party != b.third_party:
        return False
    if a.match_case and not b.match_case:
        return False
    if a.elemhide_exception != b.elemhide_exception:
        return False
    if a.is_document_exception != b.is_document_exception:
        return False
    if a.domains_include:
        # a only applies on listed page domains: containment only
        # provable when b is restricted to a subset of those domains.
        if not b.domains_include or not b.domains_include <= a.domains_include:
            return False
    if a.domains_exclude and not a.domains_exclude <= b.domains_exclude:
        return False
    return True


def filter_contains(a: Filter, b: Filter) -> bool:
    """Full shadowing check: same kind, broader pattern, broader options."""
    if a.kind is not b.kind:
        return False
    return options_contain(a.options, b.options) and pattern_contains(a.pattern, b.pattern)
