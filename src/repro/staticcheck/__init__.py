"""Static-analysis layer: filter-list linting + codebase gate.

Two targets behind one diagnostic model (DESIGN.md §9):

* ``repro lint <list files>`` — rule-level diagnostics FL001–FL008
  over Adblock-Plus-style filter lists (:mod:`.filterlint`), built on
  pattern containment (:mod:`.containment`) and static ReDoS analysis
  (:mod:`.redos`);
* ``repro lint --self`` — AST-based repo-invariant checks RC001–RC012
  over ``src/repro/``: per-file invariants (:mod:`.codelint`), a
  project call graph with async-context propagation (:mod:`.callgraph`)
  feeding the flow-sensitive concurrency checks (:mod:`.asynccheck`),
  and cross-file contract checks — worker wire protocol, exit-code
  registry/README, metric key schema (:mod:`.protocol`).

Findings are :class:`~repro.staticcheck.diagnostics.Diagnostic`
objects with stable codes, rendered as text or JSON and baselined via
:mod:`.baseline`.
"""

from repro.staticcheck.baseline import apply_baseline, load_baseline, write_baseline
from repro.staticcheck.containment import (
    filter_contains,
    normalize_pattern,
    options_contain,
    pattern_contains,
)
from repro.staticcheck.codelint import lint_file as lint_source_file
from repro.staticcheck.codelint import lint_package
from repro.staticcheck.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    render_json,
    render_text,
    summarize,
)
from repro.staticcheck.filterlint import (
    lint_paths,
    lint_texts,
    rule_local_diagnostics,
)
from repro.staticcheck.redos import RedosHazard, analyze_regex, scan_pattern_source

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "RedosHazard",
    "analyze_regex",
    "scan_pattern_source",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "filter_contains",
    "normalize_pattern",
    "options_contain",
    "pattern_contains",
    "lint_paths",
    "lint_texts",
    "lint_package",
    "lint_source_file",
    "rule_local_diagnostics",
    "render_json",
    "render_text",
    "summarize",
]
