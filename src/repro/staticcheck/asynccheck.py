"""Flow-sensitive concurrency checks for the async serving layer.

These are the codebase-gate checks that need the project call graph
(:mod:`repro.staticcheck.callgraph`) rather than a per-file AST walk
(DESIGN.md §14):

* **RC005** — a blocking call (``time.sleep``, ``open``, socket or
  subprocess ops, ``.result()``, ``.join()``) reachable from an
  ``async def`` through sync call edges.  The event loop runs one
  callback at a time; a blocking call anywhere under it stalls *every*
  in-flight request, which is exactly the tail-latency failure the
  admission queue exists to prevent.  Executor hops
  (``asyncio.to_thread``, ``run_in_executor``) pass the function as an
  argument rather than calling it, so they terminate reachability by
  construction.
* **RC006** — a coroutine created and dropped: a bare expression
  statement calling an ``async def`` (never awaited, never runs), or a
  ``create_task``/``ensure_future`` whose task handle is discarded
  (the event loop holds only a weak reference; a GC pass can cancel
  the task mid-flight).  The repo convention is the
  ``ServeApp._background`` pattern: keep the handle, discard on done.
* **RC007** — a lock or semaphore held across an ``await`` while the
  attributes it guards are also touched outside the lock.  Awaiting
  inside a critical section is legitimate single-flight design (the
  reload manager does it deliberately), but only if *every* access to
  the guarded state takes the lock — an unguarded touch can interleave
  at the suspension point.  ``__init__`` is exempt: construction
  precedes sharing.
* **RC008** — a signal handler that does real work.  Handlers run at
  arbitrary interrupt points (``signal.signal``) or as loop callbacks
  (``add_signal_handler``); either way the repo contract is: set a
  flag or event, hand off to a coroutine, or die — nothing else.  The
  check resolves the handler expression (function, method, factory
  return) and walks its body against a small allowlist.

All four report through the shared :class:`CheckContext`, so the
``# staticcheck: ok[RC00x] reason`` pragma convention applies
unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.staticcheck.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    own_nodes,
)
from repro.staticcheck.codelint import CheckContext

__all__ = ["check_graph"]


# -- RC005: blocking calls reachable from async context ---------------------


def _chain(witness: Mapping[str, tuple[str, ast.AST | None]], qualname: str) -> list[str]:
    """Reconstruct the async-root → function call chain for a message."""
    names = [qualname]
    current = qualname
    while True:
        caller, _node = witness[current]
        if caller == current:
            break
        names.append(caller)
        current = caller
    return list(reversed(names))


def _check_rc005(graph: CallGraph, contexts: dict[str, CheckContext]) -> None:
    witness = graph.async_reachable()
    for qualname, function in graph.functions.items():
        if qualname not in witness or not function.blocking:
            continue
        ctx = contexts[function.rel_path]
        chain = _chain(witness, qualname)
        for op in function.blocking:
            if function.is_async:
                route = "directly in an async def"
            else:
                route = "reachable from async context via " + " -> ".join(
                    name.split(":")[-1] for name in chain
                )
            ctx.report(
                "RC005",
                f"{op.label} blocks the event loop ({op.detail}); {route} — "
                "hop through asyncio.to_thread()/run_in_executor() instead",
                op.node,
                subject=f"{qualname}:{op.label}",
            )


# -- RC006: dropped coroutines and task handles -----------------------------

_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})


def _check_rc006(graph: CallGraph, contexts: dict[str, CheckContext]) -> None:
    for module in graph.modules.values():
        ctx = contexts[module.rel_path]
        for function in module.functions.values():
            for node in own_nodes(function.node):
                if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                    continue
                call = node.value
                func = call.func
                spawn = (
                    isinstance(func, ast.Attribute) and func.attr in _SPAWN_NAMES
                ) or (isinstance(func, ast.Name) and func.id in _SPAWN_NAMES)
                if spawn:
                    ctx.report(
                        "RC006",
                        "task handle dropped: the loop keeps only a weak "
                        "reference, so the task can be garbage-collected "
                        "mid-flight — keep the handle and discard on done "
                        "(the ServeApp._background pattern)",
                        node,
                        subject=f"{function.qualname}:dropped-task",
                    )
                    continue
                target = graph.resolve_call(module, function, call)
                if target is not None and target.is_async:
                    ctx.report(
                        "RC006",
                        f"coroutine {target.name}() is never awaited — the "
                        "call builds a coroutine object and drops it; the "
                        "body never runs",
                        node,
                        subject=f"{function.qualname}:unawaited:{target.name}",
                    )


# -- RC007: lock held across await with unguarded access --------------------


def _is_lock_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` where the attr smells like a lock/semaphore."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        lowered = node.attr.lower()
        if "lock" in lowered or "sem" in lowered or "mutex" in lowered:
            return node.attr
    return None


def _lock_blocks(
    function: FunctionInfo,
) -> list[tuple[ast.With | ast.AsyncWith, str]]:
    blocks = []
    for node in own_nodes(function.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock = _is_lock_attr(item.context_expr)
                if lock is not None:
                    blocks.append((node, lock))
                    break
    return blocks


def _self_attr_accesses(nodes: Iterable[ast.AST]) -> list[ast.Attribute]:
    out = []
    for node in nodes:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.append(node)
    return out


def _block_nodes(block: ast.With | ast.AsyncWith) -> Iterator[ast.AST]:
    stack = list(block.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check_rc007(graph: CallGraph, contexts: dict[str, CheckContext]) -> None:
    for module in graph.modules.values():
        ctx = contexts[module.rel_path]
        for cls in module.classes.values():
            # Pass 1: per method, which attrs are written under a lock
            # that is held across an await, and where each lock block is.
            guarded: dict[str, tuple[str, int]] = {}  # attr -> (lock, line)
            covered: dict[str, set[int]] = {}  # attr -> lines inside ANY lock block
            for method in cls.methods.values():
                for block, lock in _lock_blocks(method):
                    body = list(_block_nodes(block))
                    has_await = any(isinstance(node, ast.Await) for node in body)
                    for attr in _self_attr_accesses(body):
                        if attr.attr == lock:
                            continue
                        lines = covered.setdefault(attr.attr, set())
                        lines.add(attr.lineno)
                        if has_await and isinstance(attr.ctx, ast.Store):
                            guarded.setdefault(attr.attr, (lock, block.lineno))
            if not guarded:
                continue
            # Pass 2: any touch of a guarded attr outside every lock
            # block (and outside __init__) can interleave at the await.
            for method in cls.methods.values():
                if method.name == "__init__":
                    continue
                for attr in _self_attr_accesses(own_nodes(method.node)):
                    if attr.attr not in guarded:
                        continue
                    if attr.lineno in covered.get(attr.attr, ()):
                        continue
                    lock, lock_line = guarded[attr.attr]
                    ctx.report(
                        "RC007",
                        f"self.{attr.attr} is written under self.{lock} held "
                        f"across an await (line {lock_line}), but touched "
                        f"here without the lock — another coroutine can "
                        "interleave at the suspension point",
                        attr,
                        subject=f"{cls.name}.{attr.attr}:unguarded",
                    )


# -- RC008: signal handlers doing real work ---------------------------------

# Method calls a handler may make: event/flag manipulation, task
# bookkeeping, and loop hand-off.  Everything else — I/O, joins, thread
# spawns, queue flushes — is real work at interrupt time.
_SAFE_ATTR_CALLS = frozenset(
    {
        "set",
        "clear",
        "is_set",
        "cancel",
        "add",
        "discard",
        "add_done_callback",
        "call_soon_threadsafe",
    }
)
# Module-level calls a handler may make: re-arming, loop hand-off, and
# dying on purpose.
_SAFE_MODULE_CALLS = frozenset(
    {
        ("os", "_exit"),
        ("sys", "exit"),
        ("signal", "signal"),
        ("asyncio", "ensure_future"),
        ("asyncio", "create_task"),
    }
)
_IGNORED_HANDLERS = frozenset({"SIG_IGN", "SIG_DFL"})


def _nested_function(
    scope: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in ast.walk(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _resolve_handler(
    graph: CallGraph,
    module: ModuleInfo,
    function: FunctionInfo,
    expr: ast.expr,
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The handler function a registration expression names, if findable."""
    if isinstance(expr, ast.Attribute) and expr.attr in _IGNORED_HANDLERS:
        return None
    if isinstance(expr, ast.Name):
        nested = _nested_function(function.node, expr.id)
        if nested is not None and nested.name != function.name:
            return nested
        local = module.functions.get(expr.id)
        return local.node if local is not None else None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and function.class_name is not None
    ):
        cls = module.classes.get(function.class_name)
        if cls is not None and expr.attr in cls.methods:
            return cls.methods[expr.attr].node
        return None
    if isinstance(expr, ast.Call):
        # Factory pattern: signal.signal(SIGTERM, make_handler(queue)).
        factory = _resolve_handler(graph, module, function, expr.func)
        if factory is None:
            return None
        for node in ast.walk(factory):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                return _nested_function(factory, node.value.id)
        return None
    return None


def _handler_registrations(function: FunctionInfo) -> Iterator[ast.expr]:
    """Yield handler expressions from signal-registration calls."""
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "signal"
            and isinstance(func.value, ast.Name)
            and func.value.id == "signal"
            and len(node.args) >= 2
        ):
            yield node.args[1]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "add_signal_handler"
            and len(node.args) >= 2
        ):
            yield node.args[1]


def _call_label(func: ast.expr) -> str:
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)) or "<call>"


def _unsafe_handler_calls(
    graph: CallGraph,
    module: ModuleInfo,
    function: FunctionInfo,
    handler: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    unsafe = []
    for node in own_nodes(handler):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SAFE_ATTR_CALLS:
                continue
            if (
                isinstance(func.value, ast.Name)
                and (func.value.id, func.attr) in _SAFE_MODULE_CALLS
            ):
                continue
        target = graph.resolve_call(module, function, node)
        if target is not None and target.is_async:
            continue  # building a coroutine object runs nothing
        unsafe.append(_call_label(func))
    return unsafe


def _check_rc008(graph: CallGraph, contexts: dict[str, CheckContext]) -> None:
    seen: set[int] = set()  # handler node ids: one finding per handler
    for module in graph.modules.values():
        ctx = contexts[module.rel_path]
        for function in module.functions.values():
            for expr in _handler_registrations(function):
                handler = _resolve_handler(graph, module, function, expr)
                if handler is None or id(handler) in seen:
                    continue
                seen.add(id(handler))
                unsafe = _unsafe_handler_calls(graph, module, function, handler)
                if unsafe:
                    ctx.report(
                        "RC008",
                        f"signal handler {handler.name}() does real work: "
                        f"{', '.join(sorted(set(unsafe)))} — a handler may "
                        "only set flags/events or hand off to the loop "
                        "(it runs at arbitrary interrupt points)",
                        handler,
                        subject=f"{module.module}:{handler.name}:"
                        f"{','.join(sorted(set(unsafe)))}",
                    )


# -- entry point ------------------------------------------------------------


def check_graph(graph: CallGraph, contexts: dict[str, CheckContext]) -> None:
    """Run RC005–RC008 over a built call graph.

    ``contexts`` maps each module's ``rel_path`` to its
    :class:`CheckContext` (pragmas pre-collected), so findings land in
    the right file's list and per-line waivers apply.
    """
    _check_rc005(graph, contexts)
    _check_rc006(graph, contexts)
    _check_rc007(graph, contexts)
    _check_rc008(graph, contexts)
