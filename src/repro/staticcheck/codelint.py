"""Codebase gate: AST checks for repo invariants (``repro lint --self``).

Generic linters cannot see this repo's contracts; these checks encode
them (DESIGN.md §9.4):

* **RC001** — a file opened for writing inside ``src/repro/`` without
  going through :mod:`repro.robustness.atomic`.  Every durable artifact
  must be crash-atomic (DESIGN.md §8); an ad-hoc ``open(path, "w")``
  can publish a torn file.
* **RC002** — a bare ``except:`` or broad ``except Exception:``
  handler.  Damaged-input handling must route through
  :class:`repro.robustness.policy.ErrorPolicy` so drops are counted
  and quarantined, never silently swallowed.
* **RC003** — nondeterminism hazards: module-level ``random.*`` calls
  (unseeded global RNG), ``random.Random()`` with no seed,
  ``time.time()`` / ``datetime.now()`` in library code.  Checkpoint
  resume (DESIGN.md §8) requires byte-identical replay; wall clocks
  and unseeded RNGs break it.
* **RC004** — a class whose ``export_state`` returns a dict literal
  and whose ``restore_state`` / ``from_state`` consumes a *different*
  key set.  Such drift produces checkpoints that crash (or silently
  lose fields) only on resume — the worst possible time.  For
  dataclasses the check also covers the field surface itself: every
  public field must either appear in the export dict or be declared
  process-local in a ``_TRANSIENT_STATE`` tuple (e.g. decision-cache
  counters), so forgetting to checkpoint a new field is caught at lint
  time instead of after a crash.

Deliberate exemptions are annotated in source with a pragma on the
offending line::

    stream = open(path, "wb")  # staticcheck: ok[RC001] streaming .part sink

The pragma names the code it waives; an explanation is expected after
the bracket.  Pragmas are per-line, so a new violation nearby still
fires.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from repro.staticcheck.diagnostics import Diagnostic, Severity

__all__ = ["CheckContext", "lint_file", "lint_package", "lint_tree", "collect_pragmas"]

_PRAGMA_RE = re.compile(r"#.*staticcheck:\s*ok\[([A-Z0-9,\s]+)\]")

# Files allowed to open files for writing directly: the atomic-write
# primitive itself.
_RC001_EXEMPT_FILES = ("robustness/atomic.py",)

_WRITE_METHOD_NAMES = frozenset({"write_text", "write_bytes"})
_UNSEEDED_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "expovariate", "betavariate",
        "paretovariate", "lognormvariate", "vonmisesvariate", "normalvariate",
        "triangular", "getrandbits",
    }
)
_RESTORE_METHODS = ("restore_state", "from_state")


def collect_pragmas(source: str) -> dict[int, set[str]]:
    """Map line number -> codes waived on that line."""
    pragmas: dict[int, set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
            pragmas[line_no] = codes
    return pragmas


@dataclass(slots=True)
class CheckContext:
    path: str
    rel_path: str
    pragmas: dict[int, set[str]]
    findings: list[Diagnostic]

    def report(
        self,
        code: str,
        message: str,
        node: ast.AST,
        *,
        subject: str = "",
        severity: Severity | None = None,
    ) -> None:
        line = getattr(node, "lineno", 0)
        end_line = getattr(node, "end_lineno", None) or line
        # A pragma suppresses on any line of the statement, or on a
        # comment line directly above it.
        for pragma_line in range(max(1, line - 1), end_line + 1):
            if code in self.pragmas.get(pragma_line, ()):
                return
        self.findings.append(
            Diagnostic.build(
                code,
                message,
                source=self.rel_path,
                line=line,
                subject=subject or message,
                severity=severity,
            )
        )


# -- RC001: writes bypassing atomic.py --------------------------------------


def _is_write_mode(mode: str) -> bool:
    return any(flag in mode for flag in ("w", "a", "x", "+"))


def _check_rc001(tree: ast.AST, ctx: CheckContext) -> None:
    if ctx.rel_path.endswith(_RC001_EXEMPT_FILES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode: str | None = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                if isinstance(node.args[1].value, str):
                    mode = node.args[1].value
            for keyword in node.keywords:
                if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                    if isinstance(keyword.value.value, str):
                        mode = keyword.value.value
            if mode is not None and _is_write_mode(mode):
                ctx.report(
                    "RC001",
                    f"open(..., {mode!r}) bypasses robustness/atomic.py — "
                    "a crash mid-write publishes a torn file",
                    node,
                    subject=f"open:{mode}",
                )
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_METHOD_NAMES:
            ctx.report(
                "RC001",
                f".{func.attr}() bypasses robustness/atomic.py — "
                "a crash mid-write publishes a torn file",
                node,
                subject=func.attr,
            )


# -- RC002: broad exception handlers ----------------------------------------


def _broad_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return ["<bare>"]
    names = []
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in ("Exception", "BaseException"):
            names.append(candidate.id)
    return names


def _check_rc002(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_names(node.type)
        if not broad:
            continue
        bare = broad == ["<bare>"]
        ctx.report(
            "RC002",
            ("bare except:" if bare else f"except {'/'.join(broad)}:")
            + " swallows errors outside ErrorPolicy accounting — catch "
            "specific exceptions or route through the error policy",
            node,
            subject="bare-except" if bare else "broad-except",
            severity=Severity.ERROR if bare else Severity.WARNING,
        )


# -- RC003: nondeterminism hazards ------------------------------------------


def _check_rc003(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        if isinstance(value, ast.Name) and value.id == "random":
            if func.attr in _UNSEEDED_RANDOM_FUNCS:
                ctx.report(
                    "RC003",
                    f"random.{func.attr}() uses the unseeded process-global "
                    "RNG — derive a random.Random(seed) instead "
                    "(checkpoint resume must replay identically)",
                    node,
                    subject=f"random.{func.attr}",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                ctx.report(
                    "RC003",
                    "random.Random() with no seed is nondeterministic — "
                    "pass an explicit seed",
                    node,
                    subject="random.Random",
                )
        elif isinstance(value, ast.Name) and value.id == "time" and func.attr == "time":
            ctx.report(
                "RC003",
                "time.time() in library code makes runs irreproducible — "
                "take timestamps from the trace/records instead",
                node,
                subject="time.time",
            )
        elif func.attr in ("now", "utcnow") and isinstance(value, ast.Name) and value.id in (
            "datetime",
            "date",
        ):
            ctx.report(
                "RC003",
                f"{value.id}.{func.attr}() reads the wall clock — "
                "library code must be replayable",
                node,
                subject=f"{value.id}.{func.attr}",
            )


# -- RC004: export/restore state drift --------------------------------------


def _dict_literal_keys(node: ast.expr) -> set[str] | None:
    """Top-level string keys of a dict literal, or None if not one."""
    if not isinstance(node, ast.Dict):
        return None
    keys: set[str] = set()
    for key in node.keys:
        if key is None:
            return None  # ** splat: key set not statically known
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None
    return keys


def _export_keys(func: ast.FunctionDef) -> set[str] | None:
    """Keys of the dict literal(s) ``export_state`` returns."""
    keys: set[str] | None = None
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            literal = _dict_literal_keys(node.value)
            if literal is None:
                return None  # delegating/dynamic export: skip the class
            keys = literal if keys is None else keys | literal
    return keys


class _RestoreScan(ast.NodeVisitor):
    """Collect keys the restore method reads off its state parameter."""

    def __init__(self, param: str) -> None:
        self.param = param
        self.keys: set[str] = set()
        self.consumes_all = False

    def _is_state(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == self.param

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_state(node.value) and isinstance(node.slice, ast.Constant):
            if isinstance(node.slice.value, str):
                self.keys.add(node.slice.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and self._is_state(func.value)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.keys.add(node.args[0].value)
        for keyword in node.keywords:
            if keyword.arg is None:  # **splat
                value = keyword.value
                if self._is_state(value):
                    self.consumes_all = True
                else:
                    # **{... for ... in state.items()} comprehensions
                    for inner in ast.walk(value):
                        if self._is_state(inner):
                            self.consumes_all = True
        self.generic_visit(node)


def _check_rc004_consumer(
    ctx: CheckContext,
    class_node: ast.ClassDef,
    consumer: ast.FunctionDef,
    export: ast.FunctionDef,
    exported: set[str],
) -> None:
    """Check one state-consuming method against the export key set."""
    if len(consumer.args.args) < 2:
        return
    scan = _RestoreScan(consumer.args.args[1].arg)
    scan.visit(consumer)
    consumed = scan.keys

    missing = consumed - exported
    if missing:
        ctx.report(
            "RC004",
            f"{class_node.name}.{consumer.name} reads key(s) "
            f"{sorted(missing)} that {class_node.name}.{export.name} never "
            "writes — resume would crash or silently default",
            consumer,
            subject=f"{class_node.name}:{consumer.name}:{','.join(sorted(missing))}",
        )
    unconsumed = exported - consumed
    if unconsumed and not scan.consumes_all:
        ctx.report(
            "RC004",
            f"{class_node.name}.{export.name} writes key(s) "
            f"{sorted(unconsumed)} that {class_node.name}.{consumer.name} "
            "never reads — state is silently dropped on resume",
            export,
            subject=f"{class_node.name}:{consumer.name}:{','.join(sorted(unconsumed))}",
            severity=Severity.WARNING,
        )


def _is_dataclass(class_node: ast.ClassDef) -> bool:
    for decorator in class_node.decorator_list:
        name = decorator
        if isinstance(name, ast.Call):
            name = name.func
        if isinstance(name, ast.Attribute) and name.attr == "dataclass":
            return True
        if isinstance(name, ast.Name) and name.id == "dataclass":
            return True
    return False


def _dataclass_field_names(class_node: ast.ClassDef) -> set[str]:
    """Public annotated fields of a dataclass body (its state surface)."""
    fields: set[str] = set()
    for item in class_node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
            continue
        annotation = item.annotation
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if isinstance(base, ast.Name) and base.id == "ClassVar":
                continue
        name = item.target.id
        if not name.startswith("_"):
            fields.add(name)
    return fields


def _transient_declaration(class_node: ast.ClassDef) -> tuple[set[str], ast.AST | None]:
    """Names listed in a ``_TRANSIENT_STATE`` class attribute, if any."""
    for item in class_node.body:
        if not isinstance(item, ast.Assign) or len(item.targets) != 1:
            continue
        target = item.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "_TRANSIENT_STATE"):
            continue
        names: set[str] = set()
        if isinstance(item.value, (ast.Tuple, ast.List, ast.Set)):
            for element in item.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
        return names, item
    return set(), None


def _check_rc004_fields(
    ctx: CheckContext,
    class_node: ast.ClassDef,
    export: ast.FunctionDef,
    exported: set[str],
) -> None:
    """Dataclass fields must be exported or *declared* transient.

    A field added to a checkpointable dataclass but forgotten in
    ``export_state`` silently resets on resume.  Genuinely process-local
    fields (e.g. cache effectiveness counters) opt out explicitly via a
    ``_TRANSIENT_STATE`` tuple, which makes the exemption reviewable —
    and contradictions (declared transient yet exported) are errors.
    """
    if not _is_dataclass(class_node):
        return  # attribute surface not statically enumerable
    fields = _dataclass_field_names(class_node)
    if not fields:
        return
    transient, declaration = _transient_declaration(class_node)
    contradictions = transient & exported
    if contradictions and declaration is not None:
        ctx.report(
            "RC004",
            f"{class_node.name}._TRANSIENT_STATE declares "
            f"{sorted(contradictions)} transient, but export_state writes "
            "them — pick one: checkpointed state or transient observability",
            declaration,
            subject=f"{class_node.name}:transient-exported:"
            f"{','.join(sorted(contradictions))}",
        )
    phantom = transient - fields
    if phantom and declaration is not None:
        ctx.report(
            "RC004",
            f"{class_node.name}._TRANSIENT_STATE names "
            f"{sorted(phantom)} which are not fields of the dataclass — "
            "stale declaration",
            declaration,
            subject=f"{class_node.name}:transient-phantom:{','.join(sorted(phantom))}",
            severity=Severity.WARNING,
        )
    uncovered = fields - exported - transient
    if uncovered:
        ctx.report(
            "RC004",
            f"{class_node.name} field(s) {sorted(uncovered)} are neither "
            "written by export_state nor declared in _TRANSIENT_STATE — "
            "they would silently reset on resume",
            export,
            subject=f"{class_node.name}:unexported:{','.join(sorted(uncovered))}",
            severity=Severity.WARNING,
        )


def _check_rc004(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        export = methods.get("export_state")
        if export is not None:
            exported = _export_keys(export)
            if exported is not None:
                restore = next(
                    (methods[name] for name in _RESTORE_METHODS if name in methods),
                    None,
                )
                if restore is not None:
                    _check_rc004_consumer(ctx, node, restore, export, exported)
                # merge_state (shard-parallel fold, DESIGN.md §10) consumes
                # the same export payload, so it shares the drift gate.
                merge = methods.get("merge_state")
                if merge is not None:
                    _check_rc004_consumer(ctx, node, merge, export, exported)
                _check_rc004_fields(ctx, node, export, exported)
        # The engine-snapshot wire form (DESIGN.md §15) is a second
        # export/restore pair with the same failure mode: a key written
        # but never read (or read but never written) makes a restored
        # engine silently diverge from the engine that was compiled.
        snapshot_export = methods.get("export_snapshot_state")
        if snapshot_export is not None:
            exported = _export_keys(snapshot_export)
            if exported is not None:
                snapshot_restore = methods.get("restore_snapshot_state")
                if snapshot_restore is not None:
                    _check_rc004_consumer(
                        ctx, node, snapshot_restore, snapshot_export, exported
                    )


# -- RC010 (per-file half): exit-code literals ------------------------------

# The registry itself is where the numbers live.
_RC010_EXEMPT_FILES = ("exitcodes.py",)
_EXIT_CALLS = {("sys", "exit"), ("os", "_exit")}


def _check_rc010_literals(tree: ast.AST, ctx: CheckContext) -> None:
    """``sys.exit(3)`` must be ``sys.exit(EXIT_DEGRADED)``.

    A numeric literal at an exit site is invisible to the registry —
    and therefore to the README table the RC010 project-level half
    keeps honest — so the same number can silently mean two things in
    two files.  Names from :mod:`repro.exitcodes` pass; so do
    non-literal expressions (e.g. ``sys.exit(main())``).
    """
    if ctx.rel_path.endswith(_RC010_EXEMPT_FILES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _EXIT_CALLS
        ):
            continue
        argument = node.args[0]
        if isinstance(argument, ast.Constant) and isinstance(argument.value, int):
            ctx.report(
                "RC010",
                f"{func.value.id}.{func.attr}({argument.value}) uses a bare "
                "exit-code literal — use a named constant from "
                "repro.exitcodes so the registry (and the README table it "
                "gates) stays complete",
                node,
                subject=f"exit-literal:{argument.value}",
            )


# -- RC012: transient fields read in the checkpoint wire form ---------------

# export_snapshot_state is the engine-snapshot wire form (DESIGN.md §15):
# snapshot-only machinery (compiled prefilters, lazy indices, caches)
# must be declared _TRANSIENT_STATE and rebuilt after restore, never
# serialized.
_RC012_METHODS = ("export_state", "merge_state", "export_snapshot_state")


def _check_rc012(tree: ast.AST, ctx: CheckContext) -> None:
    """``_TRANSIENT_STATE`` fields must stay out of the wire form.

    Declaring a field transient (RC004) promises it never enters a
    checkpoint; *reading* it inside ``export_state`` or ``merge_state``
    breaks that promise in a way the RC004 key-set check cannot see —
    e.g. folding a transient counter into a durable one, which would
    make resumed runs diverge from fresh ones.
    """
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        transient, _declaration = _transient_declaration(class_node)
        if not transient:
            continue
        for item in class_node.body:
            if not isinstance(item, ast.FunctionDef) or item.name not in _RC012_METHODS:
                continue
            for node in ast.walk(item):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in transient
                ):
                    ctx.report(
                        "RC012",
                        f"{class_node.name}.{item.name} touches "
                        f"self.{node.attr}, which _TRANSIENT_STATE declares "
                        "process-local — transient observability must never "
                        "flow into the checkpoint wire form",
                        node,
                        subject=f"{class_node.name}:{item.name}:{node.attr}",
                    )


# -- entry points -----------------------------------------------------------


def _run_file_checks(tree: ast.AST, ctx: CheckContext) -> None:
    _check_rc001(tree, ctx)
    _check_rc002(tree, ctx)
    _check_rc003(tree, ctx)
    _check_rc004(tree, ctx)
    _check_rc010_literals(tree, ctx)
    _check_rc012(tree, ctx)


def lint_tree(source: str, *, path: str, rel_path: str) -> list[Diagnostic]:
    """Run the per-file RC checks over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic.build(
                "RC002",
                f"file does not parse: {exc}",
                source=rel_path,
                line=exc.lineno or 0,
                subject="syntax-error",
                severity=Severity.ERROR,
            )
        ]
    ctx = CheckContext(
        path=path,
        rel_path=rel_path,
        pragmas=collect_pragmas(source),
        findings=[],
    )
    _run_file_checks(tree, ctx)
    return ctx.findings


def lint_file(path: str, *, root: str | None = None) -> list[Diagnostic]:
    with open(path, encoding="utf-8") as stream:
        source = stream.read()
    rel_path = os.path.relpath(path, root) if root else path
    return lint_tree(source, path=path, rel_path=rel_path.replace(os.sep, "/"))


def lint_package(package_root: str, *, source_root: str) -> list[Diagnostic]:
    """The whole-package gate: per-file checks plus the flow-aware layer.

    Parses every module under ``package_root`` exactly once, runs the
    per-file checks on each tree, then builds the project call graph
    and runs the cross-file checks over it: RC005–RC008
    (:mod:`repro.staticcheck.asynccheck`) and RC009–RC011
    (:mod:`repro.staticcheck.protocol`).  One parse per file is what
    keeps the full self-lint inside the CI latency budget
    (``benchmarks/bench_selflint.py``).
    """
    # Local imports: asynccheck/protocol import CheckContext from here.
    from repro.staticcheck.asynccheck import check_graph
    from repro.staticcheck.callgraph import build_graph
    from repro.staticcheck.protocol import (
        check_exit_code_docs,
        check_metric_schema,
        check_worker_protocol,
    )

    findings: list[Diagnostic] = []
    contexts: dict[str, CheckContext] = {}
    triples: list[tuple[str, str, ast.Module]] = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as stream:
                source = stream.read()
            rel_path = os.path.relpath(path, source_root).replace(os.sep, "/")
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                findings.append(
                    Diagnostic.build(
                        "RC002",
                        f"file does not parse: {exc}",
                        source=rel_path,
                        line=exc.lineno or 0,
                        subject="syntax-error",
                        severity=Severity.ERROR,
                    )
                )
                continue
            ctx = CheckContext(
                path=path,
                rel_path=rel_path,
                pragmas=collect_pragmas(source),
                findings=[],
            )
            contexts[rel_path] = ctx
            triples.append((rel_path, source, tree))
            _run_file_checks(tree, ctx)

    graph = build_graph(triples)
    check_graph(graph, contexts)

    worker = graph.modules.get("repro.parallel.worker")
    runner = graph.modules.get("repro.parallel.runner")
    if worker is not None and runner is not None:
        check_worker_protocol(
            worker, runner, contexts[worker.rel_path], contexts[runner.rel_path]
        )
    modules_by_path = {module.rel_path: module for module in graph.modules.values()}
    check_metric_schema(modules_by_path, contexts)

    readme_path = os.path.join(os.path.dirname(source_root), "README.md")
    readme_ctx = CheckContext(
        path=readme_path, rel_path="README.md", pragmas={}, findings=[]
    )
    check_exit_code_docs(readme_path, readme_ctx)
    contexts["README.md"] = readme_ctx

    for rel_path in sorted(contexts):
        findings.extend(contexts[rel_path].findings)
    return findings
