"""Lint baselines: pin accepted findings so CI fails only on the diff.

A baseline is a JSON file of finding fingerprints (see
:attr:`~repro.staticcheck.diagnostics.Diagnostic.fingerprint` — they
deliberately exclude line numbers, so reordering a list or adding
comments does not churn the file).  ``repro lint --baseline FILE``
subtracts baselined findings before applying ``--fail-on``;
``--write-baseline FILE`` records the current findings as accepted.
"""

from __future__ import annotations

import json

from repro.robustness.atomic import atomic_writer
from repro.staticcheck.diagnostics import Diagnostic

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_VERSION = 1


def load_baseline(path: str) -> set[str]:
    """Fingerprints accepted by the committed baseline."""
    with open(path, encoding="utf-8") as stream:
        payload = json.load(stream)
    if payload.get("version") != _VERSION:
        raise ValueError(f"unsupported lint baseline version in {path}")
    return set(payload.get("fingerprints", ()))


def write_baseline(path: str, diagnostics: list[Diagnostic]) -> int:
    """Persist current findings as the accepted set; returns the count."""
    fingerprints = sorted({diag.fingerprint for diag in diagnostics})
    with atomic_writer(path) as stream:
        json.dump(
            {"version": _VERSION, "fingerprints": fingerprints},
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")
    return len(fingerprints)


def apply_baseline(
    diagnostics: list[Diagnostic], accepted: set[str]
) -> tuple[list[Diagnostic], int]:
    """Split findings into (new, suppressed-count)."""
    fresh = [diag for diag in diagnostics if diag.fingerprint not in accepted]
    return fresh, len(diagnostics) - len(fresh)
