"""Cross-file contract checks: wire protocols, exit codes, metric keys.

Three repo contracts live in *pairs* of artifacts that drift
independently; each check here reads both sides statically and fails on
the diff (DESIGN.md §14):

* **RC009** — the worker↔supervisor message protocol.  Every message a
  shard worker puts on the result queue is a 4-tuple
  ``(worker_id, attempt, kind, payload)``; the parent's fold loop
  dispatches on ``kind`` string equality.  A kind the worker emits but
  the parent does not dispatch is silently treated as garbage (the
  worker gets killed for it); a kind the parent dispatches but no
  worker emits is a dead arm hiding a rename.  Both directions are
  errors.  Non-literal kinds (the chaos harness's ``GARBAGE_KIND``)
  are deliberately outside the contract and skipped.
* **RC010** — process exit codes.  Every ``sys.exit(N)`` /
  ``os._exit(N)`` with a literal integer bypasses the
  :mod:`repro.exitcodes` registry (the per-file half, in
  :mod:`repro.staticcheck.codelint`); and the README's operator-facing
  exit-code table must list exactly the registry's public codes — a
  doc that omits or invents a code is a lint finding, not a review
  nit.
* **RC011** — the machine-readable metric surfaces.  The key paths
  emitted by ``ServeMetrics.snapshot`` and
  ``PipelineHealth.summary_dict`` are consumed by dashboards and the
  chaos tests; both surfaces are pinned in
  ``schemas/metrics_keys.json``.  Adding, renaming or dropping a key
  without updating the committed schema is drift in whichever
  direction it happens.
"""

from __future__ import annotations

import ast
import json
import os
import re

from repro.staticcheck.callgraph import ModuleInfo
from repro.staticcheck.codelint import CheckContext
from repro.staticcheck.diagnostics import Diagnostic

__all__ = [
    "check_worker_protocol",
    "check_exit_code_docs",
    "check_metric_schema",
    "emitted_kinds",
    "dispatched_kinds",
    "extract_key_paths",
    "SCHEMA_PATH",
]

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "schemas", "metrics_keys.json")

# The queue-put helpers on the worker side whose message argument must
# be the protocol 4-tuple, and the position that argument occupies.
_PUT_FUNCS = {"_put": 2}
# The send helper whose first argument is the message kind.
_SEND_FUNCS = {"_send": 0}

_README_ROW_RE = re.compile(r"^\|\s*\*\*(\d+)\*\*\s*\|")
_README_HEADING = "### Exit codes"


# -- RC009: worker protocol -------------------------------------------------


def _func_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def emitted_kinds(
    module: ModuleInfo, ctx: CheckContext | None = None
) -> dict[str, ast.Call]:
    """Kind literals the worker module puts on the queue.

    With a context, also enforces the 4-tuple shape on every ``_put``
    message argument (a tuple of the wrong arity would unpack-crash
    the parent's fold loop at runtime).
    """
    kinds: dict[str, ast.Call] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _func_name(node.func)
        if name in _PUT_FUNCS:
            index = _PUT_FUNCS[name]
            if index >= len(node.args):
                continue
            message = node.args[index]
            if not isinstance(message, ast.Tuple):
                continue  # forwarding a variable: shape enforced at build site
            if len(message.elts) != 4 and ctx is not None:
                ctx.report(
                    "RC009",
                    f"queue message is a {len(message.elts)}-tuple; the "
                    "worker protocol is (worker_id, attempt, kind, payload) "
                    "— the parent's fold loop unpacks exactly four",
                    message,
                    subject=f"put-arity:{len(message.elts)}",
                )
                continue
            if len(message.elts) == 4:
                kind = message.elts[2]
                if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                    kinds.setdefault(kind.value, node)
        elif name in _SEND_FUNCS:
            index = _SEND_FUNCS[name]
            if index < len(node.args):
                kind = node.args[index]
                if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                    kinds.setdefault(kind.value, node)
    return kinds


def dispatched_kinds(module: ModuleInfo) -> dict[str, ast.AST]:
    """Kind literals the supervisor-side fold loop compares against."""
    kinds: dict[str, ast.AST] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        if not (isinstance(left, ast.Name) and left.id == "kind"):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if isinstance(comparator, ast.Constant) and isinstance(
                    comparator.value, str
                ):
                    kinds.setdefault(comparator.value, node)
            elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                comparator, (ast.Tuple, ast.List, ast.Set)
            ):
                for element in comparator.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        kinds.setdefault(element.value, node)
    return kinds


def check_worker_protocol(
    worker: ModuleInfo,
    runner: ModuleInfo,
    worker_ctx: CheckContext,
    runner_ctx: CheckContext,
) -> None:
    emitted = emitted_kinds(worker, worker_ctx)
    dispatched = dispatched_kinds(runner)
    for kind in sorted(set(emitted) - set(dispatched)):
        worker_ctx.report(
            "RC009",
            f"worker emits kind {kind!r} that the supervisor's fold loop "
            "never dispatches — the parent treats it as garbage and kills "
            "the worker",
            emitted[kind],
            subject=f"kind-unhandled:{kind}",
        )
    for kind in sorted(set(dispatched) - set(emitted)):
        runner_ctx.report(
            "RC009",
            f"fold loop dispatches kind {kind!r} that no worker ever emits "
            "— dead dispatch arm, usually the fossil of a renamed kind",
            dispatched[kind],
            subject=f"kind-unemitted:{kind}",
        )


# -- RC010: README exit-code table vs the registry --------------------------


def _readme_table_codes(readme_text: str) -> tuple[dict[int, int], int]:
    """``{code: line_no}`` for rows of the README exit-code table."""
    codes: dict[int, int] = {}
    heading_line = 0
    in_table = False
    for line_no, line in enumerate(readme_text.splitlines(), start=1):
        if line.startswith(_README_HEADING):
            heading_line = line_no
            in_table = True
            continue
        if not in_table:
            continue
        match = _README_ROW_RE.match(line.strip())
        if match:
            codes.setdefault(int(match.group(1)), line_no)
        elif line.startswith("#"):  # next section: table over
            break
    return codes, heading_line


def _line_anchor(line: int) -> ast.AST:
    """A bare AST node carrying only a location, for non-Python findings."""
    return ast.Pass(lineno=line, col_offset=0, end_lineno=line, end_col_offset=0)


def check_exit_code_docs(readme_path: str, ctx: CheckContext) -> None:
    """The README table must list exactly the registry's public codes."""
    from repro.exitcodes import public_codes

    try:
        with open(readme_path, encoding="utf-8") as stream:
            readme = stream.read()
    except OSError:
        return  # no README in this install layout: nothing to drift
    documented, heading_line = _readme_table_codes(readme)
    if not documented:
        ctx.report(
            "RC010",
            f"README has no {_README_HEADING!r} table rows — the public "
            "exit-code contract (repro.exitcodes) must be documented",
            _line_anchor(0),
            subject="readme:no-table",
        )
        return
    registry = public_codes()
    for code in sorted(set(registry) - set(documented)):
        ctx.report(
            "RC010",
            f"exit code {code} ({registry[code].name}) is public in "
            "repro.exitcodes but missing from the README exit-code table "
            "— operators script against that table",
            _line_anchor(heading_line),
            subject=f"readme:missing:{code}",
        )
    for code in sorted(set(documented) - set(registry)):
        ctx.report(
            "RC010",
            f"README documents exit code {code} which is not a public code "
            "in repro.exitcodes — stale docs or an unregistered exit",
            _line_anchor(documented[code]),
            subject=f"readme:stale:{code}",
        )


# -- RC011: metric key paths vs the committed schema ------------------------


def _literal_paths(node: ast.Dict, prefix: str = "") -> set[str] | None:
    """Dotted key paths of a (possibly nested) dict literal."""
    paths: set[str] = set()
    for key, value in zip(node.keys, node.values):
        if key is None:
            return None  # ** splat: surface not statically known
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        dotted = f"{prefix}{key.value}"
        if isinstance(value, ast.Dict):
            nested = _literal_paths(value, prefix=f"{dotted}.")
            if nested is None:
                return None
            paths |= nested
        else:
            paths.add(dotted)
    return paths


def extract_key_paths(func: ast.FunctionDef) -> set[str] | None:
    """Dotted key paths the function's returned dict emits.

    Handles the two shapes the metric surfaces use: a dict literal
    assigned to a local then returned, with optional conditional
    ``data["key"] = {...}`` subscript extensions; or a dict literal
    returned directly.  Returns ``None`` when the surface is not
    statically enumerable.
    """
    returned: str | None = None
    paths: set[str] | None = None
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Name):
                returned = node.value.id
            elif isinstance(node.value, ast.Dict):
                return _literal_paths(node.value)
    if returned is None:
        return None
    for node in ast.walk(func):
        value: ast.expr | None = None
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if target is None or value is None:
            continue
        if isinstance(target, ast.Name) and target.id == returned:
            if not isinstance(value, ast.Dict):
                return None
            literal = _literal_paths(value)
            if literal is None:
                return None
            paths = literal if paths is None else paths | literal
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id == returned
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)
        ):
            key = target.slice.value
            if paths is None:
                paths = set()
            if isinstance(value, ast.Dict):
                nested = _literal_paths(value, prefix=f"{key}.")
                if nested is None:
                    return None
                paths |= nested
            else:
                paths.add(key)
    return paths


def _find_method(module: ModuleInfo, class_name: str, method: str) -> ast.FunctionDef | None:
    cls = module.classes.get(class_name)
    if cls is None or method not in cls.methods:
        return None
    node = cls.methods[method].node
    return node if isinstance(node, ast.FunctionDef) else None


def check_metric_schema(
    modules: dict[str, ModuleInfo],
    contexts: dict[str, CheckContext],
    *,
    schema_path: str = SCHEMA_PATH,
) -> None:
    """Compare each pinned metric surface against the committed schema.

    The schema maps ``"<rel_path>:<Class>.<method>"`` to the sorted
    list of dotted key paths that surface emits.
    """
    try:
        with open(schema_path, encoding="utf-8") as stream:
            schema = json.load(stream)
    except (OSError, ValueError):
        schema = None
    if not isinstance(schema, dict) or "surfaces" not in schema:
        # No schema: every pinned surface check silently passing would
        # defeat the gate, so say so once, attributed to the schema file.
        any_ctx = next(iter(contexts.values()), None)
        if any_ctx is not None:
            any_ctx.findings.append(
                Diagnostic.build(
                    "RC011",
                    f"metric key schema missing or unreadable at {schema_path} "
                    "— the RC011 gate cannot run",
                    source=os.path.relpath(schema_path),
                    subject="schema-missing",
                )
            )
        return
    for surface, pinned in sorted(schema["surfaces"].items()):
        rel_path, _, qual = surface.partition(":")
        class_name, _, method = qual.partition(".")
        module = modules.get(rel_path)
        ctx = contexts.get(rel_path)
        if module is None or ctx is None:
            continue  # surface's module not in this lint run
        func = _find_method(module, class_name, method)
        if func is None:
            ctx.report(
                "RC011",
                f"schema pins surface {qual} but {rel_path} has no such "
                "method — stale schema entry",
                module.tree,
                subject=f"{qual}:gone",
            )
            continue
        emitted = extract_key_paths(func)
        if emitted is None:
            ctx.report(
                "RC011",
                f"{qual} no longer builds its payload from dict literals — "
                "the key surface cannot be statically checked against the "
                "schema",
                func,
                subject=f"{qual}:opaque",
            )
            continue
        pinned_set = set(pinned)
        for path in sorted(emitted - pinned_set):
            ctx.report(
                "RC011",
                f"{qual} emits key {path!r} that schemas/metrics_keys.json "
                "does not pin — if the new key is intentional, update the "
                "schema in the same change",
                func,
                subject=f"{qual}:unpinned:{path}",
            )
        for path in sorted(pinned_set - emitted):
            ctx.report(
                "RC011",
                f"schema pins key {path!r} that {qual} no longer emits — "
                "consumers scraping that key now read nothing",
                func,
                subject=f"{qual}:dropped:{path}",
            )
