"""A lightweight project call graph with async-context propagation.

The flow-sensitive codebase checks (RC005–RC008, DESIGN.md §14) need to
answer questions no per-file AST walk can: *"is this blocking call
reachable from an ``async def`` without an executor hop?"* requires
following calls across functions, methods and modules.  This module
builds the minimal graph that makes those questions answerable:

* every module under the package root is parsed once and indexed:
  top-level functions, classes, methods, imports;
* call edges are resolved **conservatively** — an edge exists only when
  the target is provably a project function.  Unresolvable calls
  (stdlib, dynamic dispatch, stored callables) produce *no* edge, so
  the graph under-approximates reachability: like the FL002 containment
  engine, false negatives are acceptable, false positives are not;
* resolution covers the shapes this codebase actually uses: bare names
  (module-local and ``from x import y``), ``module.func`` through
  ``import``/``from``-aliases, ``self.method`` / ``cls.method`` within
  a class (including project base classes), ``ClassName(...)``
  constructor calls, and one level of typed attribute indirection —
  ``self.holder.adopt(...)`` resolves because ``__init__`` assigned
  ``self.holder = EngineHolder(...)`` (or annotated it with a project
  class);
* **async context** propagates along the edges: a sync function called
  (transitively) from any ``async def`` body runs on the event loop.
  Function *references* passed as arguments — ``asyncio.to_thread(fn)``,
  ``loop.run_in_executor(None, fn)``, ``Thread(target=fn)`` — are not
  calls, so an executor hop naturally terminates propagation.

The graph deliberately ignores decorators, metaclasses, and multiple
assignment of the same attribute to different classes (the last
assignment wins); each would add precision this repo does not need yet.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "BlockingOp",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "build_graph",
    "module_name_for",
    "own_nodes",
]

# Calls that block the calling thread (the RC005 primitive set): the
# event loop must never execute one outside an executor hop.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep() blocks the event loop",
    ("socket", "socket"): "socket.socket() does blocking network I/O",
    ("socket", "create_connection"): "socket.create_connection() blocks",
    ("socket", "getaddrinfo"): "socket.getaddrinfo() does blocking DNS",
    ("socket", "gethostbyname"): "socket.gethostbyname() does blocking DNS",
    ("subprocess", "run"): "subprocess.run() blocks until the child exits",
    ("subprocess", "call"): "subprocess.call() blocks until the child exits",
    ("subprocess", "check_call"): "subprocess.check_call() blocks",
    ("subprocess", "check_output"): "subprocess.check_output() blocks",
    ("subprocess", "Popen"): "subprocess.Popen() forks synchronously",
    ("os", "system"): "os.system() blocks until the shell exits",
    ("os", "popen"): "os.popen() does blocking pipe I/O",
    ("os", "wait"): "os.wait() blocks on child processes",
    ("os", "waitpid"): "os.waitpid() blocks on child processes",
}

# Blocking method calls recognized by attribute name alone.  ``.join``
# is only blocking with zero positional arguments (``thread.join()`` /
# ``proc.join(timeout=...)``) — ``"sep".join(parts)`` always passes the
# iterable positionally, so requiring zero positional args excludes the
# string method without type inference.
_BLOCKING_ATTR_CALLS = {
    "result": ".result() blocks on a concurrent future",
    "join": ".join() blocks on a thread/process",
}


@dataclass(slots=True)
class BlockingOp:
    """One blocking primitive found inside a function body."""

    node: ast.Call
    label: str  # e.g. "open" / "time.sleep"
    detail: str  # human explanation for the diagnostic


@dataclass(slots=True)
class CallSite:
    """One resolved project-internal call edge."""

    callee: str  # qualname of the target FunctionInfo
    node: ast.Call


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the project."""

    qualname: str  # "repro.serve.app:ServeApp._route"
    module: str  # dotted module name
    rel_path: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingOp] = field(default_factory=list)


@dataclass(slots=True)
class _ClassInfo:
    name: str
    bases: list[str]  # raw base-name expressions (dotted text)
    methods: dict[str, FunctionInfo]
    attr_types: dict[str, str]  # self.attr -> dotted class text


@dataclass(slots=True)
class ModuleInfo:
    """Everything the checks need to know about one parsed module."""

    module: str
    rel_path: str
    tree: ast.Module
    source: str
    # alias -> dotted target ("from repro.serve import reload as r" maps
    # "r" -> "repro.serve.reload"; "import os" maps "os" -> "os").
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)


def module_name_for(rel_path: str) -> str:
    """``repro/serve/app.py`` → ``repro.serve.app``."""
    trimmed = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    parts = trimmed.replace(os.sep, "/").split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function/lambda bodies.

    A nested ``def`` is its own execution context — usually a callback
    (signal handler, thread target, retry hook) that runs somewhere the
    enclosing function does not.  Attributing its calls and blocking
    ops to the enclosing function would poison every flow-sensitive
    check, so the scans stop at the nested ``def`` boundary.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains as text; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleScan(ast.NodeVisitor):
    """First pass: index one module's imports, functions, classes."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._class_stack: list[_ClassInfo] = []
        self._depth = 0  # nesting depth of function bodies

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.info.imports[alias.asname] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports are not used in this repo
        for alias in node.names:
            self.info.imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def _register(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        class_info = self._class_stack[-1] if self._class_stack else None
        class_name = class_info.name if class_info else None
        local = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            qualname=f"{self.info.module}:{local}",
            module=self.info.module,
            rel_path=self.info.rel_path,
            name=node.name,
            class_name=class_name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        self.info.functions[local] = info
        if class_info is not None:
            class_info.methods[node.name] = info

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth == 0:
            self._register(node)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self._depth == 0:
            self._register(node)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._depth:
            return  # classes inside functions: out of scope
        bases = [text for base in node.bases if (text := _dotted(base)) is not None]
        info = _ClassInfo(name=node.name, bases=bases, methods={}, attr_types={})
        self.info.classes[node.name] = info
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()
        self._collect_attr_types(node, info)

    def _collect_attr_types(self, node: ast.ClassDef, info: _ClassInfo) -> None:
        """``self.attr = ClassName(...)`` assignments type the attribute."""
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call):
                    text = _dotted(value.func)
                    if text is not None:
                        info.attr_types[target.attr] = text


class CallGraph:
    """The project graph: modules, functions, resolved call edges."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, rel_path: str, source: str, tree: ast.Module) -> ModuleInfo:
        info = ModuleInfo(
            module=module_name_for(rel_path), rel_path=rel_path, tree=tree, source=source
        )
        _ModuleScan(info).visit(tree)
        self.modules[info.module] = info
        for function in info.functions.values():
            self.functions[function.qualname] = function
        return info

    def finish(self) -> None:
        """Second pass: resolve call edges and scan blocking primitives."""
        for info in self.modules.values():
            for function in info.functions.values():
                self._scan_function(info, function)

    # -- resolution --------------------------------------------------------

    def _project_module(self, dotted: str) -> ModuleInfo | None:
        """The ModuleInfo a dotted path names, if it is ours."""
        if dotted in self.modules:
            return self.modules[dotted]
        return None

    def _resolve_dotted(self, info: ModuleInfo, dotted: str) -> FunctionInfo | None:
        """Resolve ``a.b.c`` text to a project function, via imports."""
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        # "from repro.serve.reload import EngineHolder" + "EngineHolder.adopt"
        # → module repro.serve.reload, symbol EngineHolder, attr adopt.
        for split in range(len(full.split("."))):
            parts = full.split(".")
            module_path = ".".join(parts[: len(parts) - split])
            symbol = ".".join(parts[len(parts) - split :])
            module = self._project_module(module_path)
            if module is None:
                continue
            if not symbol:
                return None
            if symbol in module.functions:
                return module.functions[symbol]
            # ClassName or ClassName.method inside that module
            cls_name, _, method = symbol.partition(".")
            cls = module.classes.get(cls_name)
            if cls is not None:
                if not method:
                    return cls.methods.get("__init__")
                return cls.methods.get(method)
        return None

    def _class_method(self, info: ModuleInfo, cls: _ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through project base classes (shallow MRO)."""
        seen: set[str] = set()
        stack = [(info, cls)]
        while stack:
            module, current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if name in current.methods:
                return current.methods[name]
            for base_text in current.bases:
                base = module.classes.get(base_text)
                if base is not None:
                    stack.append((module, base))
                    continue
                resolved = self._resolve_class(module, base_text)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def _resolve_class(
        self, info: ModuleInfo, dotted: str
    ) -> tuple[ModuleInfo, _ClassInfo] | None:
        """Resolve class-name text (local or imported) to its info."""
        if dotted in info.classes:
            return info, info.classes[dotted]
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self._project_module(".".join(parts[:cut]))
            if module is None:
                continue
            symbol = ".".join(parts[cut:])
            if symbol in module.classes:
                return module, module.classes[symbol]
        return None

    def resolve_call(
        self, info: ModuleInfo, function: FunctionInfo, node: ast.Call
    ) -> FunctionInfo | None:
        """The FunctionInfo a call targets, or None when not provably ours."""
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in info.functions:
                return info.functions[name]
            if name in info.classes:
                return self._class_method(info, info.classes[name], "__init__")
            if name in info.imports:
                return self._resolve_dotted(info, name)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        # self.method(...) / cls.method(...)
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            if function.class_name is None:
                return None
            cls = info.classes.get(function.class_name)
            if cls is None:
                return None
            resolved = self._class_method(info, cls, func.attr)
            if resolved is not None:
                return resolved
            return None
        # self.attr.method(...) via the attribute's constructor type
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and function.class_name is not None
        ):
            cls = info.classes.get(function.class_name)
            if cls is not None:
                attr_type = cls.attr_types.get(value.attr)
                if attr_type is not None:
                    resolved_cls = self._resolve_class(info, attr_type)
                    if resolved_cls is not None:
                        return self._class_method(*resolved_cls, func.attr)
            return None
        # module.func(...) / package.module.func(...)
        text = _dotted(func)
        if text is not None:
            return self._resolve_dotted(info, text)
        return None

    # -- blocking-primitive scan ------------------------------------------

    @staticmethod
    def _blocking_op(node: ast.Call) -> BlockingOp | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return BlockingOp(node, "open", "open() does blocking file I/O")
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                detail = _BLOCKING_MODULE_CALLS.get((value.id, func.attr))
                if detail is not None:
                    return BlockingOp(node, f"{value.id}.{func.attr}", detail)
            if func.attr in _BLOCKING_ATTR_CALLS:
                if func.attr == "join" and node.args:
                    return None  # "sep".join(iterable): the string method
                # str.join via a constant receiver, e.g. "\n".join(...)
                if isinstance(value, ast.Constant):
                    return None
                return BlockingOp(
                    node, f".{func.attr}", _BLOCKING_ATTR_CALLS[func.attr]
                )
        return None

    def _scan_function(self, info: ModuleInfo, function: FunctionInfo) -> None:
        for node in own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            blocking = self._blocking_op(node)
            if blocking is not None:
                function.blocking.append(blocking)
                continue
            target = self.resolve_call(info, function, node)
            if target is not None and target.qualname != function.qualname:
                function.calls.append(CallSite(callee=target.qualname, node=node))

    # -- async-context propagation ----------------------------------------

    def async_reachable(self) -> dict[str, tuple[str, ast.Call | None]]:
        """Functions that run on the event loop, with a witness edge.

        Returns ``{qualname: (caller_qualname, call_node)}`` for every
        function reachable from an ``async def`` body through sync call
        edges; async roots map to themselves with no node.  Awaited (or
        even unawaited) calls *to* async functions do not extend the
        walk — the async callee is its own root.  Function references
        passed to executors never created edges, so they terminate
        propagation by construction.
        """
        witness: dict[str, tuple[str, ast.Call | None]] = {}
        stack: list[str] = []
        for qualname, function in self.functions.items():
            if function.is_async:
                witness[qualname] = (qualname, None)
                stack.append(qualname)
        while stack:
            qualname = stack.pop()
            function = self.functions[qualname]
            for site in function.calls:
                callee = self.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                if site.callee not in witness:
                    witness[site.callee] = (qualname, site.node)
                    stack.append(site.callee)
        return witness


def build_graph(
    files: list[tuple[str, str, ast.Module]], *, package: str = "repro"
) -> CallGraph:
    """Build the graph from ``(rel_path, source, parsed tree)`` triples."""
    graph = CallGraph(package)
    for rel_path, source, tree in files:
        graph.add_module(rel_path, source, tree)
    graph.finish()
    return graph
