"""Filter-list linter: FL001–FL008 (``repro lint``, DESIGN.md §9.2).

The paper's entire classification (Fig 1) is only as good as the filter
lists feeding it — a dead, shadowed or pathological rule silently skews
every downstream table.  This module turns the rule semantics the
engine already implements into *diagnostics*:

========  ==========================================================
FL001     unparseable rule (syntax, bad options in strict mode)
FL002     rule shadowed by a broader rule (containment + options)
FL003     dead rule: option combination unsatisfiable
FL004     redundant duplicate after pattern/option normalization
FL005     exception rule that overlaps no blocking rule in any list
FL006     ReDoS hazard in a ``/regex/``-style rule
FL007     unknown or misused ``$option``
FL008     ``domain=`` lists the same domain included and excluded
========  ==========================================================

Cross-rule checks (FL002/FL004/FL005) run over *all* loaded lists at
once — that is how ABP runs them, one shared matcher — so shadowing
and overlap across EasyList / EasyPrivacy / acceptable-ads are seen.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.filterlist.engine import FilterEngine, RequestContext, tokenize_url
from repro.filterlist.filter import ElementHidingRule, Filter, FilterKind
from repro.filterlist.options import ContentType, OptionParseError
from repro.staticcheck.containment import filter_contains, normalize_pattern
from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.redos import analyze_regex, regex_rule_body

__all__ = ["LintedRule", "lint_texts", "lint_paths", "rule_local_diagnostics"]

# Candidate cap per rule for the shadowing scan: keeps the pairwise
# verification bounded on adversarial inputs; hitting the cap only
# costs recall, never precision.
_MAX_SHADOW_CANDIDATES = 256
_TOKEN_RE = re.compile(r"[a-z0-9%]{3,}")


@dataclass(slots=True)
class LintedRule:
    """One request-filter rule with its lint context."""

    list_name: str
    line_no: int
    text: str
    filter: Filter
    diagnosed: set[str] = field(default_factory=set)


def _diag(
    code: str, message: str, *, rule: LintedRule | None = None, source: str = "", line: int = 0, subject: str = ""
) -> Diagnostic:
    if rule is not None:
        source, line, subject = rule.list_name, rule.line_no, rule.text
        rule.diagnosed.add(code)
    return Diagnostic.build(code, message, source=source, line=line, subject=subject)


# -- rule-local checks (also used by lint-on-load) --------------------------


def rule_local_diagnostics(
    filter_: Filter, *, source: str = "", line: int = 0
) -> list[Diagnostic]:
    """FL003/FL006/FL007/FL008 for one parsed rule.

    These need no cross-rule context, so :mod:`repro.filterlist.lists`
    runs exactly this set when lint-on-load is enabled.
    """
    findings: list[Diagnostic] = []
    options = filter_.options

    for option in options.unknown_options:
        findings.append(
            Diagnostic.build(
                "FL007",
                f"unknown or misused $option {option!r}",
                source=source,
                line=line,
                subject=filter_.text,
            )
        )

    for conflict in options.conflicts:
        findings.append(
            Diagnostic.build(
                "FL003",
                f"dead rule: {conflict}",
                source=source,
                line=line,
                subject=filter_.text,
            )
        )
    if (
        not options.conflicts
        and options.type_mask == ContentType(0)
        and not filter_.is_exception
    ):
        findings.append(
            Diagnostic.build(
                "FL003",
                "dead rule: content-type mask is empty",
                source=source,
                line=line,
                subject=filter_.text,
            )
        )

    clashing = options.domains_include & options.domains_exclude
    if clashing:
        findings.append(
            Diagnostic.build(
                "FL008",
                "domain= includes and excludes the same domain(s): "
                + ", ".join(sorted(clashing)),
                source=source,
                line=line,
                subject=filter_.text,
            )
        )

    body = regex_rule_body(filter_.pattern)
    if body is not None:
        hazard = analyze_regex(body)
        if hazard is not None and hazard.reason == "unparseable regex":
            findings.append(
                Diagnostic.build(
                    "FL001",
                    f"unparseable rule: regex-style pattern does not compile "
                    f"({hazard.snippet})",
                    source=source,
                    line=line,
                    subject=filter_.text,
                )
            )
        elif hazard is not None:
            findings.append(
                Diagnostic.build(
                    "FL006",
                    f"ReDoS hazard: {hazard}",
                    source=source,
                    line=line,
                    subject=filter_.text,
                )
            )
    return findings


# -- cross-rule checks ------------------------------------------------------


def _normalized_key(filter_: Filter) -> tuple[object, ...]:
    """FL004 identity: canonical pattern + canonical option set."""
    options = filter_.options
    return (
        filter_.kind.value,
        normalize_pattern(filter_.pattern).lower(),
        int(options.type_mask),
        frozenset(options.domains_include),
        frozenset(options.domains_exclude),
        options.third_party,
        options.match_case,
        options.elemhide_exception,
        options.generic_hide,
    )


def _find_duplicates(rules: list[LintedRule]) -> list[Diagnostic]:
    seen: dict[tuple[object, ...], LintedRule] = {}
    findings = []
    for rule in rules:
        key = _normalized_key(rule.filter)
        first = seen.get(key)
        if first is None:
            seen[key] = rule
        else:
            findings.append(
                _diag(
                    "FL004",
                    "redundant duplicate of "
                    f"{first.list_name}:{first.line_no} [{first.text}] "
                    "after normalization",
                    rule=rule,
                )
            )
    return findings


def _pattern_tokens(pattern: str) -> list[str]:
    return _TOKEN_RE.findall(normalize_pattern(pattern).lower())


def _find_shadowed(rules: list[LintedRule]) -> list[Diagnostic]:
    """FL002 via token-indexed candidate generation + containment proof.

    A broader (containing) unanchored rule's literal segments all occur
    inside the narrower rule's pattern text, so every token of the
    broader rule is a token of the narrower one — indexing each rule
    under its rarest token and probing with *all* tokens of the
    narrower rule finds every candidate.  Token-less rules (patterns
    with no >=3-char literal run) are compared against everything.
    """
    by_kind: dict[FilterKind, list[LintedRule]] = {}
    for rule in rules:
        by_kind.setdefault(rule.filter.kind, []).append(rule)

    findings: list[Diagnostic] = []
    for group in by_kind.values():
        token_counts: dict[str, int] = {}
        rule_tokens: list[list[str]] = []
        for rule in group:
            tokens = _pattern_tokens(rule.filter.pattern)
            rule_tokens.append(tokens)
            for token in set(tokens):
                token_counts[token] = token_counts.get(token, 0) + 1

        index: dict[str, list[int]] = {}
        tokenless: list[int] = []
        for position, (rule, tokens) in enumerate(zip(group, rule_tokens)):
            if not tokens:
                tokenless.append(position)
                continue
            rarest = min(set(tokens), key=lambda t: (token_counts[t], t))
            index.setdefault(rarest, []).append(position)

        for position, (rule, tokens) in enumerate(zip(group, rule_tokens)):
            if "FL004" in rule.diagnosed:
                continue  # already reported as an exact duplicate
            candidates: list[int] = []
            seen: set[int] = set(tokenless)
            candidates.extend(tokenless)
            for token in set(tokens):
                for other in index.get(token, ()):
                    if other not in seen:
                        seen.add(other)
                        candidates.append(other)
                if len(candidates) > _MAX_SHADOW_CANDIDATES:
                    break
            for other in candidates[:_MAX_SHADOW_CANDIDATES]:
                if other == position:
                    continue
                broader = group[other]
                if "FL004" in broader.diagnosed or "FL002" in broader.diagnosed:
                    continue
                if len(broader.filter.pattern) > len(rule.filter.pattern):
                    continue  # containment needs a no-longer pattern
                if filter_contains(broader.filter, rule.filter):
                    findings.append(
                        _diag(
                            "FL002",
                            "shadowed by broader rule "
                            f"{broader.list_name}:{broader.line_no} "
                            f"[{broader.text}]: every request this rule "
                            "matches is already matched there",
                            rule=rule,
                        )
                    )
                    break
    return findings


def _witness_urls(filter_: Filter) -> list[str]:
    """Concrete URLs the exception's own pattern matches."""
    pattern = normalize_pattern(filter_.pattern)
    witnesses = []
    for filler in ("", "x"):
        text = pattern
        if text.startswith("||"):
            text = "https://" + text[2:]
        text = text.lstrip("|").rstrip("|")
        text = text.replace("*", filler).replace("^", "/")
        if "://" not in text:
            text = "https://witness.invalid/" + text.lstrip("/")
        witnesses.append(text)
    return witnesses


def _find_useless_exceptions(rules: list[LintedRule]) -> list[Diagnostic]:
    """FL005: exception rules that can whitelist nothing.

    Three progressively cheaper "is it useful?" tests; any hit clears
    the rule.  Only an exception that fails all three is reported, so
    false alarms need the rule to be textually unrelated to every
    blocking rule loaded.
    """
    blocking = [rule for rule in rules if not rule.filter.is_exception]
    exceptions = [rule for rule in rules if rule.filter.is_exception]
    if not exceptions:
        return []

    engine = FilterEngine()
    engine.add_filters([rule.filter for rule in blocking], list_name="lint")
    blocking_tokens: set[str] = set()
    for rule in blocking:
        blocking_tokens.update(_pattern_tokens(rule.filter.pattern))

    findings = []
    for rule in exceptions:
        options = rule.filter.options
        if options.is_document_exception or options.elemhide_exception or options.generic_hide:
            continue  # page-level/cosmetic exceptions need no blocking overlap
        if "FL003" in rule.diagnosed or "FL004" in rule.diagnosed:
            continue

        # 1. shared tokens make overlap plausible — benefit of the doubt.
        # 2. a witness URL built from the exception pattern gets blocked.
        tokens = set(_pattern_tokens(rule.filter.pattern))
        if tokens & blocking_tokens:
            continue
        page_host = next(iter(options.domains_include), "witness-page.invalid")
        context = RequestContext(
            content_type=_some_type(options.type_mask),
            page_url=f"https://{page_host}/",
        )
        if any(
            engine.match(url, context).is_blocked
            for url in _witness_urls(rule.filter)
        ):
            continue
        findings.append(
            _diag(
                "FL005",
                "exception whitelists nothing: no blocking rule in any "
                "loaded list overlaps this pattern",
                rule=rule,
            )
        )
    return findings


def _some_type(mask: ContentType) -> ContentType:
    for member in ContentType:
        if member & mask:
            return member
    return ContentType.SCRIPT


# -- entry points -----------------------------------------------------------


def lint_texts(named_texts: list[tuple[str, str]]) -> list[Diagnostic]:
    """Lint already-loaded list texts: ``[(name, file content), ...]``."""
    findings: list[Diagnostic] = []
    rules: list[LintedRule] = []

    for name, text in named_texts:
        for line_no, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("!") or (
                line.startswith("[") and line.endswith("]")
            ):
                continue
            if "##" in line or "#@#" in line:
                try:
                    hiding = ElementHidingRule.parse(line)
                    if not hiding.selector:
                        raise ValueError("element-hiding rule has an empty selector")
                except ValueError as exc:
                    findings.append(
                        _diag("FL001", f"unparseable rule: {exc}",
                              source=name, line=line_no, subject=line)
                    )
                continue
            try:
                filter_ = Filter.parse(line, list_name=name, lenient=True)
            except (OptionParseError, re.error, ValueError) as exc:
                findings.append(
                    _diag("FL001", f"unparseable rule: {exc}",
                          source=name, line=line_no, subject=line)
                )
                continue
            rule = LintedRule(list_name=name, line_no=line_no, text=line, filter=filter_)
            local = rule_local_diagnostics(filter_, source=name, line=line_no)
            for diagnostic in local:
                rule.diagnosed.add(diagnostic.code)
            findings.extend(local)
            rules.append(rule)

    findings.extend(_find_duplicates(rules))
    findings.extend(_find_shadowed(rules))
    findings.extend(_find_useless_exceptions(rules))
    return findings


def lint_paths(paths: list[str]) -> list[Diagnostic]:
    """Lint filter-list files from disk (one shared cross-rule pass)."""
    named_texts = []
    for path in paths:
        with open(path, encoding="utf-8", errors="replace") as stream:
            named_texts.append((path, stream.read()))
    return lint_texts(named_texts)
