"""§8.2 analysis: real-time bidding from handshake timing (Fig 7).

The HTTP handshake time (first response packet minus first request
packet) includes the server's think time; the TCP handshake time
(SYN-ACK minus SYN) is a pure network-RTT proxy.  Their difference
isolates back-end processing: exchanges that hold an auction for
~100 ms produce a distinct mode above 100 ms that regular content
lacks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import ClassifiedRequest

__all__ = ["HandshakeGapAnalysis", "handshake_gaps", "rtb_host_contributions"]


@dataclass(slots=True)
class HandshakeGapAnalysis:
    """Fig 7's two densities plus derived statistics."""

    ad_gaps_ms: list[float] = field(default_factory=list)
    nonad_gaps_ms: list[float] = field(default_factory=list)

    def density(self, *, ads: bool, bins: int = 80) -> tuple[np.ndarray, np.ndarray]:
        """Density of log10(gap ms) over [0.01 ms, 10 s]."""
        values = np.asarray(self.ad_gaps_ms if ads else self.nonad_gaps_ms, dtype=float)
        values = values[values > 0]
        if values.size == 0:
            return np.zeros(bins), np.linspace(-2, 4, bins + 1)
        histogram, edges = np.histogram(
            np.log10(values), bins=bins, range=(-2, 4), density=True
        )
        return histogram, edges

    def share_above(self, threshold_ms: float, *, ads: bool) -> float:
        values = self.ad_gaps_ms if ads else self.nonad_gaps_ms
        if not values:
            return 0.0
        return sum(1 for gap in values if gap >= threshold_ms) / len(values)

    def modes_ms(self, *, ads: bool, min_prominence: float = 0.02) -> list[float]:
        """Locations (ms) of local density maxima, Fig 7's 1/10/120."""
        histogram, edges = self.density(ads=ads)
        centers = (edges[:-1] + edges[1:]) / 2
        modes = []
        for index in range(1, len(histogram) - 1):
            if (
                histogram[index] > histogram[index - 1]
                and histogram[index] >= histogram[index + 1]
                and histogram[index] >= min_prominence
            ):
                modes.append(float(10 ** centers[index]))
        return modes


def handshake_gaps(entries: list[ClassifiedRequest]) -> HandshakeGapAnalysis:
    """Compute HTTP-minus-TCP handshake gaps split by classification."""
    analysis = HandshakeGapAnalysis()
    for entry in entries:
        http_ms = entry.record.http_handshake_ms
        if http_ms is None:
            continue
        gap = http_ms - entry.record.tcp_handshake_ms
        if gap <= 0:
            gap = 0.01  # clamp noise into the lowest bin
        if entry.is_ad:
            analysis.ad_gaps_ms.append(gap)
        else:
            analysis.nonad_gaps_ms.append(gap)
    return analysis


def rtb_host_contributions(
    entries: list[ClassifiedRequest], *, min_gap_ms: float = 90.0
) -> list[tuple[str, float]]:
    """FQDNs behind the large-gap ad requests (§8.2's manual check:
    DoubleClick ~14.5%, Mopub/Rubicon/Pubmatic/Criteo ~5% each)."""
    counts: dict[str, int] = defaultdict(int)
    total = 0
    for entry in entries:
        if not entry.is_ad:
            continue
        http_ms = entry.record.http_handshake_ms
        if http_ms is None:
            continue
        if http_ms - entry.record.tcp_handshake_ms >= min_gap_ms:
            counts[entry.record.host] += 1
            total += 1
    if total == 0:
        return []
    ranked = sorted(counts.items(), key=lambda item: item[1], reverse=True)
    return [(host, count / total) for host, count in ranked]
