"""Cross-trace consistency: RBN-1 vs RBN-2 (§7.1: "We observe the
same trend in RBN-2").

The paper uses two captures four months apart and leans on their
agreement; this module compares two classified traces on the headline
metrics and reports the deltas, so reproduction runs can make the same
argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.traffic import content_type_table, traffic_summary
from repro.core.pipeline import ClassifiedRequest

__all__ = ["TraceComparison", "compare_traces"]


@dataclass(frozen=True, slots=True)
class TraceComparison:
    """Headline metric pairs for two traces (a, b)."""

    ad_request_share: tuple[float, float]
    ad_byte_share: tuple[float, float]
    easylist_share: tuple[float, float]
    easyprivacy_share: tuple[float, float]
    non_intrusive_share: tuple[float, float]
    top_ad_mime: tuple[str, str]

    def max_relative_delta(self) -> float:
        """Largest relative disagreement across the share metrics."""
        deltas = []
        for a, b in (
            self.ad_request_share,
            self.easylist_share,
            self.easyprivacy_share,
            self.non_intrusive_share,
        ):
            reference = max(a, b, 1e-9)
            deltas.append(abs(a - b) / reference)
        return max(deltas)

    @property
    def consistent(self) -> bool:
        """Same-trend check: list ordering and leading ad MIME agree."""
        a_order = self.easylist_share[0] >= self.easyprivacy_share[0]
        b_order = self.easylist_share[1] >= self.easyprivacy_share[1]
        return a_order == b_order and self.top_ad_mime[0] == self.top_ad_mime[1]


def compare_traces(
    entries_a: list[ClassifiedRequest], entries_b: list[ClassifiedRequest]
) -> TraceComparison:
    """Compute the §7.1 metrics for both traces side by side."""
    summary_a = traffic_summary(entries_a)
    summary_b = traffic_summary(entries_b)

    def top_mime(entries: list[ClassifiedRequest]) -> str:
        rows = content_type_table(entries, top=1)
        return rows[0].content_type if rows else "-"

    return TraceComparison(
        ad_request_share=(summary_a.ad_request_share, summary_b.ad_request_share),
        ad_byte_share=(summary_a.ad_byte_share, summary_b.ad_byte_share),
        easylist_share=(summary_a.easylist_share_of_ads, summary_b.easylist_share_of_ads),
        easyprivacy_share=(
            summary_a.easyprivacy_share_of_ads,
            summary_b.easyprivacy_share_of_ads,
        ),
        non_intrusive_share=(
            summary_a.non_intrusive_share_of_ads,
            summary_b.non_intrusive_share_of_ads,
        ),
        top_ad_mime=(top_mime(entries_a), top_mime(entries_b)),
    )
