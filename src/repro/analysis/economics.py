"""Economic impact model of ad-blocking (the paper's future work).

§11: "we also plan to explore the economic impact and implications
that ad-blocking tech has for the 'free' Web."  This module implements
a first-order revenue-proxy model over the simulator's ground truth:

* every *displayed* ad impression earns its publisher CPM-priced
  revenue (category-dependent CPM, video ≫ display ≫ text);
* impressions blocked client-side earn nothing;
* acceptable-ads impressions earn, but the whitelisting programme
  takes a cut (the paper cites large players paying Adblock Plus to be
  whitelisted);
* the model reports per-category revenue, the loss attributable to
  ad-blockers, and the share recovered through the acceptable-ads
  programme.

This is a *model*, not measurement — it quantifies the mechanism the
paper's introduction describes ("as more end users adopt them,
revenues decline").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.browser.emulator import BrowserVisit
from repro.web.categories import SiteCategory
from repro.web.page import ObjectKind, PageFetch

__all__ = ["CpmModel", "RevenueReport", "revenue_of_visit", "revenue_report"]

# USD per thousand impressions, 2015-flavoured defaults.
_DEFAULT_CPMS: dict[ObjectKind, float] = {
    ObjectKind.AD_CREATIVE: 2.0,  # display banners
    ObjectKind.AD_VIDEO: 15.0,  # pre-roll video
    ObjectKind.TEXT_AD: 1.0,  # in-HTML text ads (CPC-ish proxy)
}

_CATEGORY_MULTIPLIER: dict[SiteCategory, float] = {
    SiteCategory.NEWS: 1.3,
    SiteCategory.TECHNOLOGY: 1.4,
    SiteCategory.SHOPPING: 1.6,
    SiteCategory.DATING: 1.5,
    SiteCategory.ADULT: 0.4,
    SiteCategory.FILE_SHARING: 0.3,
    SiteCategory.VIDEO_STREAMING: 1.2,
}


@dataclass(frozen=True, slots=True)
class CpmModel:
    """Impression pricing: kind-based CPM x category multiplier."""

    cpms: dict = field(default_factory=lambda: dict(_DEFAULT_CPMS))
    acceptable_ads_cut: float = 0.30  # programme fee on whitelisted ads

    def impression_value(self, kind: ObjectKind, category: SiteCategory) -> float:
        base = self.cpms.get(kind)
        if base is None:
            return 0.0
        return base * _CATEGORY_MULTIPLIER.get(category, 1.0) / 1000.0


@dataclass(slots=True)
class RevenueReport:
    """Aggregated revenue outcome over a set of visits."""

    earned: float = 0.0  # actually-displayed impressions
    blocked: float = 0.0  # value destroyed by client-side blocking
    acceptable_earned: float = 0.0  # earned via the whitelist ...
    acceptable_fees: float = 0.0  # ... minus the programme's cut
    hidden_text_ads: float = 0.0  # element-hidden in-HTML ads
    by_category: dict = field(default_factory=lambda: defaultdict(float))
    blocked_by_category: dict = field(default_factory=lambda: defaultdict(float))

    @property
    def potential(self) -> float:
        """Revenue had no blocking occurred."""
        return self.earned + self.blocked + self.hidden_text_ads

    @property
    def loss_share(self) -> float:
        potential = self.potential
        if potential == 0:
            return 0.0
        return (self.blocked + self.hidden_text_ads) / potential

    @property
    def acceptable_recovery_share(self) -> float:
        """Share of ad-block-exposed revenue kept via acceptable ads."""
        exposed = self.blocked + self.hidden_text_ads + self.acceptable_earned
        if exposed == 0:
            return 0.0
        return self.acceptable_earned / exposed


_IMPRESSION_KINDS = (ObjectKind.AD_CREATIVE, ObjectKind.AD_VIDEO)


def revenue_of_visit(
    visit: BrowserVisit, model: CpmModel | None = None
) -> RevenueReport:
    """Account one page visit's impressions."""
    model = model or CpmModel()
    page: PageFetch = visit.page
    category = page.publisher.category
    report = RevenueReport()

    from repro.filterlist.lists import ACCEPTABLE_ADS

    subscribes_acceptable = ACCEPTABLE_ADS in visit.profile.abp_lists
    # HTTPS-fetched impressions were displayed too — invisible to a
    # header trace, not to the user.
    displayed_ids = {request.obj.object_id for request in visit.requests}
    displayed_ids |= {obj.object_id for obj in visit.encrypted}
    for obj in page.objects:
        if obj.kind not in _IMPRESSION_KINDS:
            continue
        value = model.impression_value(obj.kind, category)
        if obj.object_id in displayed_ids:
            # The programme fee applies only to impressions that got
            # through *because of* the whitelist subscription.
            if obj.acceptable and subscribes_acceptable:
                fee = value * model.acceptable_ads_cut
                report.acceptable_earned += value - fee
                report.acceptable_fees += fee
                report.earned += value - fee
            else:
                report.earned += value
            report.by_category[category.value] += value
        else:
            report.blocked += value
            report.blocked_by_category[category.value] += value

    text_value = model.impression_value(ObjectKind.TEXT_AD, category)
    shown_text = page.text_ads - visit.hidden_text_ads
    report.earned += shown_text * text_value
    report.by_category[category.value] += shown_text * text_value
    report.hidden_text_ads += visit.hidden_text_ads * text_value
    return report


def revenue_report(
    visits: list[BrowserVisit], model: CpmModel | None = None
) -> RevenueReport:
    """Aggregate :func:`revenue_of_visit` over many visits."""
    model = model or CpmModel()
    total = RevenueReport()
    for visit in visits:
        partial = revenue_of_visit(visit, model)
        total.earned += partial.earned
        total.blocked += partial.blocked
        total.acceptable_earned += partial.acceptable_earned
        total.acceptable_fees += partial.acceptable_fees
        total.hidden_text_ads += partial.hidden_text_ads
        for key, value in partial.by_category.items():
            total.by_category[key] += value
        for key, value in partial.blocked_by_category.items():
            total.blocked_by_category[key] += value
    return total
