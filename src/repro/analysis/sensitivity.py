"""Sensitivity analyses for the methodology's main free parameters.

The paper fixes three knobs with limited justification; this module
sweeps them against simulator ground truth:

* the **ad-ratio threshold** (§4.3 picks 5% and notes "a slightly
  higher or lower threshold does not alter the results significantly")
  — :func:`threshold_sweep` quantifies that claim;
* **HTTPS blindness** (§10: HTTPS traffic is invisible to the
  methodology) — :func:`https_sensitivity` re-runs the study while
  growing the HTTPS share of the synthetic web;
* **Ghostery DB coverage** — how residual EasyList hits of
  Ghostery-Paranoia users (Table 1) scale with curation coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adblock_detect import classify_usage, usage_breakdown
from repro.core.pipeline import AdClassificationPipeline
from repro.core.users import aggregate_users, annotate_browsers, heavy_hitters
from repro.core.validation import ConfusionMatrix, grade_detection
from repro.trace.capture import abp_server_ips, easylist_download_clients
from repro.trace.generator import RBNTraceGenerator

__all__ = [
    "ThresholdPoint",
    "threshold_sweep",
    "HttpsPoint",
    "https_sensitivity",
    "ghostery_coverage_sweep",
]


@dataclass(frozen=True, slots=True)
class ThresholdPoint:
    """Detection quality at one ad-ratio threshold."""

    threshold: float
    class_shares: dict
    detection: ConfusionMatrix


def threshold_sweep(
    generator: RBNTraceGenerator,
    trace,
    entries,
    *,
    thresholds: tuple[float, ...] = (0.01, 0.02, 0.05, 0.08, 0.10, 0.15),
) -> list[ThresholdPoint]:
    """Sweep the indicator-1 threshold, grading against ground truth."""
    stats = aggregate_users(entries)
    annotation = annotate_browsers(heavy_hitters(stats))
    downloads = easylist_download_clients(trace.tls, abp_server_ips(generator.ecosystem))
    profiles = {
        (household.ip, device.user_agent): device.profile
        for household in generator.households
        for device in household.devices
    }

    points = []
    for threshold in thresholds:
        usages = classify_usage(
            list(annotation.browsers.values()), downloads, threshold=threshold
        )
        rows = usage_breakdown(usages)
        shares = {row.usage_type: row.instance_share for row in rows}
        points.append(
            ThresholdPoint(
                threshold=threshold,
                class_shares=shares,
                detection=grade_detection(usages, profiles),
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class HttpsPoint:
    """Methodology output at one HTTPS deployment level."""

    https_share: float
    observed_requests: int
    ad_request_share: float
    likely_abp_share: float


def https_sensitivity(
    make_generator,
    *,
    https_shares: tuple[float, ...] = (0.0, 0.12, 0.3, 0.5, 0.7),
) -> list[HttpsPoint]:
    """Re-run generation+classification while growing HTTPS adoption.

    ``make_generator(https_share) -> RBNTraceGenerator`` builds a fresh
    generator whose ecosystem has the given HTTPS landing-page share.
    As HTTPS grows the vantage point observes fewer requests and the
    classification covers a shrinking slice of reality — §10's core
    limitation, quantified.
    """
    points = []
    for share in https_shares:
        generator = make_generator(share)
        trace = generator.generate()
        pipeline = AdClassificationPipeline(generator.lists)
        entries = pipeline.process(trace.http)
        ads = sum(1 for entry in entries if entry.is_ad)

        stats = aggregate_users(entries)
        annotation = annotate_browsers(heavy_hitters(stats))
        downloads = easylist_download_clients(
            trace.tls, abp_server_ips(generator.ecosystem)
        )
        usages = classify_usage(list(annotation.browsers.values()), downloads)
        likely = sum(1 for usage in usages if usage.likely_adblock)
        points.append(
            HttpsPoint(
                https_share=share,
                observed_requests=len(entries),
                ad_request_share=ads / len(entries) if entries else 0.0,
                likely_abp_share=likely / len(usages) if usages else 0.0,
            )
        )
    return points


def ghostery_coverage_sweep(
    ecosystem,
    lists,
    *,
    coverages: tuple[float, ...] = (0.2, 0.5, 0.8, 1.0),
    n_sites: int = 60,
) -> list[tuple[float, int]]:
    """Residual EasyList hits of a Ghostery-Paranoia crawl vs coverage.

    Returns (coverage, EL hits in the crawl's classified traffic).
    At coverage 1.0 the residual collapses towards AdBP-Pa's level;
    at low coverage Ghostery barely dents the ad traffic.
    """
    from repro.browser.crawler import Crawler
    from repro.browser.ghostery import GhosteryDatabase
    from repro.browser.profiles import profile_by_name

    pipeline = AdClassificationPipeline(lists)
    results = []
    for coverage in coverages:
        crawler = Crawler(
            ecosystem, lists, seed=4, profiles=(profile_by_name("Ghostery-Pa"),)
        )
        crawler._ghostery = GhosteryDatabase.from_ecosystem(
            ecosystem, ad_coverage=coverage, tracker_coverage=coverage
        )
        crawl = crawler.crawl(n_sites=n_sites)
        entries = pipeline.process(crawl["Ghostery-Pa"].records.http)
        hits = sum(
            1 for entry in entries
            if (entry.blacklist_name or "").startswith("easylist")
        )
        results.append((coverage, hits))
    return results
