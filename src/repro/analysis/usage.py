"""§6 analyses: Fig 3 heat map, Fig 4 ECDF, Table 3, §6.3 configs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.adblock_detect import UserUsage, usage_breakdown
from repro.core.users import UserStats
from repro.http.useragent import BrowserFamily

__all__ = [
    "HeatmapData",
    "request_heatmap",
    "EcdfSeries",
    "ad_ratio_ecdf",
    "AnnotationCoverage",
    "annotation_coverage",
    "ActiveUserSeries",
    "active_users_timeseries",
    "mobile_share",
    "usage_table",
]


@dataclass(slots=True)
class HeatmapData:
    """Fig 3: per-pair (total requests, ad requests) on log-log axes."""

    total_requests: list[int] = field(default_factory=list)
    ad_requests: list[int] = field(default_factory=list)

    def log_bins(self, n_bins: int = 40) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """2-D histogram in log space (the heat map itself)."""
        x = np.log10(np.asarray(self.total_requests, dtype=float) + 1.0)
        y = np.log10(np.asarray(self.ad_requests, dtype=float) + 1.0)
        histogram, x_edges, y_edges = np.histogram2d(x, y, bins=n_bins)
        return histogram, x_edges, y_edges

    @property
    def overall_ad_share(self) -> float:
        total = sum(self.total_requests)
        if total == 0:
            return 0.0
        return sum(self.ad_requests) / total


def request_heatmap(stats: dict, *, include_all_pairs: bool = True) -> HeatmapData:
    """Build Fig 3's data from per-user statistics (all pairs)."""
    data = HeatmapData()
    for user_stats in stats.values():
        data.total_requests.append(user_stats.requests)
        data.ad_requests.append(user_stats.ad_requests)
    return data


@dataclass(slots=True)
class EcdfSeries:
    """One ECDF line of Fig 4 (a browser family)."""

    label: str
    values: list[float]

    def ecdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted values, cumulative probability)."""
        xs = np.sort(np.asarray(self.values, dtype=float))
        ys = np.arange(1, len(xs) + 1) / max(1, len(xs))
        return xs, ys

    def share_below(self, threshold: float) -> float:
        if not self.values:
            return 0.0
        return sum(1 for value in self.values if value < threshold) / len(self.values)


_FIG4_FAMILIES = (
    (BrowserFamily.FIREFOX, "Firefox (PC)"),
    (BrowserFamily.SAFARI, "Safari (PC)"),
    (BrowserFamily.CHROME, "Chrome (PC)"),
    (BrowserFamily.IE, "IE (PC)"),
    (BrowserFamily.MOBILE, "Any (Mobile)"),
)


def ad_ratio_ecdf(by_family: dict[BrowserFamily, list[UserStats]]) -> list[EcdfSeries]:
    """Fig 4: percentage of ad requests per active browser, by family."""
    series = []
    for family, label in _FIG4_FAMILIES:
        members = by_family.get(family, [])
        series.append(
            EcdfSeries(label=label, values=[100.0 * s.ad_ratio for s in members])
        )
    return series


@dataclass(slots=True)
class ActiveUserSeries:
    """§7.1's second explanation: per-hour active users by class.

    At peak time active non-blockers outnumber active Adblock Plus
    users ~2:1; during off-hours the counts are roughly equal — which
    bends the trace-wide ad-request share into a diurnal curve.
    """

    bin_seconds: float
    start_ts: float
    adblock_active: list[int] = field(default_factory=list)
    plain_active: list[int] = field(default_factory=list)

    def ratio(self, index: int) -> float:
        blockers = self.adblock_active[index]
        if blockers == 0:
            return float("inf") if self.plain_active[index] else 1.0
        return self.plain_active[index] / blockers

    def peak_vs_offpeak(self) -> tuple[float, float]:
        """(ratio at the busiest hour, ratio at the quietest hour)."""
        totals = [a + p for a, p in zip(self.adblock_active, self.plain_active)]
        if not totals:
            return (1.0, 1.0)
        peak = max(range(len(totals)), key=totals.__getitem__)
        quiet_candidates = [i for i, t in enumerate(totals) if t > 0]
        quiet = min(quiet_candidates, key=totals.__getitem__) if quiet_candidates else peak
        return self.ratio(peak), self.ratio(quiet)


def active_users_timeseries(
    entries,
    usages: list[UserUsage],
    *,
    bin_seconds: float = 3600.0,
) -> ActiveUserSeries:
    """Count per-hour *active* likely-ABP vs plain users.

    A user is active in a bin if they issued at least one request in
    it.  ``usages`` supplies the class labels; users outside the
    classified set are ignored.
    """
    label_by_user = {usage.stats.user: usage.usage_type for usage in usages}
    if not entries:
        return ActiveUserSeries(bin_seconds=bin_seconds, start_ts=0.0)
    start = min(entry.record.ts for entry in entries)
    end = max(entry.record.ts for entry in entries)
    n_bins = int((end - start) // bin_seconds) + 1
    adblock_bins: list[set] = [set() for _ in range(n_bins)]
    plain_bins: list[set] = [set() for _ in range(n_bins)]
    for entry in entries:
        label = label_by_user.get(entry.user)
        if label is None:
            continue
        index = int((entry.record.ts - start) // bin_seconds)
        if label == "C":
            adblock_bins[index].add(entry.user)
        elif label == "A":
            plain_bins[index].add(entry.user)
    return ActiveUserSeries(
        bin_seconds=bin_seconds,
        start_ts=start,
        adblock_active=[len(users) for users in adblock_bins],
        plain_active=[len(users) for users in plain_bins],
    )


def mobile_share(annotation, *, total_requests: int, total_ads: int) -> tuple[float, float]:
    """§6.1: mobile browsers' share of requests and of ad requests
    (the paper reports 5.9% for both)."""
    mobile_requests = sum(s.requests for s in annotation.mobile.values())
    mobile_ads = sum(s.ad_requests for s in annotation.mobile.values())
    return (
        mobile_requests / total_requests if total_requests else 0.0,
        mobile_ads / total_ads if total_ads else 0.0,
    )


@dataclass(frozen=True, slots=True)
class AnnotationCoverage:
    """§6.1's coverage numbers for the browser annotation step."""

    browsers: int
    heavy_hitter_browsers: int
    request_share: float  # share of all requests from browsers
    ad_request_share: float  # share of all ad requests from browsers
    heavy_request_share: float
    heavy_ad_request_share: float


def annotation_coverage(
    stats: dict,
    browsers: dict,
    heavy_browsers: dict,
    *,
    total_requests: int | None = None,
    total_ads: int | None = None,
) -> AnnotationCoverage:
    """Compute §6.1's shares: annotated browsers generate 57.2% of the
    requests and 82.2% of the ad requests; heavy hitters alone 50.6%
    and 72.5%.

    Args:
        stats: all per-user stats (the full pair population).
        browsers: the annotated browser subset (all activity levels).
        heavy_browsers: the active (heavy hitter) browser subset.
    """
    if total_requests is None:
        total_requests = sum(s.requests for s in stats.values()) or 1
    if total_ads is None:
        total_ads = sum(s.ad_requests for s in stats.values()) or 1
    return AnnotationCoverage(
        browsers=len(browsers),
        heavy_hitter_browsers=len(heavy_browsers),
        request_share=sum(s.requests for s in browsers.values()) / total_requests,
        ad_request_share=sum(s.ad_requests for s in browsers.values()) / total_ads,
        heavy_request_share=sum(s.requests for s in heavy_browsers.values()) / total_requests,
        heavy_ad_request_share=sum(s.ad_requests for s in heavy_browsers.values()) / total_ads,
    )


def usage_table(
    usages: list[UserUsage], *, total_requests: int, total_ads: int
) -> list[dict]:
    """Table 3 rows as plain dicts (render with analysis.report)."""
    rows = usage_breakdown(usages, total_requests=total_requests, total_ads=total_ads)
    table = []
    for row in rows:
        table.append(
            {
                "Type": row.usage_type,
                "Ratio": "yes" if row.usage_type in ("C", "D") else "no",
                "EasyList": "yes" if row.usage_type in ("B", "C") else "no",
                "Instances": f"{100 * row.instance_share:.1f}%",
                "% requests": f"{100 * row.request_share:.1f}%",
                "% ad reqs.": f"{100 * row.ad_request_share:.1f}%",
            }
        )
    return table
