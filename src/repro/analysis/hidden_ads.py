"""Hidden (element-hidden) ads: what the passive methodology misses.

§3.1/§10: text ads embedded in the main HTML generate no request of
their own — Adblock Plus hides them with CSS and a header-trace
vantage point can neither see nor count them.  With the simulator's
ground truth we can quantify the blind spot: how much ad *exposure*
(impressions shown to non-blocking users) is invisible to the paper's
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.emulator import BrowserVisit
from repro.web.page import ObjectKind

__all__ = ["HiddenAdReport", "hidden_ad_report"]


@dataclass(frozen=True, slots=True)
class HiddenAdReport:
    """Exposure accounting over a set of visits."""

    request_borne_impressions: int  # creatives/videos actually fetched
    text_ad_impressions: int  # in-HTML ads displayed (no request)
    text_ads_hidden: int  # in-HTML ads element-hidden by ABP
    pages: int

    @property
    def invisible_share(self) -> float:
        """Share of displayed impressions the header trace never sees."""
        displayed = self.request_borne_impressions + self.text_ad_impressions
        if displayed == 0:
            return 0.0
        return self.text_ad_impressions / displayed

    @property
    def hiding_rate(self) -> float:
        total_text = self.text_ad_impressions + self.text_ads_hidden
        if total_text == 0:
            return 0.0
        return self.text_ads_hidden / total_text


_IMPRESSION_KINDS = (ObjectKind.AD_CREATIVE, ObjectKind.AD_VIDEO)


def hidden_ad_report(visits: list[BrowserVisit]) -> HiddenAdReport:
    """Account request-borne vs in-HTML ad impressions per visit."""
    request_borne = 0
    text_shown = 0
    text_hidden = 0
    for visit in visits:
        request_borne += sum(
            1 for request in visit.requests if request.obj.kind in _IMPRESSION_KINDS
        )
        text_hidden += visit.hidden_text_ads
        text_shown += visit.page.text_ads - visit.hidden_text_ads
    return HiddenAdReport(
        request_borne_impressions=request_borne,
        text_ad_impressions=text_shown,
        text_ads_hidden=text_hidden,
        pages=len(visits),
    )
