"""§7.3 analyses: the non-intrusive-ads whitelist in the wild."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.pipeline import ClassifiedRequest
from repro.filterlist.lists import ACCEPTABLE_ADS, EASYPRIVACY
from repro.http.url import hostname_of
from repro.web.ecosystem import Ecosystem

__all__ = [
    "WhitelistSummary",
    "whitelist_summary",
    "DomainWhitelistRow",
    "publisher_whitelist_table",
    "adtech_whitelist_table",
]


@dataclass(frozen=True, slots=True)
class WhitelistSummary:
    """§7.3's headline ratios."""

    ad_requests: int
    whitelisted: int
    whitelisted_and_blacklisted: int
    whitelisted_blacklist_ep: int  # would-be-blocked by EasyPrivacy
    easylist_aa_ads: int  # ads ignoring EasyPrivacy hits

    @property
    def whitelisted_share_of_ads(self) -> float:
        """Paper: 9.2% of ad requests match the whitelist."""
        return self.whitelisted / self.ad_requests if self.ad_requests else 0.0

    @property
    def whitelisted_share_of_easylist_aa(self) -> float:
        """Paper: 15.3% when restricted to EasyList + acceptable ads."""
        if not self.easylist_aa_ads:
            return 0.0
        return self.whitelisted / self.easylist_aa_ads

    @property
    def blacklisted_share_of_whitelisted(self) -> float:
        """Paper: only 57.3% of whitelisted requests would otherwise be
        blocked (the rest match overly general rules)."""
        return self.whitelisted_and_blacklisted / self.whitelisted if self.whitelisted else 0.0

    @property
    def easyprivacy_share_of_blacklisted_whitelisted(self) -> float:
        """Paper: 23.2% of those would be filtered by EasyPrivacy."""
        if not self.whitelisted_and_blacklisted:
            return 0.0
        return self.whitelisted_blacklist_ep / self.whitelisted_and_blacklisted


def whitelist_summary(entries: list[ClassifiedRequest]) -> WhitelistSummary:
    ad_requests = whitelisted = both = both_ep = easylist_aa = 0
    for entry in entries:
        classification = entry.classification
        if not classification.is_ad:
            continue
        ad_requests += 1
        blacklist = classification.blacklist_name or ""
        is_whitelisted = classification.whitelist_name == ACCEPTABLE_ADS
        if is_whitelisted or blacklist != EASYPRIVACY:
            easylist_aa += 1
        if is_whitelisted:
            whitelisted += 1
            if classification.is_blacklisted:
                both += 1
                if EASYPRIVACY in classification.blacklist_lists:
                    both_ep += 1
    return WhitelistSummary(
        ad_requests=ad_requests,
        whitelisted=whitelisted,
        whitelisted_and_blacklisted=both,
        whitelisted_blacklist_ep=both_ep,
        easylist_aa_ads=easylist_aa,
    )


@dataclass(slots=True)
class DomainWhitelistRow:
    """Per-domain blacklist/whitelist counts (§7.3 publishers/ad-tech)."""

    domain: str
    category: str
    blacklisted: int = 0
    whitelisted: int = 0

    @property
    def whitelist_share(self) -> float:
        return self.whitelisted / self.blacklisted if self.blacklisted else 0.0


def publisher_whitelist_table(
    entries: list[ClassifiedRequest],
    *,
    min_blacklisted: int = 1000,
    ecosystem: Ecosystem | None = None,
) -> list[DomainWhitelistRow]:
    """Publishers (page FQDNs) ranked by blacklisted requests, with the
    share rescued by the whitelist.  Only whitelisted requests that
    match the blacklist count (the paper's footnote on list accuracy).
    """
    blacklisted: dict[str, int] = defaultdict(int)
    whitelisted: dict[str, int] = defaultdict(int)
    for entry in entries:
        classification = entry.classification
        if not classification.is_blacklisted:
            continue
        page_host = hostname_of(entry.page_url)
        blacklisted[page_host] += 1
        if classification.whitelist_name == ACCEPTABLE_ADS:
            whitelisted[page_host] += 1

    rows = []
    for domain, count in blacklisted.items():
        if count < min_blacklisted:
            continue
        category = ""
        if ecosystem is not None:
            publisher = ecosystem.publisher_by_domain(domain)
            if publisher is not None:
                category = publisher.category.value
        rows.append(
            DomainWhitelistRow(
                domain=domain,
                category=category,
                blacklisted=count,
                whitelisted=whitelisted.get(domain, 0),
            )
        )
    rows.sort(key=lambda row: row.blacklisted, reverse=True)
    return rows


def adtech_whitelist_table(
    entries: list[ClassifiedRequest], *, min_blacklisted: int = 10_000
) -> list[DomainWhitelistRow]:
    """Ad-tech serving FQDNs ranked by blacklisted requests (§7.3)."""
    blacklisted: dict[str, int] = defaultdict(int)
    whitelisted: dict[str, int] = defaultdict(int)
    for entry in entries:
        classification = entry.classification
        if not classification.is_blacklisted:
            continue
        host = entry.record.host
        blacklisted[host] += 1
        if classification.whitelist_name == ACCEPTABLE_ADS:
            whitelisted[host] += 1

    rows = [
        DomainWhitelistRow(
            domain=domain,
            category="ad-tech",
            blacklisted=count,
            whitelisted=whitelisted.get(domain, 0),
        )
        for domain, count in blacklisted.items()
        if count >= min_blacklisted
    ]
    rows.sort(key=lambda row: row.blacklisted, reverse=True)
    return rows
