"""§7.1-§7.2 analyses: Fig 5 time series, Table 4, Fig 6 size PDFs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.content_type import mime_class
from repro.core.pipeline import ClassifiedRequest
from repro.filterlist.lists import ACCEPTABLE_ADS, EASYLIST, EASYPRIVACY

__all__ = [
    "TimeSeries",
    "ad_timeseries",
    "ContentTypeRow",
    "content_type_table",
    "SizeDistribution",
    "object_size_distributions",
    "traffic_summary",
    "TrafficAccumulator",
]


@dataclass(slots=True)
class TimeSeries:
    """Fig 5: hourly request counts by classification bucket."""

    bin_seconds: float
    start_ts: float
    # Bucket name -> list of per-bin counts.
    requests: dict[str, list[int]] = field(default_factory=dict)
    bytes: dict[str, list[int]] = field(default_factory=dict)

    @property
    def n_bins(self) -> int:
        if not self.requests:
            return 0
        return len(next(iter(self.requests.values())))

    def share(self, bucket: str, of: tuple[str, ...] | None = None, *, by_bytes: bool = False) -> list[float]:
        """Per-bin share of a bucket among all buckets (Fig 5b)."""
        source = self.bytes if by_bytes else self.requests
        series = source.get(bucket, [])
        totals = [0] * self.n_bins
        for counts in source.values():
            for index, value in enumerate(counts):
                totals[index] += value
        return [
            value / total if total else 0.0 for value, total in zip(series, totals)
        ]


_BUCKETS = ("non_ads", EASYLIST, EASYPRIVACY, "non_intrusive")


def _bucket_of(entry: ClassifiedRequest) -> str:
    classification = entry.classification
    if not classification.is_ad:
        return "non_ads"
    if classification.whitelist_name == ACCEPTABLE_ADS:
        return "non_intrusive"
    blacklist = classification.blacklist_name or ""
    if blacklist.startswith(EASYLIST):
        return EASYLIST
    if blacklist == EASYPRIVACY:
        return EASYPRIVACY
    return "non_intrusive"


def ad_timeseries(
    entries: list[ClassifiedRequest], *, bin_seconds: float = 3600.0
) -> TimeSeries:
    """Fig 5a/5b: per-hour ad and non-ad request/byte counts."""
    if not entries:
        return TimeSeries(bin_seconds=bin_seconds, start_ts=0.0)
    start = min(entry.record.ts for entry in entries)
    end = max(entry.record.ts for entry in entries)
    n_bins = int((end - start) // bin_seconds) + 1
    series = TimeSeries(bin_seconds=bin_seconds, start_ts=start)
    for bucket in _BUCKETS:
        series.requests[bucket] = [0] * n_bins
        series.bytes[bucket] = [0] * n_bins
    for entry in entries:
        index = int((entry.record.ts - start) // bin_seconds)
        bucket = _bucket_of(entry)
        series.requests[bucket][index] += 1
        series.bytes[bucket][index] += entry.bytes
    return series


@dataclass(frozen=True, slots=True)
class ContentTypeRow:
    """One row of Table 4."""

    content_type: str
    ad_request_share: float
    ad_byte_share: float
    nonad_request_share: float
    nonad_byte_share: float


def content_type_table(entries: list[ClassifiedRequest], *, top: int = 10) -> list[ContentTypeRow]:
    """Table 4: ad vs non-ad traffic split by declared Content-Type."""
    accumulator = TrafficAccumulator()
    for entry in entries:
        accumulator.add(entry)
    return accumulator.content_type_rows(top=top)


@dataclass(slots=True)
class SizeDistribution:
    """Fig 6: log-size samples per MIME class, ad vs non-ad."""

    # (ad? , mime class) -> log10 sizes
    samples: dict[tuple[bool, str], list[float]] = field(default_factory=dict)

    def density(
        self, is_ad: bool, mime_klass: str, *, bins: int = 60
    ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram-based density of log10(object size)."""
        values = np.asarray(self.samples.get((is_ad, mime_klass), []), dtype=float)
        if values.size == 0:
            return np.zeros(bins), np.linspace(0, 8, bins + 1)
        histogram, edges = np.histogram(values, bins=bins, range=(0, 8), density=True)
        return histogram, edges

    def mode_bytes(self, is_ad: bool, mime_klass: str) -> float | None:
        """Location (bytes) of the density peak — e.g. the 43-byte
        tracking-pixel spike for ad images."""
        histogram, edges = self.density(is_ad, mime_klass)
        if not histogram.any():
            return None
        peak = int(np.argmax(histogram))
        return float(10 ** ((edges[peak] + edges[peak + 1]) / 2))

    def median_bytes(self, is_ad: bool, mime_klass: str) -> float | None:
        values = self.samples.get((is_ad, mime_klass))
        if not values:
            return None
        return float(10 ** np.median(values))


_FIG6_CLASSES = ("image", "text", "video", "app")


def object_size_distributions(entries: list[ClassifiedRequest]) -> SizeDistribution:
    """Fig 6a/6b input: log sizes keyed by (ad?, MIME class)."""
    distribution = SizeDistribution()
    for entry in entries:
        size = entry.record.content_length
        if not size or size <= 0:
            continue
        klass = mime_class(entry.record.content_type)
        if klass not in _FIG6_CLASSES:
            continue
        key = (entry.is_ad, klass)
        distribution.samples.setdefault(key, []).append(float(np.log10(size)))
    return distribution


@dataclass(frozen=True, slots=True)
class TrafficSummary:
    """§7.1's headline numbers."""

    total_requests: int
    total_bytes: int
    ad_requests: int
    ad_bytes: int
    easylist_share_of_ads: float
    easyprivacy_share_of_ads: float
    non_intrusive_share_of_ads: float

    @property
    def ad_request_share(self) -> float:
        return self.ad_requests / self.total_requests if self.total_requests else 0.0

    @property
    def ad_byte_share(self) -> float:
        return self.ad_bytes / self.total_bytes if self.total_bytes else 0.0


@dataclass(slots=True)
class TrafficAccumulator:
    """Incremental fold of the §7.1 summary and Table 4 counters.

    ``traffic_summary``/``content_type_table`` fold a complete entries
    list through this; durable `repro report` runs instead :meth:`add`
    one entry at a time and checkpoint :meth:`export_state` mid-stream
    (DESIGN.md §8).  Dict insertion order (first-seen MIME among ads /
    non-ads) is part of the state — it is the Table 4 tie-break order.
    """

    total_requests: int = 0
    total_bytes: int = 0
    ad_requests: int = 0
    ad_bytes: int = 0
    by_list: dict[str, int] = field(default_factory=dict)
    ad_requests_by_mime: dict[str, int] = field(default_factory=dict)
    ad_bytes_by_mime: dict[str, int] = field(default_factory=dict)
    nonad_requests_by_mime: dict[str, int] = field(default_factory=dict)
    nonad_bytes_by_mime: dict[str, int] = field(default_factory=dict)

    def add(self, entry: ClassifiedRequest) -> None:
        size = entry.bytes
        mime = entry.record.content_type or "-"
        self.total_requests += 1
        self.total_bytes += size
        if entry.is_ad:
            self.ad_requests += 1
            self.ad_bytes += size
            bucket = _bucket_of(entry)
            self.by_list[bucket] = self.by_list.get(bucket, 0) + 1
            self.ad_requests_by_mime[mime] = self.ad_requests_by_mime.get(mime, 0) + 1
            self.ad_bytes_by_mime[mime] = self.ad_bytes_by_mime.get(mime, 0) + size
        else:
            self.nonad_requests_by_mime[mime] = self.nonad_requests_by_mime.get(mime, 0) + 1
            self.nonad_bytes_by_mime[mime] = self.nonad_bytes_by_mime.get(mime, 0) + size

    def summary(self) -> TrafficSummary:
        denominator = self.ad_requests or 1
        return TrafficSummary(
            total_requests=self.total_requests,
            total_bytes=self.total_bytes,
            ad_requests=self.ad_requests,
            ad_bytes=self.ad_bytes,
            easylist_share_of_ads=self.by_list.get(EASYLIST, 0) / denominator,
            easyprivacy_share_of_ads=self.by_list.get(EASYPRIVACY, 0) / denominator,
            non_intrusive_share_of_ads=self.by_list.get("non_intrusive", 0) / denominator,
        )

    def content_type_rows(self, *, top: int = 10) -> list[ContentTypeRow]:
        total_ad_requests = self.ad_requests or 1
        total_ad_bytes = sum(self.ad_bytes_by_mime.values()) or 1
        total_nonad_requests = sum(self.nonad_requests_by_mime.values()) or 1
        total_nonad_bytes = sum(self.nonad_bytes_by_mime.values()) or 1
        mimes = sorted(
            self.ad_requests_by_mime,
            key=lambda mime: self.ad_requests_by_mime[mime],
            reverse=True,
        )[:top]
        return [
            ContentTypeRow(
                content_type=mime,
                ad_request_share=self.ad_requests_by_mime[mime] / total_ad_requests,
                ad_byte_share=self.ad_bytes_by_mime.get(mime, 0) / total_ad_bytes,
                nonad_request_share=self.nonad_requests_by_mime.get(mime, 0) / total_nonad_requests,
                nonad_byte_share=self.nonad_bytes_by_mime.get(mime, 0) / total_nonad_bytes,
            )
            for mime in mimes
        ]

    # -- checkpoint wire form (DESIGN.md §8) ---------------------------

    def export_state(self) -> dict:
        return {
            "total_requests": self.total_requests,
            "total_bytes": self.total_bytes,
            "ad_requests": self.ad_requests,
            "ad_bytes": self.ad_bytes,
            "by_list": dict(self.by_list),
            "ad_requests_by_mime": dict(self.ad_requests_by_mime),
            "ad_bytes_by_mime": dict(self.ad_bytes_by_mime),
            "nonad_requests_by_mime": dict(self.nonad_requests_by_mime),
            "nonad_bytes_by_mime": dict(self.nonad_bytes_by_mime),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrafficAccumulator":
        return cls(**state)

    def merge_state(self, state: dict) -> None:
        """Fold a shard's exported counters into this accumulator.

        Every field is a sum over disjoint entry sets, so the fold is
        associative and commutative on the *numbers*; only dict
        insertion order (the Table 4 tie-break) depends on fold order,
        which is why the parallel runner folds shards in shard-index
        order (DESIGN.md §10).
        """
        self.total_requests += state["total_requests"]
        self.total_bytes += state["total_bytes"]
        self.ad_requests += state["ad_requests"]
        self.ad_bytes += state["ad_bytes"]
        for target, shard in (
            (self.by_list, state["by_list"]),
            (self.ad_requests_by_mime, state["ad_requests_by_mime"]),
            (self.ad_bytes_by_mime, state["ad_bytes_by_mime"]),
            (self.nonad_requests_by_mime, state["nonad_requests_by_mime"]),
            (self.nonad_bytes_by_mime, state["nonad_bytes_by_mime"]),
        ):
            for name, value in shard.items():
                target[name] = target.get(name, 0) + value


def traffic_summary(entries: list[ClassifiedRequest]) -> TrafficSummary:
    """§7.1: ad shares of requests/bytes and the per-list breakdown."""
    accumulator = TrafficAccumulator()
    for entry in entries:
        accumulator.add(entry)
    return accumulator.summary()
