"""Plain-text rendering of the reproduction's tables and figures.

Benches and examples print through these helpers so every experiment
emits the same rows/series the paper reports, in a diff-friendly form.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["render_table", "render_histogram", "render_boxplot_row", "format_pct"]


def format_pct(value: float, digits: int = 1) -> str:
    return f"{100 * value:.{digits}f}%"


def render_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render a list of same-keyed dicts as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (empty)\n"
    headers = list(rows[0].keys())
    columns = {h: [str(row.get(h, "")) for row in rows] for h in headers}
    widths = {h: max(len(h), *(len(v) for v in columns[h])) for h in headers}

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines) + "\n"


def render_histogram(
    values: np.ndarray,
    edges: np.ndarray,
    *,
    title: str = "",
    width: int = 50,
    label=lambda e: f"{e:8.2f}",
) -> str:
    """Render a histogram/density as horizontal ASCII bars."""
    lines = [title] if title else []
    peak = float(np.max(values)) if len(values) and np.max(values) > 0 else 1.0
    for index, value in enumerate(values):
        bar = "#" * int(width * value / peak)
        center = (edges[index] + edges[index + 1]) / 2
        lines.append(f"{label(center)} | {bar}")
    return "\n".join(lines) + "\n"


def render_boxplot_row(label: str, values: Sequence[float]) -> dict:
    """Five-number summary row for Fig 2-style box plots."""
    if not values:
        return {"config": label, "min": "-", "q1": "-", "median": "-", "q3": "-", "p95": "-"}
    array = np.asarray(values, dtype=float)
    return {
        "config": label,
        "min": f"{np.min(array):.2f}",
        "q1": f"{np.percentile(array, 25):.2f}",
        "median": f"{np.percentile(array, 50):.2f}",
        "q3": f"{np.percentile(array, 75):.2f}",
        "p95": f"{np.percentile(array, 95):.2f}",
    }
