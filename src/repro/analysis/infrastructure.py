"""§8.1 analyses: ad-serving infrastructure, servers and ASes (Table 5)."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import ClassifiedRequest
from repro.filterlist.lists import EASYLIST, EASYPRIVACY
from repro.web.asdb import AsDatabase

__all__ = [
    "ServerStats",
    "server_statistics",
    "AsRow",
    "as_table",
]


@dataclass(slots=True)
class ServerStats:
    """Per-server (IP) aggregates and the §8.1 derived populations."""

    requests: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    ad_requests: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    easylist_requests: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    easyprivacy_requests: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def n_servers(self) -> int:
        return len(self.requests)

    @property
    def easylist_servers(self) -> int:
        """Servers serving >=1 EasyList-classified object (29.0K)."""
        return sum(1 for count in self.easylist_requests.values() if count)

    @property
    def easyprivacy_servers(self) -> int:
        return sum(1 for count in self.easyprivacy_requests.values() if count)

    @property
    def servers_with_both(self) -> int:
        return sum(
            1
            for server in self.easylist_requests
            if self.easylist_requests[server] and self.easyprivacy_requests.get(server)
        )

    @property
    def servers_with_any_ad(self) -> int:
        return sum(1 for count in self.ad_requests.values() if count)

    def easylist_percentiles(self, quantiles=(50, 90, 95, 99)) -> dict[int, float]:
        """Distribution of EasyList objects per serving server."""
        values = [count for count in self.easylist_requests.values() if count]
        if not values:
            return {q: 0.0 for q in quantiles}
        array = np.asarray(values, dtype=float)
        return {q: float(np.percentile(array, q)) for q in quantiles}

    def easylist_mean(self) -> float:
        values = [count for count in self.easylist_requests.values() if count]
        return float(np.mean(values)) if values else 0.0

    def busiest_ad_server(self) -> tuple[str, int]:
        if not self.ad_requests:
            return ("", 0)
        server = max(self.ad_requests, key=self.ad_requests.get)
        return server, self.ad_requests[server]

    def exclusive_ad_servers(
        self, *, ad_share: float = 0.9, min_requests: int = 10
    ) -> tuple[int, float]:
        """Servers whose traffic is >= ``ad_share`` ads, and the share
        of all ad objects they deliver (paper: 10.1K servers, 32.7%)."""
        total_ads = sum(self.ad_requests.values()) or 1
        count = 0
        delivered = 0
        for server, requests in self.requests.items():
            if requests < min_requests:
                continue
            ads = self.ad_requests.get(server, 0)
            if ads / requests >= ad_share:
                count += 1
                delivered += ads
        return count, delivered / total_ads

    def tracking_servers(
        self, *, share: float = 0.9, min_requests: int = 10
    ) -> tuple[int, float]:
        """Servers serving almost only EasyPrivacy objects (3.3K, 18.8%)."""
        total_ep = sum(self.easyprivacy_requests.values()) or 1
        count = 0
        delivered = 0
        for server, requests in self.requests.items():
            if requests < min_requests:
                continue
            ep = self.easyprivacy_requests.get(server, 0)
            if ep / requests >= share:
                count += 1
                delivered += ep
        return count, delivered / total_ep


def server_statistics(entries: list[ClassifiedRequest]) -> ServerStats:
    stats = ServerStats()
    for entry in entries:
        server = entry.record.server
        stats.requests[server] += 1
        classification = entry.classification
        if classification.is_ad:
            stats.ad_requests[server] += 1
        blacklist = classification.blacklist_name or ""
        if blacklist.startswith(EASYLIST):
            stats.easylist_requests[server] += 1
        elif blacklist == EASYPRIVACY:
            stats.easyprivacy_requests[server] += 1
    return stats


@dataclass(frozen=True, slots=True)
class AsRow:
    """One row of Table 5."""

    name: str
    ad_requests: int
    ad_bytes: int
    total_requests: int
    total_bytes: int
    trace_ad_requests: int
    trace_ad_bytes: int

    @property
    def share_of_trace_ad_requests(self) -> float:
        return self.ad_requests / self.trace_ad_requests if self.trace_ad_requests else 0.0

    @property
    def share_of_trace_ad_bytes(self) -> float:
        return self.ad_bytes / self.trace_ad_bytes if self.trace_ad_bytes else 0.0

    @property
    def ad_request_ratio_within_as(self) -> float:
        return self.ad_requests / self.total_requests if self.total_requests else 0.0

    @property
    def ad_byte_ratio_within_as(self) -> float:
        return self.ad_bytes / self.total_bytes if self.total_bytes else 0.0


def as_table(
    entries: list[ClassifiedRequest], asdb: AsDatabase, *, top: int = 10
) -> list[AsRow]:
    """Table 5: top ASes by ad objects served."""
    per_as: dict[str, list[int]] = defaultdict(lambda: [0, 0, 0, 0])
    trace_ad_requests = 0
    trace_ad_bytes = 0
    for entry in entries:
        as_ = asdb.lookup(entry.record.server)
        name = as_.name if as_ else "unknown"
        counters = per_as[name]
        counters[2] += 1
        counters[3] += entry.bytes
        if entry.is_ad:
            counters[0] += 1
            counters[1] += entry.bytes
            trace_ad_requests += 1
            trace_ad_bytes += entry.bytes

    rows = [
        AsRow(
            name=name,
            ad_requests=counters[0],
            ad_bytes=counters[1],
            total_requests=counters[2],
            total_bytes=counters[3],
            trace_ad_requests=trace_ad_requests,
            trace_ad_bytes=trace_ad_bytes,
        )
        for name, counters in per_as.items()
    ]
    rows.sort(key=lambda row: row.ad_requests, reverse=True)
    return rows[:top]
