"""Evaluation analyses: one module per paper section (§6-§8)."""

from repro.analysis.hidden_ads import HiddenAdReport, hidden_ad_report
from repro.analysis.longitudinal import TraceComparison, compare_traces
from repro.analysis.economics import CpmModel, RevenueReport, revenue_of_visit, revenue_report
from repro.analysis.infrastructure import AsRow, ServerStats, as_table, server_statistics
from repro.analysis.report import format_pct, render_boxplot_row, render_histogram, render_table
from repro.analysis.sensitivity import (
    HttpsPoint,
    ThresholdPoint,
    ghostery_coverage_sweep,
    https_sensitivity,
    threshold_sweep,
)
from repro.analysis.rtb import HandshakeGapAnalysis, handshake_gaps, rtb_host_contributions
from repro.analysis.traffic import (
    ContentTypeRow,
    SizeDistribution,
    TimeSeries,
    TrafficSummary,
    ad_timeseries,
    content_type_table,
    object_size_distributions,
    traffic_summary,
)
from repro.analysis.usage import (
    EcdfSeries,
    HeatmapData,
    ad_ratio_ecdf,
    request_heatmap,
    usage_table,
)
from repro.analysis.whitelist import (
    DomainWhitelistRow,
    WhitelistSummary,
    adtech_whitelist_table,
    publisher_whitelist_table,
    whitelist_summary,
)

__all__ = [
    "HiddenAdReport",
    "hidden_ad_report",
    "TraceComparison",
    "compare_traces",
    "CpmModel",
    "RevenueReport",
    "revenue_of_visit",
    "revenue_report",
    "HttpsPoint",
    "ThresholdPoint",
    "ghostery_coverage_sweep",
    "https_sensitivity",
    "threshold_sweep",
    "AsRow",
    "ServerStats",
    "as_table",
    "server_statistics",
    "format_pct",
    "render_boxplot_row",
    "render_histogram",
    "render_table",
    "HandshakeGapAnalysis",
    "handshake_gaps",
    "rtb_host_contributions",
    "ContentTypeRow",
    "SizeDistribution",
    "TimeSeries",
    "TrafficSummary",
    "ad_timeseries",
    "content_type_table",
    "object_size_distributions",
    "traffic_summary",
    "EcdfSeries",
    "HeatmapData",
    "ad_ratio_ecdf",
    "request_heatmap",
    "usage_table",
    "DomainWhitelistRow",
    "WhitelistSummary",
    "adtech_whitelist_table",
    "publisher_whitelist_table",
    "whitelist_summary",
]
