"""The paper's primary contribution: passive ad classification and
ad-blocker usage inference from HTTP header traces."""

from repro.core.adblock_detect import (
    AD_RATIO_THRESHOLD,
    UsageType,
    UserUsage,
    acceptable_ads_optout_shares,
    classify_usage,
    easyprivacy_subscription_shares,
    usage_breakdown,
)
from repro.core.content_type import infer_content_type, mime_class, type_from_extension, type_from_mime
from repro.core.normalize import ProtectedValues, collect_protected_values, normalize_url
from repro.core.pipeline import (
    AdClassificationPipeline,
    ClassifiedRequest,
    PipelineConfig,
    UserKey,
)
from repro.core.referrer_map import Attribution, ReferrerMap
from repro.core.pageviews import attribution_accuracy, page_view_stats
from repro.core.validation import ConfusionMatrix, grade_classification, grade_detection
from repro.core.users import (
    HEAVY_HITTER_THRESHOLD,
    BrowserAnnotation,
    UserStats,
    aggregate_users,
    annotate_browsers,
    heavy_hitters,
)

__all__ = [
    "attribution_accuracy",
    "page_view_stats",
    "ConfusionMatrix",
    "grade_classification",
    "grade_detection",
    "AD_RATIO_THRESHOLD",
    "UsageType",
    "UserUsage",
    "acceptable_ads_optout_shares",
    "classify_usage",
    "easyprivacy_subscription_shares",
    "usage_breakdown",
    "infer_content_type",
    "mime_class",
    "type_from_extension",
    "type_from_mime",
    "ProtectedValues",
    "collect_protected_values",
    "normalize_url",
    "AdClassificationPipeline",
    "ClassifiedRequest",
    "PipelineConfig",
    "UserKey",
    "Attribution",
    "ReferrerMap",
    "HEAVY_HITTER_THRESHOLD",
    "BrowserAnnotation",
    "UserStats",
    "aggregate_users",
    "annotate_browsers",
    "heavy_hitters",
]
