"""Ad-blocker usage inference (§3.2, §6.2, §6.3).

Two indicators per active browser:

1. **Low ratio of ad requests** — EasyList-classified share of the
   user's requests under the 5% threshold calibrated by the active
   measurement study (Fig 2).
2. **Filter-list downloads** — the user's household contacted an
   Adblock Plus download server over HTTPS.  NAT + HTTPS means this is
   a *household*-level signal (§6.2).

Their cross product yields the paper's four usage classes (Table 3):

========  =============  ==================  =========================
Type      Ratio <= thr   EasyList download   Interpretation
========  =============  ==================  =========================
A         no             no                  no ad-blocker
B         no             yes                 mixed household
C         yes            yes                 likely Adblock Plus user
D         yes            no                  other blocker / few-ad diet
========  =============  ==================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.users import UserStats

__all__ = [
    "AD_RATIO_THRESHOLD",
    "UsageType",
    "UserUsage",
    "classify_usage",
    "usage_breakdown",
    "easyprivacy_subscription_shares",
    "acceptable_ads_optout_shares",
]

AD_RATIO_THRESHOLD = 0.05  # §4.3 / §6.2


class UsageType:
    """Table 3 class labels."""

    A = "A"  # neither indicator
    B = "B"  # download only
    C = "C"  # both -> likely Adblock Plus
    D = "D"  # low ratio only


@dataclass(frozen=True, slots=True)
class UserUsage:
    """One active browser's indicator values and class."""

    stats: UserStats
    low_ad_ratio: bool
    easylist_download: bool

    @property
    def usage_type(self) -> str:
        if self.low_ad_ratio and self.easylist_download:
            return UsageType.C
        if self.low_ad_ratio:
            return UsageType.D
        if self.easylist_download:
            return UsageType.B
        return UsageType.A

    @property
    def likely_adblock(self) -> bool:
        return self.usage_type == UsageType.C


def classify_usage(
    users: Iterable[UserStats],
    download_households: set[str],
    *,
    threshold: float = AD_RATIO_THRESHOLD,
) -> list[UserUsage]:
    """Apply both indicators to the annotated active browsers."""
    usages = []
    for stats in users:
        usages.append(
            UserUsage(
                stats=stats,
                low_ad_ratio=stats.ad_ratio <= threshold,
                easylist_download=stats.client in download_households,
            )
        )
    return usages


@dataclass(frozen=True, slots=True)
class UsageBreakdownRow:
    """One row of Table 3."""

    usage_type: str
    instances: int
    instance_share: float
    request_share: float
    ad_request_share: float


def usage_breakdown(
    usages: list[UserUsage], *, total_requests: int | None = None, total_ads: int | None = None
) -> list[UsageBreakdownRow]:
    """Summarize usage classes into Table 3's rows.

    ``total_requests`` / ``total_ads`` denominate the request-share
    columns (the paper uses trace-wide totals); they default to the
    classified population's own totals.
    """
    if total_requests is None:
        total_requests = sum(usage.stats.requests for usage in usages) or 1
    if total_ads is None:
        total_ads = sum(usage.stats.ad_requests for usage in usages) or 1
    n_users = len(usages) or 1

    rows = []
    for usage_type in (UsageType.A, UsageType.B, UsageType.C, UsageType.D):
        members = [usage for usage in usages if usage.usage_type == usage_type]
        rows.append(
            UsageBreakdownRow(
                usage_type=usage_type,
                instances=len(members),
                instance_share=len(members) / n_users,
                request_share=sum(usage.stats.requests for usage in members) / total_requests,
                ad_request_share=sum(usage.stats.ad_requests for usage in members) / total_ads,
            )
        )
    return rows


def easyprivacy_subscription_shares(
    usages: list[UserUsage], *, max_hits: int = 0
) -> tuple[float, float]:
    """§6.3's EasyPrivacy analysis.

    Returns (share of likely-ABP users with <= ``max_hits`` EasyPrivacy
    hits, same share for non-adblock users).  A user whose requests
    never match EasyPrivacy filters plausibly *subscribes* to it (the
    trackers were blocked client-side); the non-adblock share is the
    false-positive baseline — almost everyone contacts a tracker
    otherwise (Metwalley et al.: 77% immediately).
    """
    abp = [usage for usage in usages if usage.usage_type == UsageType.C]
    plain = [usage for usage in usages if usage.usage_type == UsageType.A]

    def share(group: list[UserUsage]) -> float:
        if not group:
            return 0.0
        quiet = sum(1 for usage in group if usage.stats.easyprivacy_hits <= max_hits)
        return quiet / len(group)

    return share(abp), share(plain)


def acceptable_ads_optout_shares(
    usages: list[UserUsage], *, max_hits: int = 0
) -> tuple[float, float]:
    """§6.3's non-intrusive-ads analysis.

    Returns (share of likely-ABP users with <= ``max_hits`` whitelisted
    requests, same for non-adblock users).  ABP users without any
    whitelisted ads plausibly *opted out* of the acceptable-ads list;
    the non-adblock share baselines how rare such ads are organically.
    """
    abp = [usage for usage in usages if usage.usage_type == UsageType.C]
    plain = [usage for usage in usages if usage.usage_type == UsageType.A]

    def share(group: list[UserUsage]) -> float:
        if not group:
            return 0.0
        # Only whitelist hits that also match the blacklist count:
        # whitelist-only matches (the overly general $document rules)
        # appear for everyone and would drown the signal (§7.3).
        quiet = sum(1 for usage in group if usage.stats.whitelisted_and_blacklisted <= max_hits)
        return quiet / len(group)

    return share(abp), share(plain)
