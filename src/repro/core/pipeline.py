"""The ad-classification pipeline (Fig 1) — the paper's contribution.

Consumes Bro-style HTTP log records and produces, per request, the
``libadblockplus`` classification result ``{is a match, which filter
list, is whitelisted}`` using only information available in headers:

1. group requests per user — the (client IP, User-Agent) pair;
2. reconstruct page structure per user with the **referrer map**
   (``Location`` repair + embedded-URL extraction);
3. infer the ABP **content type** (extension map, header fallback,
   redirect fix-up from the consequent request);
4. **normalize** query strings without clobbering values that filter
   rules specify;
5. classify the normalized URL in its page context against the filter
   lists.

Every step is individually switchable for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.content_type import infer_content_type, type_from_mime
from repro.core.normalize import ProtectedValues, collect_protected_values, normalize_url
from repro.core.referrer_map import ReferrerMap
from repro.filterlist.actrie import ACTrieEngine
from repro.filterlist.cache import DEFAULT_CACHE_SIZE, CacheStats, CachingEngine, DecisionEngine
from repro.filterlist.combined import CombinedRegexEngine
from repro.filterlist.engine import Classification, FilterEngine, RequestContext
from repro.filterlist.lists import FilterList
from repro.filterlist.options import ContentType
from repro.http.log import HttpLogRecord
from repro.http.url import split_url
from repro.robustness import PipelineHealth

__all__ = [
    "PipelineConfig",
    "ClassifiedRequest",
    "AdClassificationPipeline",
    "StreamingClassifier",
    "UserKey",
]

UserKey = tuple[str, str]  # (client IP, User-Agent string)


@dataclass(slots=True)
class PipelineConfig:
    """Feature switches of the pipeline (ablation knobs, DESIGN.md §5)."""

    use_referrer_map: bool = True
    use_location_repair: bool = True
    use_embedded_urls: bool = True
    use_normalization: bool = True
    redirect_type_fixup: bool = True
    extension_first: bool = True
    use_keyword_index: bool = True
    # Matcher backend (DESIGN.md §15): "buckets" (keyword/host index),
    # "actrie" (Aho–Corasick token prefilter) or "combined" (chunked
    # alternation).  Decision-identical by the differential harness;
    # the knob trades build time against uncached decision throughput.
    matcher: str = "buckets"
    # Memoized decision layer (DESIGN.md §11).  Pure memoization: results
    # are byte-identical either way; the switch exists for benchmarking
    # and as an escape hatch (`repro classify --no-decision-cache`).
    use_decision_cache: bool = True
    decision_cache_size: int = DEFAULT_CACHE_SIZE


@dataclass(slots=True)
class ClassifiedRequest:
    """One request with its reconstructed context and classification."""

    record: HttpLogRecord
    user: UserKey
    page_url: str
    content_type: ContentType
    is_page_root: bool
    normalized_url: str
    classification: Classification

    @property
    def is_ad(self) -> bool:
        return self.classification.is_ad

    @property
    def is_whitelisted(self) -> bool:
        return self.classification.is_whitelisted

    @property
    def blacklist_name(self) -> str | None:
        return self.classification.blacklist_name

    @property
    def whitelist_name(self) -> str | None:
        return self.classification.whitelist_name

    @property
    def bytes(self) -> int:
        return self.record.content_length or 0


# Cap on pending redirect fix-ups per user; oldest entries are evicted
# first so recent redirects still get their type fix-up.
_MAX_PENDING_FIXUPS = 10_000


@dataclass(slots=True)
class _UserState:
    referrer_map: ReferrerMap
    # Redirect targets awaiting their consequent request, for the
    # content-type fix-up: target URL -> index into the entries list.
    # LRU-ordered: oldest pending redirect is evicted when full.
    pending_type_fixup: OrderedDict[str, int] = field(default_factory=OrderedDict)


# Version tag of StreamingClassifier.export_state payloads, so a stale
# checkpoint from an older layout is rejected instead of misread.
_STATE_VERSION = 1


class StreamingClassifier:
    """The Fig 1 pipeline as an explicit-state push machine.

    Where :meth:`AdClassificationPipeline.iter_process` keeps its state
    in generator locals, this class keeps every mutable piece — the
    reorder min-heap, per-user referrer maps and pending type fix-ups,
    the fix-up entry buffer — on the instance, which buys two things:

    * **feed/finish control** for drivers that need to act *between*
      records (the durable runner checkpoints there);
    * **serializable state** — :meth:`export_state` snapshots the run
      as a primitive-only object tree and :meth:`restore_state` rebuilds
      it, so a crashed run resumed from a checkpoint classifies the
      remaining records exactly as the uninterrupted run would
      (DESIGN.md §8).

    ``feed`` returns the entries *released* by that record (usually 0
    or 1 once the fix-up buffer is warm); ``finish`` drains the rest.
    """

    def __init__(
        self,
        pipeline: "AdClassificationPipeline",
        *,
        fixup_window: int | None = 1024,
        reorder_window: float | None = None,
        max_users: int | None = None,
        health: PipelineHealth | None = None,
    ):
        self.pipeline = pipeline
        self.fixup_window = fixup_window
        self.reorder_window = reorder_window
        self.max_users = max_users
        self.health = health
        self.users: "OrderedDict[UserKey, _UserState]" = OrderedDict()
        self.buffer: "OrderedDict[int, ClassifiedRequest]" = OrderedDict()
        self.next_index = 0
        # Reorder-buffer state (active when reorder_window is not None).
        self._heap: list[tuple[float, int, HttpLogRecord]] = []
        self._seq = 0
        self._max_ts = float("-inf")

    # -- streaming --------------------------------------------------------

    def feed(self, record: HttpLogRecord) -> list[ClassifiedRequest]:
        """Push one record; return the entries released by it."""
        released: list[tuple[int, ClassifiedRequest]] = []
        if self.reorder_window is None:
            self._ingest(record, released)
            return [entry for _, entry in released]
        if record.ts < self._max_ts and self.health is not None:
            self.health.records_reordered += 1
        self._max_ts = max(self._max_ts, record.ts)
        heapq.heappush(self._heap, (record.ts, self._seq, record))
        self._seq += 1
        horizon = self._max_ts - self.reorder_window
        while self._heap and self._heap[0][0] <= horizon:
            self._ingest(heapq.heappop(self._heap)[2], released)
        return [entry for _, entry in released]

    def feed_at(self, record: HttpLogRecord, index: int) -> list[tuple[int, ClassifiedRequest]]:
        """Ingest ``record`` at an explicit global entry index.

        Shard-parallel workers (DESIGN.md §10) see only the records
        their shard owns, but the fix-up buffer's release horizon and
        the redirect fix-up reach-back are defined over *global* ingest
        indexes — the position the record holds in the serial ingest
        order.  The caller supplies that index; records owned by other
        shards advance the horizon through :meth:`tick`.  Released
        entries come back with their indexes so the parallel merge can
        re-interleave shards into the exact serial emission order.

        The reorder buffer must be off — parallel workers replicate the
        global reorder heap externally, where non-owned records are
        placeholders, and drive this method with already-ordered pops.
        """
        if self.reorder_window is not None:
            raise ValueError("feed_at() requires reorder_window=None")
        released: list[tuple[int, ClassifiedRequest]] = []
        self._ingest(record, released, index=index)
        return released

    def tick(self, index: int) -> list[tuple[int, ClassifiedRequest]]:
        """Advance the global ingest index past a non-owned record.

        Releases (and returns) buffered entries that fall outside the
        fix-up window once position ``index`` is consumed, exactly as a
        serial classifier would when ingesting the record held by
        another shard.
        """
        released: list[tuple[int, ClassifiedRequest]] = []
        if self.next_index <= index:
            self.next_index = index + 1
        self._release(index, released)
        return released

    def finish(self) -> list[ClassifiedRequest]:
        """Drain the reorder heap and the fix-up buffer; end of stream."""
        return [entry for _, entry in self.finish_indexed()]

    def finish_indexed(self) -> list[tuple[int, ClassifiedRequest]]:
        """:meth:`finish`, with each entry's global ingest index."""
        released: list[tuple[int, ClassifiedRequest]] = []
        while self._heap:
            self._ingest(heapq.heappop(self._heap)[2], released)
        while self.buffer:
            released.append(self.buffer.popitem(last=False))
        return released

    def _ingest(
        self,
        record: HttpLogRecord,
        released: list[tuple[int, ClassifiedRequest]],
        index: int | None = None,
    ) -> None:
        if index is None:
            index = self.next_index
        config = self.pipeline.config
        health = self.health
        user = (record.client, record.user_agent or "")
        state = self.users.get(user)
        if state is None:
            state = _UserState(
                referrer_map=ReferrerMap(track_embedded=config.use_embedded_urls)
            )
            self.users[user] = state
            if self.max_users is not None and len(self.users) > self.max_users:
                self.users.popitem(last=False)
                if health is not None:
                    health.users_evicted += 1
            if health is not None:
                health.observe_users(len(self.users))
        else:
            self.users.move_to_end(user)

        url = record.url
        looks_like_document = type_from_mime(record.content_type) in (
            ContentType.DOCUMENT,
            ContentType.SUBDOCUMENT,
        )

        if config.use_referrer_map:
            attribution = state.referrer_map.observe(
                url,
                record.referrer,
                looks_like_document=looks_like_document,
                location=record.location if config.use_location_repair else None,
            )
            page_url, is_page_root = attribution.page_url, attribution.is_page_root
        else:
            # URL-only ablation: every request is its own context.
            page_url, is_page_root = url, looks_like_document

        content_type = infer_content_type(
            url,
            record.content_type,
            is_page_root=is_page_root,
            extension_first=config.extension_first,
        )

        if config.redirect_type_fixup:
            # Is this the consequent request of an earlier redirect?
            fixup_index = state.pending_type_fixup.pop(url, None)
            if fixup_index is not None:
                source = self.buffer.get(fixup_index)
                if source is not None and source.content_type != content_type:
                    source.content_type = content_type
                    source.classification = self.pipeline._classify(source)
            if record.location is not None:
                pending = state.pending_type_fixup
                pending[record.location] = index
                pending.move_to_end(record.location)
                while len(pending) > _MAX_PENDING_FIXUPS:
                    pending.popitem(last=False)

        entry = ClassifiedRequest(
            record=record,
            user=user,
            page_url=page_url,
            content_type=content_type,
            is_page_root=is_page_root,
            normalized_url=(
                normalize_url(url, self.pipeline._protected)
                if config.use_normalization
                else url
            ),
            classification=None,  # type: ignore[arg-type]
        )
        entry.classification = self.pipeline._classify(entry)
        self.buffer[index] = entry
        if self.next_index <= index:
            self.next_index = index + 1
        self._release(index, released)

    def _release(self, index: int, released: list[tuple[int, ClassifiedRequest]]) -> None:
        # Release everything at or below `index - fixup_window`.  For
        # the serial path (contiguous indexes) this is exactly the old
        # "pop while len(buffer) > fixup_window" rule; for a shard (a
        # subset of the global indexes) it releases precisely the owned
        # entries the serial run would have released by this point.
        if self.fixup_window is None:
            return
        horizon = index - self.fixup_window
        while self.buffer:
            oldest = next(iter(self.buffer))
            if oldest > horizon:
                break
            released.append(self.buffer.popitem(last=False))

    # -- checkpoint wire form (DESIGN.md §8) -------------------------------

    def export_state(self) -> dict:
        """Snapshot the run as a primitive-only object tree.

        Classifications of still-buffered entries are deliberately NOT
        serialized — the engine is deterministic given the entry's own
        fields, so :meth:`restore_state` recomputes them.  That keeps
        engine internals (compiled filters) out of the checkpoint and
        the payload fast to write.
        """
        return {
            "version": _STATE_VERSION,
            "next_index": self.next_index,
            "users": [
                (
                    user,
                    state.referrer_map.export_state(),
                    list(state.pending_type_fixup.items()),
                )
                for user, state in self.users.items()
            ],
            "buffer": [
                (
                    index,
                    entry.record.to_row(),
                    entry.page_url,
                    int(entry.content_type),
                    entry.is_page_root,
                    entry.normalized_url,
                )
                for index, entry in self.buffer.items()
            ],
            "reorder": {
                "heap": [(ts, seq, record.to_row()) for ts, seq, record in self._heap],
                "seq": self._seq,
                "max_ts": self._max_ts,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild a snapshot taken by :meth:`export_state`."""
        version = state.get("version")
        if version != _STATE_VERSION:
            raise ValueError(f"unsupported classifier state version {version!r}")
        config = self.pipeline.config
        self.next_index = state["next_index"]
        self.users = OrderedDict()
        for user, referrer_state, pending in state["users"]:
            self.users[tuple(user)] = _UserState(
                referrer_map=ReferrerMap.from_state(
                    referrer_state, track_embedded=config.use_embedded_urls
                ),
                pending_type_fixup=OrderedDict(pending),
            )
        self.buffer = OrderedDict()
        for index, row, page_url, content_type, is_page_root, normalized_url in state["buffer"]:
            entry = ClassifiedRequest(
                record=HttpLogRecord.from_row(row),
                user=(row[1], row[7] or ""),  # (client, user_agent)
                page_url=page_url,
                content_type=ContentType(content_type),
                is_page_root=is_page_root,
                normalized_url=normalized_url,
                classification=None,  # type: ignore[arg-type]
            )
            entry.classification = self.pipeline._classify(entry)
            self.buffer[index] = entry
        reorder = state["reorder"]
        self._heap = [
            (ts, seq, HttpLogRecord.from_row(row)) for ts, seq, row in reorder["heap"]
        ]
        heapq.heapify(self._heap)
        self._seq = reorder["seq"]
        self._max_ts = reorder["max_ts"]

    def merge_state(self, state: dict) -> None:
        """Fold another classifier's exported state into this one.

        Shard-parallel runs (DESIGN.md §10) give every worker its own
        classifier over a disjoint slice of users and entry indexes, so
        the fold is a disjoint union of per-user state and buffered
        entries.  The merge stays total on overlap anyway, resolving
        deterministically and order-insensitively: referrer maps union
        key-wise, a pending fix-up shared by two states keeps the larger
        entry index (the later redirect — what serial overwrite keeps),
        and a buffer index present in both keeps the already-held entry.
        """
        version = state.get("version")
        if version != _STATE_VERSION:
            raise ValueError(f"unsupported classifier state version {version!r}")
        config = self.pipeline.config
        self.next_index = max(self.next_index, state["next_index"])
        for user, referrer_state, pending in state["users"]:
            key = (user[0], user[1])
            mine = self.users.get(key)
            if mine is None:
                self.users[key] = _UserState(
                    referrer_map=ReferrerMap.from_state(
                        referrer_state, track_embedded=config.use_embedded_urls
                    ),
                    pending_type_fixup=OrderedDict(pending),
                )
            else:
                mine.referrer_map.merge_state(referrer_state)
                fixups = mine.pending_type_fixup
                for url, fixup_index in pending:
                    held = fixups.get(url)
                    if held is None or fixup_index > held:
                        fixups[url] = fixup_index
        changed = False
        for index, row, page_url, content_type, is_page_root, normalized_url in state["buffer"]:
            if index in self.buffer:
                continue
            entry = ClassifiedRequest(
                record=HttpLogRecord.from_row(row),
                user=(row[1], row[7] or ""),  # (client, user_agent)
                page_url=page_url,
                content_type=ContentType(content_type),
                is_page_root=is_page_root,
                normalized_url=normalized_url,
                classification=None,  # type: ignore[arg-type]
            )
            entry.classification = self.pipeline._classify(entry)
            self.buffer[index] = entry
            changed = True
        if changed:
            # Interleave shard indexes back into global release order.
            self.buffer = OrderedDict(sorted(self.buffer.items()))
        reorder = state["reorder"]
        for ts, seq, row in reorder["heap"]:
            heapq.heappush(self._heap, (ts, seq, HttpLogRecord.from_row(row)))
        self._seq = max(self._seq, reorder["seq"])
        self._max_ts = max(self._max_ts, reorder["max_ts"])


def _matcher_engine(config: PipelineConfig) -> DecisionEngine:
    """Construct the configured matcher backend, empty."""
    if config.matcher == "buckets":
        return FilterEngine(use_keyword_index=config.use_keyword_index)
    if config.matcher == "actrie":
        return ACTrieEngine(use_keyword_index=config.use_keyword_index)
    if config.matcher == "combined":
        return CombinedRegexEngine()
    raise ValueError(f"unknown matcher {config.matcher!r}")


class AdClassificationPipeline:
    """End-to-end Fig 1 pipeline over header-trace records.

    Args:
        lists: filter lists keyed by canonical name (the subscription
            bundle to classify against).
        config: feature switches.
    """

    def __init__(self, lists: dict[str, FilterList], config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.lists = lists
        engine: DecisionEngine = _matcher_engine(self.config)
        all_filters = []
        for name, filter_list in lists.items():
            engine.add_filters(filter_list.filters, list_name=name)
            all_filters.extend(filter_list.filters)
        if self.config.use_decision_cache:
            engine = CachingEngine(engine, maxsize=self.config.decision_cache_size)
        self._engine = engine
        self._protected: ProtectedValues = collect_protected_values(all_filters)

    @classmethod
    def from_engine(
        cls, engine: DecisionEngine, config: PipelineConfig | None = None
    ) -> "AdClassificationPipeline":
        """Build a pipeline around an already-built engine.

        The snapshot fast path: ``repro compile-lists`` freezes the
        engine once, and every later process restores it in
        milliseconds instead of re-parsing lists (DESIGN.md §15).  The
        protected-value set for URL normalization is recomputed from
        the restored filters, so classification matches a list-built
        pipeline exactly.
        """
        pipeline = cls.__new__(cls)
        pipeline.config = config or PipelineConfig()
        pipeline.lists = {}
        all_filters = engine.iter_filters()
        wrapped: DecisionEngine = engine
        if pipeline.config.use_decision_cache:
            wrapped = CachingEngine(engine, maxsize=pipeline.config.decision_cache_size)
        pipeline._engine = wrapped
        pipeline._protected = collect_protected_values(all_filters)
        return pipeline

    @property
    def engine(self) -> DecisionEngine | CachingEngine:
        return self._engine

    @property
    def decision_cache_stats(self) -> CacheStats | None:
        """Live cache counters, or None when the cache is disabled."""
        if isinstance(self._engine, CachingEngine):
            return self._engine.stats
        return None

    def process(self, records: Iterable[HttpLogRecord], **kwargs) -> list[ClassifiedRequest]:
        """Classify a time-ordered record stream into a list.

        Records must be sorted by timestamp (multi-user streams are
        fine; state is kept per user).  Keyword arguments are forwarded
        to :meth:`iter_process`.
        """
        kwargs.setdefault("fixup_window", None)
        return list(self.iter_process(records, **kwargs))

    def iter_process(
        self,
        records: Iterable[HttpLogRecord],
        *,
        fixup_window: int | None = 1024,
        reorder_window: float | None = None,
        max_users: int | None = None,
        health: PipelineHealth | None = None,
    ) -> "Iterator[ClassifiedRequest]":
        """Streaming classification with bounded memory.

        Entries are yielded once they leave the ``fixup_window``-sized
        buffer; the redirect content-type fix-up can only reach back
        inside the buffer (redirect targets follow their redirect
        within a handful of requests in practice).  ``fixup_window=None``
        buffers everything — identical results to :meth:`process`.

        ``reorder_window`` (seconds) re-sorts a slightly out-of-order
        stream through a bounded buffer, so streams shuffled within that
        jitter window classify identically to sorted ones.  ``max_users``
        LRU-evicts idle per-user state so memory stays bounded on
        million-user streams (an evicted user restarts with an empty
        referrer map if it reappears).  ``health`` tallies reorderings
        and evictions.
        """
        yield from self.classify_stream(
            records,
            fixup_window=fixup_window,
            reorder_window=reorder_window,
            max_users=max_users,
            health=health,
        )

    def classify_stream(
        self,
        records: Iterable[HttpLogRecord],
        *,
        resume_from: dict | None = None,
        fixup_window: int | None = 1024,
        reorder_window: float | None = None,
        max_users: int | None = None,
        health: PipelineHealth | None = None,
    ) -> "Iterator[ClassifiedRequest]":
        """:meth:`iter_process` with resumable state (DESIGN.md §8).

        ``resume_from`` takes a snapshot previously captured with
        :meth:`StreamingClassifier.export_state`; ``records`` must then
        be the remainder of the original stream (the durable runner
        seeks the input to the checkpointed byte offset).  Stream
        options must match the snapshotting run — the run manifest
        enforces this at the CLI layer.
        """
        classifier = StreamingClassifier(
            self,
            fixup_window=fixup_window,
            reorder_window=reorder_window,
            max_users=max_users,
            health=health,
        )
        if resume_from is not None:
            classifier.restore_state(resume_from)
        for record in records:
            yield from classifier.feed(record)
        yield from classifier.finish()

    def _classify(self, entry: ClassifiedRequest) -> Classification:
        context = RequestContext(content_type=entry.content_type, page_url=entry.page_url)
        # Split once here; the engine would otherwise re-split per call.
        request_host = split_url(entry.normalized_url).host
        return self._engine.classify(
            entry.normalized_url, context, request_host=request_host
        )

    def classify_one(
        self,
        url: str,
        *,
        content_type: ContentType,
        page_url: str,
    ) -> Classification:
        """Classify a single URL with explicit context (no reconstruction)."""
        normalized = normalize_url(url, self._protected) if self.config.use_normalization else url
        return self._engine.classify(normalized, RequestContext(content_type, page_url))
