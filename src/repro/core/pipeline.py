"""The ad-classification pipeline (Fig 1) — the paper's contribution.

Consumes Bro-style HTTP log records and produces, per request, the
``libadblockplus`` classification result ``{is a match, which filter
list, is whitelisted}`` using only information available in headers:

1. group requests per user — the (client IP, User-Agent) pair;
2. reconstruct page structure per user with the **referrer map**
   (``Location`` repair + embedded-URL extraction);
3. infer the ABP **content type** (extension map, header fallback,
   redirect fix-up from the consequent request);
4. **normalize** query strings without clobbering values that filter
   rules specify;
5. classify the normalized URL in its page context against the filter
   lists.

Every step is individually switchable for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.content_type import infer_content_type, type_from_mime
from repro.core.normalize import ProtectedValues, collect_protected_values, normalize_url
from repro.core.referrer_map import ReferrerMap
from repro.filterlist.engine import Classification, FilterEngine, RequestContext
from repro.filterlist.lists import FilterList
from repro.filterlist.options import ContentType
from repro.http.log import HttpLogRecord
from repro.robustness import PipelineHealth

__all__ = ["PipelineConfig", "ClassifiedRequest", "AdClassificationPipeline", "UserKey"]

UserKey = tuple[str, str]  # (client IP, User-Agent string)


@dataclass(slots=True)
class PipelineConfig:
    """Feature switches of the pipeline (ablation knobs, DESIGN.md §5)."""

    use_referrer_map: bool = True
    use_location_repair: bool = True
    use_embedded_urls: bool = True
    use_normalization: bool = True
    redirect_type_fixup: bool = True
    extension_first: bool = True
    use_keyword_index: bool = True


@dataclass(slots=True)
class ClassifiedRequest:
    """One request with its reconstructed context and classification."""

    record: HttpLogRecord
    user: UserKey
    page_url: str
    content_type: ContentType
    is_page_root: bool
    normalized_url: str
    classification: Classification

    @property
    def is_ad(self) -> bool:
        return self.classification.is_ad

    @property
    def is_whitelisted(self) -> bool:
        return self.classification.is_whitelisted

    @property
    def blacklist_name(self) -> str | None:
        return self.classification.blacklist_name

    @property
    def whitelist_name(self) -> str | None:
        return self.classification.whitelist_name

    @property
    def bytes(self) -> int:
        return self.record.content_length or 0


# Cap on pending redirect fix-ups per user; oldest entries are evicted
# first so recent redirects still get their type fix-up.
_MAX_PENDING_FIXUPS = 10_000


@dataclass(slots=True)
class _UserState:
    referrer_map: ReferrerMap
    # Redirect targets awaiting their consequent request, for the
    # content-type fix-up: target URL -> index into the entries list.
    # LRU-ordered: oldest pending redirect is evicted when full.
    pending_type_fixup: OrderedDict[str, int] = field(default_factory=OrderedDict)


def _in_timestamp_order(
    records: Iterable[HttpLogRecord],
    window_s: float,
    health: PipelineHealth | None,
) -> Iterator[HttpLogRecord]:
    """Re-sort a slightly out-of-order stream with a bounded buffer.

    Records are held in a min-heap on timestamp and released once the
    stream has advanced ``window_s`` seconds past them, so any stream
    shuffled within a jitter window ≤ ``window_s`` comes out in exact
    timestamp order (ties release in arrival order).  Memory is bounded
    by the number of records per window, not the stream length.
    """
    heap: list[tuple[float, int, HttpLogRecord]] = []
    seq = 0
    max_ts = float("-inf")
    for record in records:
        if record.ts < max_ts and health is not None:
            health.records_reordered += 1
        max_ts = max(max_ts, record.ts)
        heapq.heappush(heap, (record.ts, seq, record))
        seq += 1
        while heap and heap[0][0] <= max_ts - window_s:
            yield heapq.heappop(heap)[2]
    while heap:
        yield heapq.heappop(heap)[2]


class AdClassificationPipeline:
    """End-to-end Fig 1 pipeline over header-trace records.

    Args:
        lists: filter lists keyed by canonical name (the subscription
            bundle to classify against).
        config: feature switches.
    """

    def __init__(self, lists: dict[str, FilterList], config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.lists = lists
        self._engine = FilterEngine(use_keyword_index=self.config.use_keyword_index)
        all_filters = []
        for name, filter_list in lists.items():
            self._engine.add_filters(filter_list.filters, list_name=name)
            all_filters.extend(filter_list.filters)
        self._protected: ProtectedValues = collect_protected_values(all_filters)

    @property
    def engine(self) -> FilterEngine:
        return self._engine

    def process(self, records: Iterable[HttpLogRecord], **kwargs) -> list[ClassifiedRequest]:
        """Classify a time-ordered record stream into a list.

        Records must be sorted by timestamp (multi-user streams are
        fine; state is kept per user).  Keyword arguments are forwarded
        to :meth:`iter_process`.
        """
        kwargs.setdefault("fixup_window", None)
        return list(self.iter_process(records, **kwargs))

    def iter_process(
        self,
        records: Iterable[HttpLogRecord],
        *,
        fixup_window: int | None = 1024,
        reorder_window: float | None = None,
        max_users: int | None = None,
        health: PipelineHealth | None = None,
    ) -> "Iterator[ClassifiedRequest]":
        """Streaming classification with bounded memory.

        Entries are yielded once they leave the ``fixup_window``-sized
        buffer; the redirect content-type fix-up can only reach back
        inside the buffer (redirect targets follow their redirect
        within a handful of requests in practice).  ``fixup_window=None``
        buffers everything — identical results to :meth:`process`.

        ``reorder_window`` (seconds) re-sorts a slightly out-of-order
        stream through a bounded buffer, so streams shuffled within that
        jitter window classify identically to sorted ones.  ``max_users``
        LRU-evicts idle per-user state so memory stays bounded on
        million-user streams (an evicted user restarts with an empty
        referrer map if it reappears).  ``health`` tallies reorderings
        and evictions.
        """
        config = self.config
        users: "OrderedDict[UserKey, _UserState]" = OrderedDict()
        buffer: "OrderedDict[int, ClassifiedRequest]" = OrderedDict()
        next_index = 0

        if reorder_window is not None:
            records = _in_timestamp_order(records, reorder_window, health)

        for record in records:
            user = (record.client, record.user_agent or "")
            state = users.get(user)
            if state is None:
                state = _UserState(
                    referrer_map=ReferrerMap(track_embedded=config.use_embedded_urls)
                )
                users[user] = state
                if max_users is not None and len(users) > max_users:
                    users.popitem(last=False)
                    if health is not None:
                        health.users_evicted += 1
                if health is not None:
                    health.observe_users(len(users))
            else:
                users.move_to_end(user)

            url = record.url
            looks_like_document = type_from_mime(record.content_type) in (
                ContentType.DOCUMENT,
                ContentType.SUBDOCUMENT,
            )

            if config.use_referrer_map:
                attribution = state.referrer_map.observe(
                    url,
                    record.referrer,
                    looks_like_document=looks_like_document,
                    location=record.location if config.use_location_repair else None,
                )
                page_url, is_page_root = attribution.page_url, attribution.is_page_root
            else:
                # URL-only ablation: every request is its own context.
                page_url, is_page_root = url, looks_like_document

            content_type = infer_content_type(
                url,
                record.content_type,
                is_page_root=is_page_root,
                extension_first=config.extension_first,
            )

            if config.redirect_type_fixup:
                # Is this the consequent request of an earlier redirect?
                fixup_index = state.pending_type_fixup.pop(url, None)
                if fixup_index is not None:
                    source = buffer.get(fixup_index)
                    if source is not None and source.content_type != content_type:
                        source.content_type = content_type
                        source.classification = self._classify(source)
                if record.location is not None:
                    pending = state.pending_type_fixup
                    pending[record.location] = next_index
                    pending.move_to_end(record.location)
                    while len(pending) > _MAX_PENDING_FIXUPS:
                        pending.popitem(last=False)

            entry = ClassifiedRequest(
                record=record,
                user=user,
                page_url=page_url,
                content_type=content_type,
                is_page_root=is_page_root,
                normalized_url=(
                    normalize_url(url, self._protected) if config.use_normalization else url
                ),
                classification=None,  # type: ignore[arg-type]
            )
            entry.classification = self._classify(entry)
            buffer[next_index] = entry
            next_index += 1

            if fixup_window is not None:
                while len(buffer) > fixup_window:
                    yield buffer.popitem(last=False)[1]

        while buffer:
            yield buffer.popitem(last=False)[1]

    def _classify(self, entry: ClassifiedRequest) -> Classification:
        context = RequestContext(content_type=entry.content_type, page_url=entry.page_url)
        return self._engine.classify(entry.normalized_url, context)

    def classify_one(
        self,
        url: str,
        *,
        content_type: ContentType,
        page_url: str,
    ) -> Classification:
        """Classify a single URL with explicit context (no reconstruction)."""
        normalized = normalize_url(url, self._protected) if self.config.use_normalization else url
        return self._engine.classify(normalized, RequestContext(content_type, page_url))
