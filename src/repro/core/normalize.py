"""Base-URL normalization of query strings (§3.1, "Base URL").

Requests frequently embed parts of *previous* URLs in their query
strings (cache busters, redirector targets, page URLs passed to ad
servers).  Matching filters against the raw string then misfires: the
embedded fragment, not the request itself, triggers the filter.  The
paper's remedy is to normalize query-string *values* to a placeholder
— except values that appear verbatim inside filter rules (e.g. the
``@@*jsp?callback=aslHandleAds*`` exception), which must survive or
the exception stops matching.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.filterlist.filter import Filter
from repro.http.url import SplitUrl, format_query, join_url, parse_query, split_url

__all__ = ["ProtectedValues", "collect_protected_values", "normalize_url"]

_PLACEHOLDER = "X"

# key=value fragments inside filter patterns; both parts URL-ish.
_PATTERN_PAIR = re.compile(r"([A-Za-z0-9_\-\[\]%.]+)=([A-Za-z0-9_\-%.]+)")


class ProtectedValues:
    """Query-string (key, value) pairs that filter rules depend on."""

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()):
        self._pairs = set(pairs)
        self._keys = {key for key, _ in self._pairs}

    def protects(self, key: str, value: str) -> bool:
        return (key, value) in self._pairs

    def has_key(self, key: str) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._pairs


def collect_protected_values(filters: Iterable[Filter]) -> ProtectedValues:
    """Harvest ``key=value`` fragments from filter patterns.

    Any value literally specified by some rule must never be
    normalized away, otherwise that rule (often an exception) silently
    stops matching — the exact failure mode §3.1 warns about.
    """
    pairs: set[tuple[str, str]] = set()
    for filter_ in filters:
        for match in _PATTERN_PAIR.finditer(filter_.pattern):
            value = match.group(2)
            if value and value != "*":
                pairs.add((match.group(1), value))
    return ProtectedValues(pairs)


def normalize_url(url: str, protected: ProtectedValues | None = None) -> str:
    """Replace dynamic query-string values with a fixed placeholder.

    Keys are preserved (filters routinely match ``&ad_slot=``); values
    are replaced unless protected by a filter rule.  Valueless
    components are left untouched.
    """
    parts: SplitUrl = split_url(url)
    if not parts.query:
        return url
    normalized: list[tuple[str, str]] = []
    for key, value in parse_query(parts.query):
        if not value:
            normalized.append((key, value))
        elif protected is not None and protected.protects(key, value):
            normalized.append((key, value))
        else:
            normalized.append((key, _PLACEHOLDER))
    return join_url(
        SplitUrl(
            scheme=parts.scheme,
            host=parts.host,
            port=parts.port,
            path=parts.path,
            query=format_query(normalized),
        )
    )
