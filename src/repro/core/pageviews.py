"""Page-view reconstruction statistics (StreamStructure/ReSurf check).

The referrer map underpins the whole methodology, so this module
measures how well it recovers *page structure*: how many page views
the map reconstructs per user, how many requests attach to each page,
and — with simulator ground truth — the attribution accuracy (did a
request land on the page that really triggered it?).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.pipeline import ClassifiedRequest
from repro.http.url import hostname_of, registrable_domain
from repro.trace.records import GroundTruth

__all__ = ["PageViewStats", "page_view_stats", "attribution_accuracy"]


@dataclass(slots=True)
class PageViewStats:
    """Reconstructed browsing structure of a classified trace."""

    n_requests: int = 0
    n_pages: int = 0  # distinct (user, page_url) attributions
    n_users: int = 0
    requests_per_page: dict = field(default_factory=lambda: defaultdict(int))

    @property
    def mean_requests_per_page(self) -> float:
        if not self.requests_per_page:
            return 0.0
        return self.n_requests / len(self.requests_per_page)

    def page_size_distribution(self) -> list[int]:
        return sorted(self.requests_per_page.values())


def page_view_stats(entries: Sequence[ClassifiedRequest]) -> PageViewStats:
    """Group requests by their reconstructed page attribution."""
    stats = PageViewStats(n_requests=len(entries))
    users = set()
    for entry in entries:
        users.add(entry.user)
        stats.requests_per_page[(entry.user, entry.page_url)] += 1
    stats.n_pages = len(stats.requests_per_page)
    stats.n_users = len(users)
    return stats


@dataclass(frozen=True, slots=True)
class AttributionAccuracy:
    """How often requests were attached to the right page."""

    exact: float  # attributed page URL == true page URL
    same_site: float  # at least the registrable domain matches
    graded: int  # requests with ground truth available

    @property
    def summary(self) -> str:
        return (
            f"exact {self.exact:.1%}, same-site {self.same_site:.1%} "
            f"over {self.graded} requests"
        )


def attribution_accuracy(
    entries: Sequence[ClassifiedRequest], truths: Sequence[GroundTruth]
) -> AttributionAccuracy:
    """Grade page attribution against generative ground truth.

    Requests without a true page (app traffic) are skipped.  ``exact``
    is strict URL equality; ``same_site`` accepts any page on the true
    page's registrable domain — which is all the *matching semantics*
    ($domain=, third-party) actually need.
    """
    exact = same_site = graded = 0
    for entry, truth in zip(entries, truths):
        if not truth.page_url:
            continue
        graded += 1
        if entry.page_url == truth.page_url:
            exact += 1
            same_site += 1
            continue
        attributed = registrable_domain(hostname_of(entry.page_url))
        true_domain = registrable_domain(hostname_of(truth.page_url))
        if attributed == true_domain:
            same_site += 1
    if graded == 0:
        return AttributionAccuracy(exact=0.0, same_site=0.0, graded=0)
    return AttributionAccuracy(
        exact=exact / graded, same_site=same_site / graded, graded=graded
    )
