"""Content-type inference from header traces (§3.1, "Content Type").

Adblock Plus knows each request's type from the DOM (an ``<img>`` tag
is an image); a passive observer must infer it.  Following the paper:

1. map the URL's file extension — ``.png .gif .jpg .svg .ico`` ->
   image, ``.css`` -> stylesheet, ``.js`` -> script, ``.mp4 .avi`` ->
   media;
2. as a rule of thumb, fall back to the ``Content-Type`` response
   header when the extension yields nothing — tolerant of
   format-level mismatches (jpeg vs png) since only general categories
   matter, but vulnerable to the ``text/html``-for-JavaScript
   mislabels that cause the paper's false positives (§4.2);
3. redirect fix-up: a redirecting URL inherits the type of the request
   that follows the ``Location`` (handled by the pipeline, which sees
   both ends of the chain).
"""

from __future__ import annotations

from repro.filterlist.options import ContentType
from repro.http.url import path_extension, split_url

__all__ = ["infer_content_type", "type_from_extension", "type_from_mime", "mime_class"]

_EXTENSION_TYPES: dict[str, ContentType] = {
    "png": ContentType.IMAGE,
    "gif": ContentType.IMAGE,
    "jpg": ContentType.IMAGE,
    "jpeg": ContentType.IMAGE,
    "svg": ContentType.IMAGE,
    "ico": ContentType.IMAGE,
    "css": ContentType.STYLESHEET,
    "js": ContentType.SCRIPT,
    "mp4": ContentType.MEDIA,
    "avi": ContentType.MEDIA,
    # Pragmatic additions in the same spirit (common in traces).
    "webm": ContentType.MEDIA,
    "flv": ContentType.MEDIA,
    "ts": ContentType.MEDIA,
    "woff": ContentType.FONT,
    "woff2": ContentType.FONT,
    "ttf": ContentType.FONT,
    "swf": ContentType.OBJECT,
}


def type_from_extension(url: str) -> ContentType | None:
    """Infer the ABP content type from the URL path extension."""
    parts = split_url(url)
    extension = path_extension(parts.path)
    if not extension:
        return None
    return _EXTENSION_TYPES.get(extension)


def type_from_mime(mime: str | None, *, is_page_root: bool = False) -> ContentType | None:
    """Infer the ABP content type from a Content-Type header value."""
    if not mime:
        return None
    mime = mime.lower().split(";")[0].strip()
    if mime.startswith("image/"):
        return ContentType.IMAGE
    if mime in ("text/css",):
        return ContentType.STYLESHEET
    if mime.endswith("javascript") or mime in ("text/js", "application/ecmascript"):
        return ContentType.SCRIPT
    if mime.startswith("video/") or mime.startswith("audio/"):
        return ContentType.MEDIA
    if mime in ("application/x-shockwave-flash", "application/futuresplash"):
        return ContentType.OBJECT
    if mime.startswith("font/") or mime in ("application/font-woff", "application/x-font-ttf"):
        return ContentType.FONT
    if mime in ("text/html", "application/xhtml+xml"):
        return ContentType.DOCUMENT if is_page_root else ContentType.SUBDOCUMENT
    if mime in ("application/json", "text/json"):
        return ContentType.XMLHTTPREQUEST
    if mime in ("text/plain", "application/xml", "text/xml"):
        return ContentType.OTHER
    return ContentType.OTHER


def mime_class(mime: str | None) -> str:
    """Coarse MIME class for Fig 6's four-way grouping."""
    if not mime:
        return "other"
    mime = mime.lower().split(";")[0].strip()
    if mime.startswith("image/"):
        return "image"
    if mime.startswith("text/"):
        return "text"
    if mime.startswith("video/") or mime.startswith("audio/"):
        return "video"
    if mime.startswith("application/"):
        return "app"
    return "other"


def infer_content_type(
    url: str,
    mime: str | None,
    *,
    is_page_root: bool = False,
    extension_first: bool = True,
) -> ContentType:
    """Full inference: extension first, header fallback, OTHER default.

    ``extension_first=False`` flips the priority — kept for the
    ablation benchmark on inference order (DESIGN.md §5).
    """
    from_extension = type_from_extension(url)
    from_header = type_from_mime(mime, is_page_root=is_page_root)
    if extension_first:
        inferred = from_extension or from_header
    else:
        inferred = from_header or from_extension
    if inferred is None:
        return ContentType.DOCUMENT if is_page_root else ContentType.OTHER
    return inferred
