"""Per-user aggregation and browser annotation (§6, §6.1).

A "user" is the (client IP, User-Agent) pair.  This module aggregates
classified requests into per-user statistics, annotates User-Agents
into browser families (the paper's manual labelling step, automated by
:mod:`repro.http.useragent`), and selects the *active browsers* (heavy
hitters, >1K requests) the usage study runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.pipeline import ClassifiedRequest, UserKey
from repro.filterlist.lists import ACCEPTABLE_ADS, EASYLIST, EASYPRIVACY
from repro.http.useragent import BrowserFamily, UserAgentInfo, parse_user_agent

__all__ = ["UserStats", "aggregate_users", "heavy_hitters", "annotate_browsers"]

HEAVY_HITTER_THRESHOLD = 1000  # requests (§6.1)


@dataclass(slots=True)
class UserStats:
    """Aggregated request statistics of one (IP, User-Agent) pair."""

    user: UserKey
    requests: int = 0
    bytes: int = 0
    ad_requests: int = 0  # any list hit, incl. whitelist-only (§6 fn 2)
    easylist_hits: int = 0  # blacklisted by EasyList (or derivatives)
    easylist_blocked_hits: int = 0  # EasyList hits NOT rescued by a whitelist
    easyprivacy_hits: int = 0
    whitelisted: int = 0  # acceptable-ads whitelist hits
    whitelisted_and_blacklisted: int = 0
    ad_bytes: int = 0
    first_ts: float = float("inf")
    last_ts: float = float("-inf")

    @property
    def client(self) -> str:
        return self.user[0]

    @property
    def user_agent(self) -> str:
        return self.user[1]

    @property
    def ad_ratio(self) -> float:
        """Indicator-1 ratio (§6.2): share of requests that a default
        Adblock Plus install would have *blocked* — EasyList hits not
        rescued by the acceptable-ads whitelist.  An ABP user's
        surviving (whitelisted) ads must not count against them, or
        every default install would look like a non-blocker."""
        if self.requests == 0:
            return 0.0
        return self.easylist_blocked_hits / self.requests

    @property
    def total_ad_ratio(self) -> float:
        """Fraction of requests hitting any list (Fig 3's y-axis)."""
        if self.requests == 0:
            return 0.0
        return self.ad_requests / self.requests

    @property
    def ua_info(self) -> UserAgentInfo:
        return parse_user_agent(self.user_agent)

    def add(self, entry: ClassifiedRequest) -> None:
        self.requests += 1
        self.bytes += entry.bytes
        self.first_ts = min(self.first_ts, entry.record.ts)
        self.last_ts = max(self.last_ts, entry.record.ts)
        classification = entry.classification
        if not classification.is_ad:
            return
        self.ad_requests += 1
        self.ad_bytes += entry.bytes
        blacklist = classification.blacklist_name
        if blacklist is not None and blacklist.startswith(EASYLIST):
            self.easylist_hits += 1
            if not classification.is_whitelisted:
                self.easylist_blocked_hits += 1
        elif blacklist == EASYPRIVACY:
            self.easyprivacy_hits += 1
        if classification.whitelist_name == ACCEPTABLE_ADS:
            self.whitelisted += 1
            if classification.is_blacklisted:
                self.whitelisted_and_blacklisted += 1


def aggregate_users(entries: Iterable[ClassifiedRequest]) -> dict[UserKey, UserStats]:
    """Fold classified requests into per-user statistics."""
    stats: dict[UserKey, UserStats] = {}
    for entry in entries:
        user_stats = stats.get(entry.user)
        if user_stats is None:
            user_stats = UserStats(user=entry.user)
            stats[entry.user] = user_stats
        user_stats.add(entry)
    return stats


def heavy_hitters(
    stats: dict[UserKey, UserStats], *, min_requests: int = HEAVY_HITTER_THRESHOLD
) -> dict[UserKey, UserStats]:
    """The paper's *active users*: pairs above the request threshold."""
    return {user: s for user, s in stats.items() if s.requests > min_requests}


@dataclass(slots=True)
class BrowserAnnotation:
    """§6.1's annotated browser population, split by family."""

    desktop: dict[UserKey, UserStats] = field(default_factory=dict)
    mobile: dict[UserKey, UserStats] = field(default_factory=dict)
    discarded: dict[UserKey, UserStats] = field(default_factory=dict)

    @property
    def browsers(self) -> dict[UserKey, UserStats]:
        merged = dict(self.desktop)
        merged.update(self.mobile)
        return merged

    def by_family(self) -> dict[BrowserFamily, list[UserStats]]:
        result: dict[BrowserFamily, list[UserStats]] = {}
        for user_stats in self.browsers.values():
            result.setdefault(user_stats.ua_info.family, []).append(user_stats)
        return result


def annotate_browsers(stats: dict[UserKey, UserStats]) -> BrowserAnnotation:
    """Split users into desktop browsers, mobile browsers, and
    non-browser pairs (consoles, TVs, updaters, apps) that §6.1 drops."""
    annotation = BrowserAnnotation()
    for user, user_stats in stats.items():
        info = user_stats.ua_info
        if info.is_mobile_browser:
            annotation.mobile[user] = user_stats
        elif info.is_desktop_browser:
            annotation.desktop[user] = user_stats
        else:
            annotation.discarded[user] = user_stats
    return annotation
