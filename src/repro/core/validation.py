"""Validation utilities: grading the passive methodology.

The simulator carries generative ground truth per request
(:class:`repro.trace.records.GroundTruth`), so — unlike the original
study — every classification run can be graded.  This module holds the
confusion-matrix plumbing used by tests, benches and the sensitivity
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.pipeline import ClassifiedRequest
from repro.trace.records import GroundTruth

__all__ = ["ConfusionMatrix", "grade_classification", "grade_detection"]


@dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Binary confusion matrix with the usual derived metrics."""

    true_positive: int = 0
    false_positive: int = 0
    false_negative: int = 0
    true_negative: int = 0

    @property
    def total(self) -> int:
        return (
            self.true_positive + self.false_positive
            + self.false_negative + self.true_negative
        )

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.false_negative + other.false_negative,
            self.true_negative + other.true_negative,
        )


def grade_classification(
    entries: Sequence[ClassifiedRequest],
    truths: Sequence[GroundTruth],
    *,
    blacklist_only: bool = True,
) -> ConfusionMatrix:
    """Grade per-request ad classification against ground truth.

    ``blacklist_only`` (default) compares blacklist hits against
    ad/tracker intent — whitelist-only hits are the acceptable-ads
    list's deliberate behaviour (§7.3's gstatic anomaly), not errors.
    """
    tp = fp = fn = tn = 0
    for entry, truth in zip(entries, truths):
        truth_ad = truth.intent in ("ad", "tracker")
        if blacklist_only:
            predicted = entry.classification.is_blacklisted
        else:
            predicted = entry.is_ad
        if predicted and truth_ad:
            tp += 1
        elif predicted:
            fp += 1
        elif truth_ad:
            fn += 1
        else:
            tn += 1
    return ConfusionMatrix(tp, fp, fn, tn)


def grade_detection(
    usages: Iterable,
    device_profiles: dict,
) -> ConfusionMatrix:
    """Grade per-user ad-blocker detection (class C vs ABP installed).

    Args:
        usages: :class:`~repro.core.adblock_detect.UserUsage` items.
        device_profiles: ``(client, user_agent) ->``
            :class:`~repro.browser.profiles.BrowserProfile` mapping
            built from the generator's households.
    """
    tp = fp = fn = tn = 0
    for usage in usages:
        profile = device_profiles.get(usage.stats.user)
        has_abp = bool(profile is not None and profile.has_abp)
        if usage.likely_adblock and has_abp:
            tp += 1
        elif usage.likely_adblock:
            fp += 1
        elif has_abp:
            fn += 1
        else:
            tn += 1
    return ConfusionMatrix(tp, fp, fn, tn)
