"""Referrer-map reconstruction of page structure (§3.1, "Referrer Map").

Approximates, from headers alone, which page each request belongs to —
the context Adblock Plus reads off the DOM.  Built per user from the
chain of ``Referer`` values, in the spirit of StreamStructure [38] and
ReSurf [56], with the paper's two chain-repair extensions:

* ``Location`` response headers: the request following a redirection
  carries no referer; the redirect target is pre-registered so the
  follow-up attaches to the right page.
* URLs embedded in query strings (redirectors, click trackers) are
  inserted into the map as well.

The map answers two questions per request: *which page triggered it*
(for ``$domain=`` / third-party semantics) and *is it a page root*
(document vs subdocument typing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.http.url import embedded_urls

__all__ = ["Attribution", "ReferrerMap"]

_MAX_ENTRIES = 100_000  # per-user safety cap for multi-day traces


@dataclass(frozen=True, slots=True)
class Attribution:
    """Where one request was placed in the page structure."""

    page_url: str
    is_page_root: bool
    via: str  # "referer" | "location" | "embedded" | "root"


class ReferrerMap:
    """Streaming page-attribution state for ONE user's requests.

    Feed requests in timestamp order via :meth:`observe`.
    """

    def __init__(self, *, track_embedded: bool = True) -> None:
        self._page_root: dict[str, str] = {}
        self._pending_redirects: dict[str, str] = {}
        self._embedded: dict[str, str] = {}
        self._track_embedded = track_embedded

    def observe(
        self,
        url: str,
        referer: str | None,
        *,
        looks_like_document: bool,
        location: str | None = None,
    ) -> Attribution:
        """Attribute one request and update the map.

        Args:
            url: the request's absolute URL.
            referer: the Referer header, if any.
            looks_like_document: whether the *response* looks like an
                HTML document (candidate page root).
            location: the Location header of a redirect response.
        """
        attribution = self._attribute(url, referer, looks_like_document)
        self._remember(url, attribution.page_url)

        if location is not None:
            # The follow-up request to `location` will have no referer;
            # keep it attached to this request's page (§3.1).
            self._pending_redirects[location] = attribution.page_url
        if self._track_embedded:
            for embedded in embedded_urls(url):
                self._embedded[embedded] = attribution.page_url
        self._prune()
        return attribution

    def page_of(self, url: str) -> str | None:
        """Current attribution of a URL, if it has been seen."""
        return self._page_root.get(url)

    # -- checkpoint wire form (DESIGN.md §8) ---------------------------

    def export_state(self) -> dict:
        """Primitive-only snapshot; insertion order is part of the state
        (pruning drops the oldest half, so order changes behaviour)."""
        return {
            "page_root": list(self._page_root.items()),
            "pending_redirects": list(self._pending_redirects.items()),
            "embedded": list(self._embedded.items()),
        }

    @classmethod
    def from_state(cls, state: dict, *, track_embedded: bool = True) -> "ReferrerMap":
        """Inverse of :meth:`export_state` (``track_embedded`` comes from
        the pipeline config, which the run manifest pins)."""
        instance = cls(track_embedded=track_embedded)
        instance._page_root = dict(state["page_root"])
        instance._pending_redirects = dict(state["pending_redirects"])
        instance._embedded = dict(state["embedded"])
        return instance

    def merge_state(self, state: dict) -> None:
        """Fold another map's exported state into this one.

        Shard-parallel folds (DESIGN.md §10) merge maps of *different*
        users' requests only when the same user was split by a resharded
        run, so key sets are disjoint in practice.  A key present on
        both sides keeps the lexicographically smaller attribution —
        an arbitrary but commutative/associative tie-break, so the fold
        is insensitive to shard order.
        """
        for target, shard in (
            (self._page_root, state["page_root"]),
            (self._pending_redirects, state["pending_redirects"]),
            (self._embedded, state["embedded"]),
        ):
            for url, root in shard:
                held = target.get(url)
                if held is None or root < held:
                    target[url] = root

    # ------------------------------------------------------------------

    def _attribute(self, url: str, referer: str | None, looks_like_document: bool) -> Attribution:
        if referer:
            root = self._page_root.get(referer, referer)
            # An HTML response with a referer is an embedded
            # subdocument (iframe/widget); it stays inside the
            # referring page.  Link-click navigations are folded into
            # the previous page's root — a same-registrable-domain
            # approximation that preserves the matching context.
            return Attribution(page_url=root, is_page_root=False, via="referer")

        redirect_root = self._pending_redirects.pop(url, None)
        if redirect_root is not None:
            return Attribution(page_url=redirect_root, is_page_root=False, via="location")

        embedded_root = self._embedded.get(url)
        if embedded_root is not None:
            return Attribution(page_url=embedded_root, is_page_root=False, via="embedded")

        # No chain information: a direct navigation starts a new page.
        return Attribution(page_url=url, is_page_root=looks_like_document, via="root")

    def _remember(self, url: str, root: str) -> None:
        self._page_root[url] = root

    def _prune(self) -> None:
        if len(self._page_root) > _MAX_ENTRIES:
            # Drop the oldest half (dicts preserve insertion order).
            keep = list(self._page_root.items())[_MAX_ENTRIES // 2 :]
            self._page_root = dict(keep)
        if len(self._embedded) > _MAX_ENTRIES:
            keep = list(self._embedded.items())[_MAX_ENTRIES // 2 :]
            self._embedded = dict(keep)
        if len(self._pending_redirects) > _MAX_ENTRIES:
            self._pending_redirects.clear()
