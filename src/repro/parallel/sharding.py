"""Deterministic merge primitives for the parallel runner (DESIGN.md §10).

Workers finish records in shard-local order; these two small machines
put the global order back:

* :class:`OrderedRowEmitter` re-interleaves output rows by their global
  ingest index, emitting exactly the contiguous prefix ``0, 1, 2, …``
  as it becomes available — the serial emission order;
* :class:`QuarantineMerger` re-interleaves rejected lines by line
  number, releasing an entry only once every worker has read past its
  line (so no smaller-numbered entry can still arrive).

Both also implement the resume-side dedup: a durable parallel run may
have published rows/entries *beyond* the last checkpoint cut (workers
run ahead of the cut), and the replayed tail regenerates them
byte-identically; skipping everything at or below the restored
watermark is therefore lossless.  The same idempotence is what makes
supervised shard *respawn* (DESIGN.md §12) safe: a restarted worker
replays its stream from its last checkpoint (or from scratch) and
re-sends rows and rejected lines the parent may already hold — rows
overwrite identical pending payloads, rejected lines dedup by line
number, so one incarnation or five produce the same fold.

The user-space hash itself lives in :func:`repro.http.log.shard_of`,
next to the record schema it keys on.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.http.log import claims_line, shard_of

__all__ = ["shard_of", "claims_line", "OrderedRowEmitter", "QuarantineMerger"]


class OrderedRowEmitter:
    """Reorders ``(global_index, payload)`` pairs into index order.

    ``next_emit`` is the next index owed to the output; rows below it
    are duplicates of already-published output (resume replay) and are
    dropped.  Rows run at most one fix-up window plus one row batch
    ahead of the contiguous frontier, which bounds ``pending``.
    """

    def __init__(self, *, next_emit: int = 0) -> None:
        self.next_emit = next_emit
        self.pending: dict[int, tuple] = {}

    def push(self, index: int, payload: tuple) -> None:
        if index < self.next_emit:
            return  # already published before the resumed checkpoint
        self.pending[index] = payload

    def drain(self) -> Iterator[tuple]:
        """Yield payloads for the contiguous prefix available right now."""
        while self.pending:
            payload = self.pending.pop(self.next_emit, None)
            if payload is None:
                return
            self.next_emit += 1
            yield payload

    def assert_empty(self) -> None:
        if self.pending:
            missing = self.next_emit
            raise AssertionError(
                f"row merge incomplete: index {missing} never arrived "
                f"({len(self.pending)} rows stranded)"
            )


class QuarantineMerger:
    """Line-number-ordered fold of rejected lines from all shards.

    Entries are held (keyed by line number, which is globally unique —
    each raw line is rejected at most once, by exactly one shard) until
    :meth:`release` learns that every worker's reader has passed a
    given line; entries at or below that watermark can no longer be
    preceded by an unseen one and are flushed in line order.  Keying by
    line number makes :meth:`push` idempotent, so a respawned shard
    re-sending lines already held is harmless.  ``flushed_line`` is the
    resume watermark: entries at or below it are already in the sidecar
    ``.part`` file.
    """

    def __init__(self, write: Callable[[int, str, str], None], *, flushed_line: int = 0) -> None:
        self._write = write
        self._pending: dict[int, tuple[str, str]] = {}
        self.flushed_line = flushed_line

    def push(self, line_no: int, reason: str, raw: str) -> None:
        if line_no <= self.flushed_line:
            return  # already in the sidecar before the resumed checkpoint
        self._pending[line_no] = (reason, raw)

    def _flush(self, line_numbers: list[int]) -> None:
        for line_no in sorted(line_numbers):
            reason, raw = self._pending.pop(line_no)
            self._write(line_no, reason, raw)

    def release(self, through_line: int) -> None:
        """Flush entries at or below ``through_line`` (a safe watermark)."""
        self._flush([line_no for line_no in self._pending if line_no <= through_line])
        if through_line > self.flushed_line:
            self.flushed_line = through_line

    def finish(self) -> None:
        """End of stream: every entry is safe to flush."""
        if self._pending:
            self.flushed_line = max(self.flushed_line, max(self._pending))
        self._flush(list(self._pending))
