"""Shard worker process for the parallel classification pool.

One worker owns one shard of the user space (DESIGN.md §10).  It reads
and parses the *entire* input file itself — parsing is cheap relative
to classification and reparsing removes all input IPC — but classifies
only the records whose user hashes to its shard.  Everything that
defines the *global* serial order is replicated identically in every
worker from the full parsed stream:

* the **global ingest index** ``g`` — the position a record holds in
  the serial ingest order — which gates the fix-up buffer's release
  horizon and the redirect fix-up reach-back;
* the **reorder min-heap** — non-owned records ride along as
  placeholders so pops happen at exactly the serial moments;
* the reader's line/offset coordinates.

Released entries leave the worker as pre-rendered output rows tagged
with their global index; the parent merely interleaves shards back
into index order, which is what makes parallel output byte-identical
to the serial path.

Supervision (DESIGN.md §12) adds three obligations on this side:

* every message is stamped with the worker's incarnation ``attempt``
  so the parent can drop the last gasps of a killed predecessor;
* the run loop emits periodic ``hb`` heartbeats — progress-driven, not
  thread-driven, so a loop stuck inside one record goes silent and the
  parent's hang detector actually fires;
* an optional :class:`~repro.robustness.crash.WorkerFaultInjector`
  (armed by the ``REPRO_CHAOS`` spec) fires crash/hang/slow/garbage
  faults at exact record counts, for the chaos equivalence tests.
"""

from __future__ import annotations

import heapq
import io
import os
import queue
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.traffic import TrafficAccumulator
from repro.core.pipeline import AdClassificationPipeline, StreamingClassifier
from repro.exitcodes import EXIT_WORKER_ORPHANED, EXIT_WORKER_TERMINATED
from repro.http.log import HttpLogRecord, SeekableLogReader
from repro.http.url import split_url
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.crash import CRASH_EXIT_CODE, FaultAction, WorkerFaultInjector
from repro.robustness.health import PipelineHealth
from repro.robustness.policy import ErrorPolicy, LogParseError
from repro.robustness.quarantine import QuarantineWriter
from repro.robustness.runstate import classification_row

__all__ = ["WorkerConfig", "run_worker", "SHARD_STATE_VERSION"]

SHARD_STATE_VERSION = 1

# Rows per "batch" message; bounds both message size and the arrival
# lag of the parent's contiguous-prefix emitter.
_ROW_BATCH = 512

# How long a blocked queue put waits before re-checking that the parent
# is still alive (a dead parent never drains the queue).
_PUT_TIMEOUT_S = 2.0

# Orphan-watchdog poll interval.
_ORPHAN_POLL_S = 1.0

# Backstop for the SIGTERM flush: if the feeder cannot drain (parent
# wedged or gone), die anyway rather than hang the kill escalation.
_TERM_FLUSH_CAP_S = 4.0

# The payload a garbage-message fault puts on the wire: a recognizable
# nonsense kind, exercising the parent's unknown-message handling.
GARBAGE_KIND = "\x00garbage\x00"


@dataclass(slots=True)
class WorkerConfig:
    """Everything one shard worker needs, in picklable form."""

    worker_id: int
    workers: int
    input_path: str
    on_error: str  # ErrorPolicy value
    fixup_window: int | None
    reorder_window: float | None
    emit: str = "rows"  # "rows" (classify) | "fold" (report)
    checkpoint_dir: str | None = None  # this shard's own store
    checkpoint_every: int | None = None
    resume_generation: int | None = None
    attempt: int = 0  # incarnation number, stamped on every message
    heartbeat_interval_s: float | None = None  # None = no heartbeats
    chaos: str | None = None  # fault-injection spec (crash.parse_chaos)


class _QuarantineBuffer(QuarantineWriter):
    """Captures sidecar writes as tuples for shipment to the parent.

    The parent owns the single on-disk sidecar; a worker only routes
    the rejected lines its shard claims, so :meth:`write` records the
    ``(line_no, reason, raw)`` triple instead of emitting bytes.
    """

    def __init__(self) -> None:
        super().__init__(io.BytesIO())
        self.entries: list[tuple[int, str, str]] = []

    def write(self, line_no: int, reason: str, raw: str) -> None:
        self.entries.append((line_no, reason, raw))
        self.count += 1

    def drain(self) -> list[tuple[int, str, str]]:
        entries, self.entries = self.entries, []
        return entries


def run_worker(
    config: WorkerConfig,
    pipeline_factory: "Callable[[], AdClassificationPipeline]",
    out_queue: Any,
) -> None:
    """Process entry point: run one shard, stream results to the parent.

    Every outcome — including a strict-mode parse abort and unexpected
    exceptions — leaves as a message, so the parent never has to infer
    worker state from an exit code.
    """
    parent_pid = os.getppid()
    worker_id = config.worker_id
    attempt = config.attempt
    # Shutdown is the parent's job: on Ctrl-C it catches the signal,
    # terminates the pool and exits 130.  A worker that also received
    # the terminal's SIGINT (same process group) must not race it with
    # a KeyboardInterrupt traceback of its own.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, _make_term_handler(out_queue))
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    _start_orphan_watchdog(parent_pid)
    try:
        # First heartbeat before the (potentially slow) engine rebuild,
        # so the supervisor's silence clock starts from a real signal.
        if config.heartbeat_interval_s is not None:
            _put(out_queue, parent_pid, (worker_id, attempt, "hb", {"arrivals": 0}))
        _ShardWorker(config, pipeline_factory(), out_queue, parent_pid).run()
    except LogParseError as exc:
        _put(
            out_queue,
            parent_pid,
            (worker_id, attempt, "parse_error", (exc.line_no, exc.reason, exc.line)),
        )
    except BaseException:  # staticcheck: ok[RC002] shipped to the parent verbatim and re-raised there
        _put(out_queue, parent_pid, (worker_id, attempt, "error", traceback.format_exc()))


def _make_term_handler(out_queue: Any) -> "Callable[[int, Any], None]":
    """SIGTERM = die *politely*: flush the queue feeder, then exit.

    The supervisor's kill escalation starts with SIGTERM precisely so
    that a worker never dies while its queue feeder thread is halfway
    through a pipe write — a truncated frame would block the parent's
    next ``get`` forever (it reads a length header, then waits for
    bytes that never come).  The flush needs the parent to keep
    draining the pipe, which the supervisor guarantees by never
    blocking on the kill; the cap below covers the case where the
    parent is itself wedged or gone.
    """

    # staticcheck: ok[RC008] deliberate: SIGTERM must flush the queue feeder before dying (docstring above) — a truncated frame wedges the parent
    def handle(signum: int, frame: Any) -> None:
        def backstop() -> None:
            time.sleep(_TERM_FLUSH_CAP_S)
            os._exit(EXIT_WORKER_TERMINATED)

        threading.Thread(target=backstop, name="term-backstop", daemon=True).start()
        out_queue.close()
        out_queue.join_thread()
        os._exit(EXIT_WORKER_TERMINATED)

    return handle


def _start_orphan_watchdog(parent_pid: int) -> None:
    """Hard-exit the worker the moment its parent dies.

    The ``_put`` liveness check only fires while blocked on a *full*
    queue.  A worker whose queue still has slots sails on after a
    parent crash — and then hangs forever at interpreter exit, where
    the queue's feeder thread is joined while writing into a pipe
    nobody drains.  The orphan also keeps the parent's inherited
    stdout/stderr open, wedging any harness that waits for pipe EOF.
    ``os._exit`` from this daemon thread skips the feeder join
    entirely, which is safe: with the parent gone there is no reader
    to owe data to.
    """

    def watch() -> None:
        while True:
            time.sleep(_ORPHAN_POLL_S)
            if os.getppid() != parent_pid:
                os._exit(EXIT_WORKER_ORPHANED)

    threading.Thread(target=watch, name="orphan-watchdog", daemon=True).start()


def _put(out_queue: Any, parent_pid: int, message: tuple) -> None:
    """Queue put that notices a dead parent instead of blocking forever."""
    while True:
        try:
            out_queue.put(message, timeout=_PUT_TIMEOUT_S)
            return
        except queue.Full:
            if os.getppid() != parent_pid:
                os._exit(EXIT_WORKER_ORPHANED)  # orphaned: nobody will ever drain the queue


class _ShardWorker:
    """The per-process run loop (see module docstring for the model)."""

    def __init__(
        self,
        config: WorkerConfig,
        pipeline: AdClassificationPipeline,
        out_queue: Any,
        parent_pid: int,
    ) -> None:
        self.config = config
        self.pipeline = pipeline
        self.out_queue = out_queue
        self.parent_pid = parent_pid
        # keep=None: a shard never prunes its own store.  The parent lags
        # behind the workers (it checkpoints generation n only once every
        # shard's marker for n has arrived), so retention is the parent's
        # call — it prunes shard stores relative to its *own* generation.
        self.store = (
            CheckpointStore(config.checkpoint_dir, keep=None)
            if config.checkpoint_dir is not None
            else None
        )
        self.quarantine = _QuarantineBuffer()
        self.health = PipelineHealth()
        # Replicated global stream state (identical in every worker).
        self._g = 0  # next global ingest index
        self._arrivals = 0  # parsed records seen, in arrival order
        self._heap: list[tuple[float, int, HttpLogRecord | None]] = []
        self._seq = 0
        self._max_ts = float("-inf")
        # Outbound row batch: (global index, rendered row, is_ad, is_wl).
        self._rows: list[tuple[int, str, bool, bool]] = []
        self.accumulator: TrafficAccumulator | None = (
            TrafficAccumulator() if config.emit == "fold" else None
        )
        self.classifier: StreamingClassifier | None = None
        self.reader: SeekableLogReader | None = None
        # Supervision plumbing (DESIGN.md §12).
        self.injector = WorkerFaultInjector.for_worker(
            config.chaos, config.worker_id, config.attempt
        )
        self._hb_interval = config.heartbeat_interval_s
        self._next_beat = (
            time.monotonic() + self._hb_interval if self._hb_interval is not None else 0.0
        )

    # -- lifecycle --------------------------------------------------------

    def run(self) -> None:
        config = self.config
        payload = None
        if config.resume_generation is not None:
            assert self.store is not None
            payload = self.store.load(config.resume_generation).payload
            self._restore_scalars(payload)
        self.reader = SeekableLogReader(
            config.input_path,
            on_error=ErrorPolicy(config.on_error),
            health=self.health,
            quarantine=self.quarantine,
            shard=(config.worker_id, config.workers),
        )
        self.classifier = StreamingClassifier(
            self.pipeline,
            fixup_window=config.fixup_window,
            reorder_window=None,  # replicated externally, see _arrive()
            health=self.health,
        )
        if payload is not None:
            self.reader.seek(**payload["reader"])
            self.classifier.restore_state(payload["classifier"])
        try:
            self._loop()
        finally:
            self.reader.close()

    def _restore_scalars(self, payload: dict) -> None:
        if payload.get("version") != SHARD_STATE_VERSION:
            raise ValueError(f"unsupported shard state version {payload.get('version')!r}")
        if (payload["worker"], payload["workers"]) != (
            self.config.worker_id,
            self.config.workers,
        ):
            raise ValueError(
                f"shard checkpoint belongs to worker {payload['worker']}/{payload['workers']}, "
                f"not {self.config.worker_id}/{self.config.workers}"
            )
        self.health = PipelineHealth.from_state(payload["health"])
        self._g = payload["g"]
        self._arrivals = payload["arrivals"]
        reorder = payload["heap"]
        self._heap = [
            (ts, seq, HttpLogRecord.from_row(row) if row is not None else None)
            for ts, seq, row in reorder["entries"]
        ]
        heapq.heapify(self._heap)
        self._seq = reorder["seq"]
        self._max_ts = reorder["max_ts"]

    # -- the run loop -----------------------------------------------------

    def _loop(self) -> None:
        config = self.config
        every = config.checkpoint_every
        assert self.reader is not None
        for record, owned in self.reader.iter_shard():
            self._arrivals += 1
            if config.reorder_window is None:
                self._advance(record if owned else None)
            else:
                self._arrive(record, owned)
            if self.store is not None and every and self._arrivals % every == 0:
                self._checkpoint()
            # Supervision duties, after this record's effects (rows,
            # checkpoint) have been applied — so an injected crash at
            # record N dies with exactly N records processed, and a
            # heartbeat always vouches for completed work.
            if self.injector is not None:
                action = self.injector.tick()
                if action is FaultAction.CRASH:
                    # Flush the queue feeder first: dying while it holds
                    # the shared write lock would block every other
                    # worker's put (a multiprocessing.Queue hazard the
                    # harness must not trip on purpose).
                    self.out_queue.close()
                    self.out_queue.join_thread()
                    os._exit(CRASH_EXIT_CODE)
                elif action is FaultAction.GARBAGE:
                    self._send(GARBAGE_KIND, b"\xde\xad\xbe\xef")
                    # A worker whose stream has degenerated to garbage
                    # is not meaningfully continuing; quiescing also
                    # makes the parent's kill safe (feeder drained).
                    self.injector.nap()
            if self._hb_interval is not None:
                now = time.monotonic()
                if now >= self._next_beat:
                    self._send("hb", {"arrivals": self._arrivals})
                    self._next_beat = now + self._hb_interval
        while self._heap:
            self._advance(heapq.heappop(self._heap)[2])
        assert self.classifier is not None
        for index, entry in self.classifier.finish_indexed():
            self._emit(index, entry)
        self._flush()
        cache_stats = self.pipeline.decision_cache_stats
        url_info = split_url.cache_info()
        done = {
            "arrivals": self._arrivals,
            "health": self.health.export_state(),
            "fold": self.accumulator.export_state() if self.accumulator is not None else None,
            # Transient observability, shipped OUTSIDE the health state:
            # per-shard caches are process-local, so their counters must
            # never enter the mergeable (checkpointable) health fields.
            "cache": (
                (cache_stats.hits, cache_stats.misses, cache_stats.evictions)
                if cache_stats is not None
                else None
            ),
            "url_cache": (url_info.hits, url_info.misses),
        }
        self._send("done", done)

    def _arrive(self, record: HttpLogRecord, owned: bool) -> None:
        """Replicate the serial reorder buffer over the *full* stream.

        Every worker pushes every parsed record (placeholder ``None``
        when not owned) with the same global arrival sequence number,
        so pops — and therefore ingest indexes — happen in exactly the
        serial order in every worker.
        """
        if owned and record.ts < self._max_ts:
            self.health.records_reordered += 1
        self._max_ts = max(self._max_ts, record.ts)
        heapq.heappush(self._heap, (record.ts, self._seq, record if owned else None))
        self._seq += 1
        assert self.config.reorder_window is not None
        horizon = self._max_ts - self.config.reorder_window
        while self._heap and self._heap[0][0] <= horizon:
            self._advance(heapq.heappop(self._heap)[2])

    def _advance(self, record: HttpLogRecord | None) -> None:
        """Consume one global ingest index; classify if owned."""
        index = self._g
        self._g = index + 1
        assert self.classifier is not None
        if record is None:
            pairs = self.classifier.tick(index)
        else:
            pairs = self.classifier.feed_at(record, index)
        for released_index, entry in pairs:
            self._emit(released_index, entry)

    def _emit(self, index: int, entry) -> None:
        if self.accumulator is not None:
            self.accumulator.add(entry)
            return
        self._rows.append(
            (index, classification_row(entry), entry.is_ad, entry.is_whitelisted)
        )
        if len(self._rows) >= _ROW_BATCH:
            self._flush()

    def _flush(self) -> None:
        rows, self._rows = self._rows, []
        rejected = self.quarantine.drain()
        if not rows and not rejected:
            return
        self._send("batch", {"rows": rows, "quarantine": rejected})

    def _send(self, kind: str, message: Any) -> None:
        _put(
            self.out_queue,
            self.parent_pid,
            (self.config.worker_id, self.config.attempt, kind, message),
        )

    # -- checkpoints ------------------------------------------------------

    def _checkpoint(self) -> None:
        """Save this shard's generation; tell the parent it is durable.

        The generation number is ``arrivals / checkpoint_every`` — a
        pure function of the replicated stream position — so all
        workers independently produce the *same* generation numbers at
        the *same* global cut points, which is what lets resume pick a
        single rendezvous generation across stores.  Rows are flushed
        first: when the parent has collected this marker from every
        shard, every row at or below the cut has already arrived.
        """
        self._flush()
        assert self.store is not None and self.config.checkpoint_every
        assert self.reader is not None and self.classifier is not None
        generation = self._arrivals // self.config.checkpoint_every
        payload = {
            "version": SHARD_STATE_VERSION,
            "worker": self.config.worker_id,
            "workers": self.config.workers,
            "generation": generation,
            "arrivals": self._arrivals,
            "g": self._g,
            "reader": {
                "offset": self.reader.offset,
                "line_no": self.reader.line_no,
                "header": self.reader.header,
            },
            "classifier": self.classifier.export_state(),
            "heap": {
                "entries": [
                    (ts, seq, record.to_row() if record is not None else None)
                    for ts, seq, record in self._heap
                ],
                "seq": self._seq,
                "max_ts": self._max_ts,
            },
            "health": self.health.export_state(),
        }
        self.store.save(payload, generation=generation)
        self._send(
            "ckpt",
            {"generation": generation, "line_no": self.reader.line_no, "g": self._g},
        )
