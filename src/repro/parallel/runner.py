"""Parent-side orchestration of the shard worker pool (DESIGN.md §10).

The parent never parses or classifies.  It spawns one worker per shard,
then folds their message streams back into the single serial-order
output: rows re-interleave by global ingest index, rejected lines by
line number, health counters and traffic accumulators by
``merge_state()`` in shard order.

Durable runs extend the DESIGN.md §8 model with *per-shard* checkpoint
stores.  Each worker autonomously saves generation ``n`` when its
replicated stream position crosses the ``n * checkpoint_every``-th
parsed record — a pure function of the input, so all workers cut at the
same global positions — and notifies the parent, which saves its own
generation-``n`` state (sink positions, emit frontier, sidecar
watermark) once every shard's marker for ``n`` has arrived.  Resume
restarts every worker from the newest generation valid in the parent
store *and* every shard store; output published beyond that cut is
deduplicated by the emit frontier, which is lossless because the
replayed tail regenerates it byte-identically.

Worker *supervision* (DESIGN.md §12) rides on the same message stream:
every message doubles as a heartbeat, a
:class:`~repro.parallel.supervision.WorkerSupervisor` kills and
respawns crashed or silent shards within a
:class:`~repro.robustness.retry.RetryPolicy` budget, and terminal
failures either abort the run (:class:`WorkerFailure`) or degrade it —
finish the surviving shards and report the gap honestly.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.traffic import TrafficAccumulator
from repro.core.pipeline import AdClassificationPipeline
from repro.parallel.sharding import OrderedRowEmitter, QuarantineMerger
from repro.parallel.supervision import RunInterrupted, WorkerFailure, WorkerSupervisor
from repro.parallel.worker import GARBAGE_KIND, WorkerConfig, run_worker
from repro.robustness.atomic import replace_atomic
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.crash import CHAOS_ENV, CrashInjector
from repro.robustness.health import PipelineHealth
from repro.robustness.policy import ErrorPolicy, LogParseError
from repro.robustness.quarantine import QuarantineWriter
from repro.robustness.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.robustness.runstate import ClassifySink, ManifestMismatch, RunManifest

__all__ = [
    "ParallelOutcome",
    "ParallelRun",
    "RunInterrupted",
    "WorkerFailure",
    "build_ecosystem_pipeline",
]

PARENT_STATE_VERSION = 1

# The durable fix-up window (DurableRun's default): bounds worker memory
# and how far output rows can trail the read position.  The non-durable
# path buffers everything, mirroring AdClassificationPipeline.process().
DURABLE_FIXUP_WINDOW = 1024

_QUEUE_SLOTS_PER_WORKER = 4
_POLL_TIMEOUT_S = 1.0
# How long finished workers get to exit before being reported as
# stragglers (and then terminated by the cleanup path).
_STRAGGLER_GRACE_S = 10.0


def build_ecosystem_pipeline(
    publishers: int,
    eco_seed: int,
    use_decision_cache: bool = True,
    matcher: str = "buckets",
    snapshot_path: str | None = None,
    snapshot_policy: str = "refuse",
) -> AdClassificationPipeline:
    """Picklable pipeline factory for ecosystem-backed CLI runs.

    Each worker process rebuilds the ecosystem, filter lists and engine
    itself — the compiled engine is far bigger than the two integers
    that determine it, and the rebuild is deterministic.  Each worker
    therefore also gets its own decision cache (when enabled), which is
    naturally coherent: sharding is per-user, and a cache is pure
    memoization of a deterministic engine anyway.

    With ``snapshot_path``, workers skip the rebuild entirely and
    deserialize the precompiled engine in milliseconds (DESIGN.md §15)
    — the spin-up win multiplies by the pool size.  Validation failures
    propagate (``refuse``) so the supervisor surfaces them instead of
    shards silently diverging; ``rebuild`` falls back to the
    deterministic list build, which is decision-identical anyway.
    """
    from repro.core.pipeline import PipelineConfig
    from repro.filterlist import build_lists
    from repro.filterlist.snapshot import SnapshotError, load_snapshot
    from repro.web import Ecosystem, EcosystemConfig

    config = PipelineConfig(use_decision_cache=use_decision_cache, matcher=matcher)
    if snapshot_path:
        try:
            loaded = load_snapshot(snapshot_path, matcher=matcher)
        except (SnapshotError, FileNotFoundError):
            if snapshot_policy == "refuse":
                raise
        else:
            return AdClassificationPipeline.from_engine(loaded.engine, config)
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=publishers, seed=eco_seed))
    return AdClassificationPipeline(build_lists(ecosystem.list_spec()), config)


@dataclass(slots=True)
class ParallelOutcome:
    """What a pool run produced, for the CLI to render."""

    health: PipelineHealth
    records: int
    rows: int
    quarantine_count: int
    quarantine_path: str | None
    accumulator: TrafficAccumulator | None
    resumed_generation: int | None
    checkpoints_written: int
    output_paths: list[str] = field(default_factory=list)
    degraded_shards: list[int] = field(default_factory=list)
    worker_restarts: int = 0


class ParallelRun:
    """One classification run over a pool of shard workers.

    Two execution modes share the machinery:

    * non-durable (``directory=None``): rows stream to ``on_row`` and
      rejected lines to a caller-owned ``quarantine`` writer, exactly
      mirroring the serial in-memory path;
    * durable (``directory`` set): the parent owns a
      :class:`ClassifySink` over ``output.part``, the quarantine
      ``.part`` sidecar, the run manifest, and the parent checkpoint
      store, mirroring :class:`repro.robustness.runstate.DurableRun`.
    """

    def __init__(
        self,
        *,
        workers: int,
        input_path: str,
        pipeline_factory: "Callable[[], AdClassificationPipeline]",
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        reorder_window: float | None = None,
        emit: str = "rows",
        on_row: "Callable[[str, bool, bool], None] | None" = None,
        quarantine: QuarantineWriter | None = None,
        directory: str | None = None,
        manifest: RunManifest | None = None,
        sink: ClassifySink | None = None,
        checkpoint_every: int | None = None,
        keep: int = 3,
        resume: bool = False,
        crash_injector: CrashInjector | None = None,
        worker_timeout: float | None = 30.0,
        retry: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        on_worker_failure: str = "abort",
        chaos: str | None = None,
        log: "Callable[[str], None]" = lambda message: None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if on_worker_failure not in ("abort", "degrade"):
            raise ValueError("on_worker_failure must be 'abort' or 'degrade'")
        self.workers = workers
        self.input_path = input_path
        self.pipeline_factory = pipeline_factory
        self.on_error = on_error
        self.reorder_window = reorder_window
        self.emit = emit
        self.on_row = on_row
        self.quarantine = quarantine
        self.directory = directory
        self.manifest = manifest
        self.sink = sink
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.resume = resume
        self.crash_injector = crash_injector
        self.worker_timeout = worker_timeout
        self.retry = retry
        self.on_worker_failure = on_worker_failure
        # Progress-driven heartbeats: workers beat from their run loop
        # (so a hung loop goes silent), several times per timeout window
        # but at most once per second on the fast path.
        self.heartbeat_interval_s = (
            None if worker_timeout is None else min(1.0, worker_timeout / 4.0)
        )
        self.chaos = chaos if chaos is not None else os.environ.get(CHAOS_ENV) or None
        self._interrupt: int | None = None
        self._last_parent_generation = 0
        self.log = log
        if self.durable:
            if manifest is None or sink is None:
                raise ValueError("durable parallel runs need a manifest and a sink")
            if emit != "rows":
                raise ValueError("durable parallel runs only support classify output")

    @property
    def durable(self) -> bool:
        return self.directory is not None

    # -- paths ------------------------------------------------------------

    @property
    def parent_store(self) -> CheckpointStore:
        assert self.directory is not None
        return CheckpointStore(os.path.join(self.directory, "parent"), keep=self.keep)

    def shard_dir(self, worker_id: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"shard-{worker_id:02d}")

    @property
    def quarantine_part(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "quarantine.part")

    # -- lifecycle --------------------------------------------------------

    def _prepare(self) -> tuple[int | None, dict | None]:
        """Manifest handling + resume rendezvous; mirrors DurableRun."""
        if not self.durable:
            return None, None
        assert self.directory is not None and self.manifest is not None
        os.makedirs(self.directory, exist_ok=True)
        if self.resume:
            saved = RunManifest.load(self.directory)
            diagnostics = saved.mismatches(self.manifest)
            if diagnostics:
                raise ManifestMismatch(diagnostics)
            candidates = set(self.parent_store.valid_generations())
            for worker_id in range(self.workers):
                store = CheckpointStore(self.shard_dir(worker_id), keep=self.keep)
                candidates &= set(store.valid_generations())
                if not candidates:
                    break
            if candidates:
                generation = max(candidates)
                payload = self.parent_store.load(generation).payload
                if payload.get("version") != PARENT_STATE_VERSION:
                    raise ValueError(
                        f"unsupported parent state version {payload.get('version')!r}"
                    )
                self.log(
                    f"resuming from checkpoint generation {generation} "
                    f"({payload['records']} records already processed)"
                )
                return generation, payload
            self.log("no valid checkpoint found; restarting from the beginning")
            return None, None
        for store in [self.parent_store] + [
            CheckpointStore(self.shard_dir(worker_id)) for worker_id in range(self.workers)
        ]:
            for generation in store.generations():
                os.unlink(store.path_for(generation))
        self.manifest.save(self.directory)
        return None, None

    def _open_quarantine(self, payload: dict | None) -> QuarantineWriter | None:
        """Durable-mode sidecar over quarantine.part (resume truncates)."""
        if self.on_error is not ErrorPolicy.QUARANTINE:
            return None
        if payload is None:
            # staticcheck: ok[RC001] quarantine .part sink, atomically published on finish
            stream = open(self.quarantine_part, "wb")
        else:
            state = payload["quarantine"]
            # staticcheck: ok[RC001] resume rewinds the sidecar to the checkpointed offset
            stream = open(self.quarantine_part, "r+b")
            stream.truncate(state["pos"])
            stream.seek(state["pos"])
        writer = QuarantineWriter(stream, owns_stream=True)
        if payload is not None:
            writer.restore_state(payload["quarantine"])
        return writer

    def _spawn_worker(
        self, context, out_queue, worker_id: int, attempt: int, rendezvous: int | None
    ):
        """Start one shard incarnation (the supervisor's spawn callback).

        The first incarnation resumes from the pool-wide rendezvous
        generation; a *respawn* resumes from the parent's last *saved*
        generation.  Not the shard's own newest checkpoint: a worker
        saves to disk before its marker message clears the queue pipe,
        so its newest generation can run *ahead* of what the parent has
        folded — resuming there would silently skip the in-flight rows
        that died with the old incarnation.  The parent generation is
        at or behind its fold frontier for every shard, so the replayed
        tail regenerates everything missing (and re-sends some rows the
        parent already holds, which the idempotent merge structures
        absorb).  Non-durable respawns replay the whole shard from
        scratch for the same reason.
        """
        if attempt == 0:
            resume_generation = rendezvous
        elif self.durable:
            resume_generation = self._last_parent_generation or None
        else:
            resume_generation = None
        config = WorkerConfig(
            worker_id=worker_id,
            workers=self.workers,
            input_path=self.input_path,
            on_error=self.on_error.value,
            fixup_window=DURABLE_FIXUP_WINDOW if self.durable else None,
            reorder_window=self.reorder_window,
            emit=self.emit,
            checkpoint_dir=self.shard_dir(worker_id) if self.durable else None,
            checkpoint_every=self.checkpoint_every if self.durable else None,
            resume_generation=resume_generation,
            attempt=attempt,
            heartbeat_interval_s=self.heartbeat_interval_s,
            chaos=self.chaos,
        )
        process = context.Process(
            target=run_worker,
            args=(config, self.pipeline_factory, out_queue),
            daemon=True,
        )
        process.start()
        return process

    # -- signals -----------------------------------------------------------

    def _install_signal_handlers(self) -> dict[int, Any] | None:
        """SIGINT/SIGTERM set a flag; the run loop raises RunInterrupted.

        Handlers can only be installed from the main thread; elsewhere
        (tests driving runs from threads) interruption stays with the
        caller.  Workers ignore SIGINT themselves, so a terminal ^C
        reaches only the parent, which shuts the pool down cleanly.
        """
        if threading.current_thread() is not threading.main_thread():
            return None

        def _flag(signum: int, frame: Any) -> None:
            self._interrupt = signum

        return {
            signum: signal.signal(signum, _flag)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }

    @staticmethod
    def _restore_signal_handlers(previous: dict[int, Any] | None) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # -- the fold ---------------------------------------------------------

    def run(self) -> ParallelOutcome:
        # Surface a missing input as FileNotFoundError in the parent
        # (CLI exit 2) instead of as a WorkerFailure traceback.
        open(self.input_path, "rb").close()
        resume_generation, payload = self._prepare()
        quarantine = self.quarantine
        if self.durable:
            assert self.sink is not None
            self.sink.begin(fresh=payload is None, state=payload["sink"] if payload else None)
            quarantine = self._open_quarantine(payload)

        emitter = OrderedRowEmitter(next_emit=payload["next_emit"] if payload else 0)
        merger = QuarantineMerger(
            quarantine.write if quarantine is not None else (lambda line_no, reason, raw: None),
            flushed_line=payload["flushed_line"] if payload else 0,
        )

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        out_queue = context.Queue(maxsize=_QUEUE_SLOTS_PER_WORKER * self.workers + 8)
        supervisor = WorkerSupervisor(
            workers=self.workers,
            spawn=lambda worker_id, attempt: self._spawn_worker(
                context, out_queue, worker_id, attempt, resume_generation
            ),
            retry=self.retry,
            worker_timeout=self.worker_timeout,
            on_failure=self.on_worker_failure,
            log=self.log,
        )

        done: dict[int, dict] = {}
        markers: dict[int, dict[int, dict]] = {}
        checkpoints_written = 0
        # Doubles as the respawn resume point and the guard against
        # replayed markers (a respawned shard re-walks cuts the parent
        # may already have made durable).
        self._last_parent_generation = resume_generation or 0
        self._interrupt = None
        previous_handlers = self._install_signal_handlers()
        completed = False
        try:
            supervisor.start()
            while not supervisor.finished:
                if self._interrupt is not None:
                    raise RunInterrupted(self._interrupt)
                try:
                    item = out_queue.get(timeout=_POLL_TIMEOUT_S)
                except queue_module.Empty:
                    supervisor.poll()
                    continue
                try:
                    worker_id, attempt, kind, message = item
                except (TypeError, ValueError):
                    self.log(f"discarding malformed result-queue item: {item!r}")
                    supervisor.poll()
                    continue
                if not isinstance(worker_id, int) or not isinstance(attempt, int):
                    self.log(f"discarding malformed result-queue item: {item!r}")
                    supervisor.poll()
                    continue
                if not supervisor.accept(worker_id, attempt, kind):
                    supervisor.poll()
                    continue
                if kind == "batch":
                    for index, row, is_ad, is_whitelisted in message["rows"]:
                        emitter.push(index, (row, is_ad, is_whitelisted))
                    for row, is_ad, is_whitelisted in emitter.drain():
                        self._consume_row(row, is_ad, is_whitelisted)
                    for line_no, reason, raw in message["quarantine"]:
                        merger.push(line_no, reason, raw)
                elif kind == "hb":
                    pass  # pure liveness evidence; accept() already credited it
                elif kind == "ckpt":
                    generation = message["generation"]
                    if generation > self._last_parent_generation:
                        group = markers.setdefault(generation, {})
                        group[worker_id] = message
                        if len(group) == self.workers:
                            del markers[generation]
                            self._save_parent_checkpoint(
                                generation, group, emitter, merger, quarantine
                            )
                            checkpoints_written += 1
                            self._last_parent_generation = generation
                elif kind == "done":
                    done[worker_id] = message
                    supervisor.mark_done(worker_id)
                elif kind == "parse_error":
                    line_no, reason, line = message
                    raise LogParseError(line_no, reason, line)
                elif kind == "error":
                    supervisor.fault(worker_id, f"failed:\n{message}")
                else:
                    # GARBAGE_KIND or anything else unintelligible: this
                    # incarnation's stream can no longer be trusted.
                    supervisor.fault(worker_id, "sent garbage on the result queue")
                supervisor.poll()
            stragglers = supervisor.join_all(_STRAGGLER_GRACE_S)
            if stragglers:
                self.log(
                    "worker(s) "
                    + ", ".join(str(worker_id) for worker_id in stragglers)
                    + f" still running {_STRAGGLER_GRACE_S:g}s after the pool "
                    "finished; terminating them"
                )
            completed = True
        finally:
            self._restore_signal_handlers(previous_handlers)
            supervisor.terminate_all()
            out_queue.close()
            if not completed and self.durable:
                # Interrupted or failed mid-run: keep output.part, the
                # sidecar and every checkpoint for a later --resume, but
                # close the streams cleanly (no finalize, no publish).
                assert self.sink is not None
                self.sink.close()
                if quarantine is not None:
                    quarantine.sync()
                    quarantine.close()

        degraded_shards = supervisor.failed_ids
        for row, is_ad, is_whitelisted in emitter.drain():
            self._consume_row(row, is_ad, is_whitelisted)
        if degraded_shards:
            for worker_id in degraded_shards:
                self.log(f"shard {worker_id} lost: {supervisor.slots[worker_id].fail_reason}")
            if emitter.pending:
                # Rows from surviving shards past the dead shard's emit
                # frontier can never become contiguous; the published
                # output is the exact serial prefix up to the gap.
                self.log(
                    f"discarding {len(emitter.pending)} buffered rows stranded "
                    "past the missing shard's frontier"
                )
                emitter.pending.clear()
            records = next(iter(done.values()))["arrivals"] if done else 0
        else:
            records = done[0]["arrivals"]
            if self.emit == "rows":
                if emitter.next_emit != records:
                    emitter.assert_empty()
                    raise WorkerFailure(
                        f"row merge lost rows: emitted {emitter.next_emit} of {records}"
                    )
                emitter.assert_empty()
        if not (degraded_shards and self.durable):
            merger.finish()

        health = PipelineHealth()
        for _worker_id, message in sorted(done.items()):
            health.merge_state(message["health"])
            # Cache counters travel outside the (checkpointable) health
            # state; fold them into the parent's transient fields so the
            # CLI can report pool-wide cache effectiveness.
            cache_stats = message.get("cache")
            if cache_stats is not None:
                health.add_cache_stats(*cache_stats)
            url_cache_stats = message.get("url_cache")
            if url_cache_stats is not None:
                health.add_url_cache_stats(*url_cache_stats)
        health.worker_restarts += supervisor.restarts
        health.heartbeat_gaps += supervisor.heartbeat_gaps
        health.shards_degraded += len(degraded_shards)
        accumulator = None
        if self.emit == "fold":
            accumulator = TrafficAccumulator()
            for _worker_id, message in sorted(done.items()):
                accumulator.merge_state(message["fold"])

        output_paths: list[str] = []
        quarantine_path: str | None = None
        quarantine_count = quarantine.count if quarantine is not None else 0
        if self.durable:
            assert self.sink is not None and self.manifest is not None
            if degraded_shards:
                # Honest partial result: withhold finalize so the .part
                # outputs and every checkpoint survive for a --resume
                # once whatever killed the shard is fixed.
                self.sink.close()
                if quarantine is not None:
                    quarantine.sync()
                    quarantine.close()
                self.log(
                    "degraded run: outputs left unpublished as .part files under "
                    f"{self.directory} (fix the fault and --resume to complete them)"
                )
            else:
                output_paths = list(self.sink.finalize())
                self.sink.close()
                if quarantine is not None:
                    quarantine.sync()
                    quarantine.close()
                    quarantine_path = self.manifest.quarantine_path
                    assert quarantine_path is not None
                    replace_atomic(self.quarantine_part, quarantine_path)
                stores = [self.parent_store] + [
                    CheckpointStore(self.shard_dir(worker_id))
                    for worker_id in range(self.workers)
                ]
                for store in stores:
                    for generation in store.generations():
                        os.unlink(store.path_for(generation))

        return ParallelOutcome(
            health=health,
            records=records,
            rows=emitter.next_emit,
            quarantine_count=quarantine_count,
            quarantine_path=quarantine_path,
            accumulator=accumulator,
            resumed_generation=resume_generation,
            checkpoints_written=checkpoints_written,
            degraded_shards=degraded_shards,
            worker_restarts=supervisor.restarts,
        )

    def _consume_row(self, row: str, is_ad: bool, is_whitelisted: bool) -> None:
        if self.durable:
            assert self.sink is not None
            self.sink.consume_row(row, is_ad, is_whitelisted)
        elif self.on_row is not None:
            self.on_row(row, is_ad, is_whitelisted)
        if self.crash_injector is not None:
            self.crash_injector.tick()

    def _save_parent_checkpoint(
        self,
        generation: int,
        group: dict[int, dict],
        emitter: OrderedRowEmitter,
        merger: QuarantineMerger,
        quarantine: QuarantineWriter | None,
    ) -> None:
        """Persist parent state once every shard's generation is durable.

        Workers replicate the same stream, so their cut coordinates
        must agree exactly — a mismatch means the replication invariant
        broke and resuming would corrupt output.
        """
        cuts = {(message["line_no"], message["g"]) for message in group.values()}
        if len(cuts) != 1:
            raise WorkerFailure(
                f"shard checkpoints disagree on the generation-{generation} cut: {sorted(cuts)}"
            )
        cut_line, _cut_g = cuts.pop()
        quarantine_state: dict = {"pos": 0, "count": 0, "wrote_header": False}
        if quarantine is not None:
            # Everything at or below the cut line has arrived (workers
            # flush before their marker), so it is safe — and necessary,
            # for the recorded position to cover it — to flush now.
            merger.release(cut_line)
            quarantine.sync()
            quarantine_state = quarantine.export_state()
            quarantine_state["pos"] = quarantine.tell()
        assert self.sink is not None and self.checkpoint_every is not None
        state = {
            "version": PARENT_STATE_VERSION,
            "workers": self.workers,
            "generation": generation,
            "records": generation * self.checkpoint_every,
            "next_emit": emitter.next_emit,
            "sink": self.sink.export_state(),
            "quarantine": quarantine_state,
            "flushed_line": merger.flushed_line,
        }
        self.parent_store.save(state, generation=generation)
        # Retention is the parent's call: shard stores never self-prune
        # (they run ahead of the parent and would delete the very
        # generations the resume rendezvous needs).  Prune them to the
        # parent's retention window, leaving newer shard generations be.
        for worker_id in range(self.workers):
            CheckpointStore(self.shard_dir(worker_id), keep=self.keep).prune_through(generation)
