"""Parent-side orchestration of the shard worker pool (DESIGN.md §10).

The parent never parses or classifies.  It spawns one worker per shard,
then folds their message streams back into the single serial-order
output: rows re-interleave by global ingest index, rejected lines by
line number, health counters and traffic accumulators by
``merge_state()`` in shard order.

Durable runs extend the DESIGN.md §8 model with *per-shard* checkpoint
stores.  Each worker autonomously saves generation ``n`` when its
replicated stream position crosses the ``n * checkpoint_every``-th
parsed record — a pure function of the input, so all workers cut at the
same global positions — and notifies the parent, which saves its own
generation-``n`` state (sink positions, emit frontier, sidecar
watermark) once every shard's marker for ``n`` has arrived.  Resume
restarts every worker from the newest generation valid in the parent
store *and* every shard store; output published beyond that cut is
deduplicated by the emit frontier, which is lossless because the
replayed tail regenerates it byte-identically.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.traffic import TrafficAccumulator
from repro.core.pipeline import AdClassificationPipeline
from repro.parallel.sharding import OrderedRowEmitter, QuarantineMerger
from repro.parallel.worker import WorkerConfig, run_worker
from repro.robustness.atomic import replace_atomic
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.crash import CrashInjector
from repro.robustness.health import PipelineHealth
from repro.robustness.policy import ErrorPolicy, LogParseError
from repro.robustness.quarantine import QuarantineWriter
from repro.robustness.runstate import ClassifySink, ManifestMismatch, RunManifest

__all__ = [
    "ParallelOutcome",
    "ParallelRun",
    "WorkerFailure",
    "build_ecosystem_pipeline",
]

PARENT_STATE_VERSION = 1

# The durable fix-up window (DurableRun's default): bounds worker memory
# and how far output rows can trail the read position.  The non-durable
# path buffers everything, mirroring AdClassificationPipeline.process().
DURABLE_FIXUP_WINDOW = 1024

_QUEUE_SLOTS_PER_WORKER = 4
_POLL_TIMEOUT_S = 1.0
# Consecutive empty polls with a dead, done-less worker before giving
# up (its final messages may still be in flight through the queue pipe).
_DEAD_WORKER_GRACE_POLLS = 3


class WorkerFailure(Exception):
    """A shard worker died or reported an unexpected exception."""


def build_ecosystem_pipeline(
    publishers: int, eco_seed: int, use_decision_cache: bool = True
) -> AdClassificationPipeline:
    """Picklable pipeline factory for ecosystem-backed CLI runs.

    Each worker process rebuilds the ecosystem, filter lists and engine
    itself — the compiled engine is far bigger than the two integers
    that determine it, and the rebuild is deterministic.  Each worker
    therefore also gets its own decision cache (when enabled), which is
    naturally coherent: sharding is per-user, and a cache is pure
    memoization of a deterministic engine anyway.
    """
    from repro.core.pipeline import PipelineConfig
    from repro.filterlist import build_lists
    from repro.web import Ecosystem, EcosystemConfig

    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=publishers, seed=eco_seed))
    config = PipelineConfig(use_decision_cache=use_decision_cache)
    return AdClassificationPipeline(build_lists(ecosystem.list_spec()), config)


@dataclass(slots=True)
class ParallelOutcome:
    """What a pool run produced, for the CLI to render."""

    health: PipelineHealth
    records: int
    rows: int
    quarantine_count: int
    quarantine_path: str | None
    accumulator: TrafficAccumulator | None
    resumed_generation: int | None
    checkpoints_written: int
    output_paths: list[str] = field(default_factory=list)


class ParallelRun:
    """One classification run over a pool of shard workers.

    Two execution modes share the machinery:

    * non-durable (``directory=None``): rows stream to ``on_row`` and
      rejected lines to a caller-owned ``quarantine`` writer, exactly
      mirroring the serial in-memory path;
    * durable (``directory`` set): the parent owns a
      :class:`ClassifySink` over ``output.part``, the quarantine
      ``.part`` sidecar, the run manifest, and the parent checkpoint
      store, mirroring :class:`repro.robustness.runstate.DurableRun`.
    """

    def __init__(
        self,
        *,
        workers: int,
        input_path: str,
        pipeline_factory: "Callable[[], AdClassificationPipeline]",
        on_error: ErrorPolicy = ErrorPolicy.STRICT,
        reorder_window: float | None = None,
        emit: str = "rows",
        on_row: "Callable[[str, bool, bool], None] | None" = None,
        quarantine: QuarantineWriter | None = None,
        directory: str | None = None,
        manifest: RunManifest | None = None,
        sink: ClassifySink | None = None,
        checkpoint_every: int | None = None,
        keep: int = 3,
        resume: bool = False,
        crash_injector: CrashInjector | None = None,
        log: "Callable[[str], None]" = lambda message: None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.input_path = input_path
        self.pipeline_factory = pipeline_factory
        self.on_error = on_error
        self.reorder_window = reorder_window
        self.emit = emit
        self.on_row = on_row
        self.quarantine = quarantine
        self.directory = directory
        self.manifest = manifest
        self.sink = sink
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.resume = resume
        self.crash_injector = crash_injector
        self.log = log
        if self.durable:
            if manifest is None or sink is None:
                raise ValueError("durable parallel runs need a manifest and a sink")
            if emit != "rows":
                raise ValueError("durable parallel runs only support classify output")

    @property
    def durable(self) -> bool:
        return self.directory is not None

    # -- paths ------------------------------------------------------------

    @property
    def parent_store(self) -> CheckpointStore:
        assert self.directory is not None
        return CheckpointStore(os.path.join(self.directory, "parent"), keep=self.keep)

    def shard_dir(self, worker_id: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"shard-{worker_id:02d}")

    @property
    def quarantine_part(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "quarantine.part")

    # -- lifecycle --------------------------------------------------------

    def _prepare(self) -> tuple[int | None, dict | None]:
        """Manifest handling + resume rendezvous; mirrors DurableRun."""
        if not self.durable:
            return None, None
        assert self.directory is not None and self.manifest is not None
        os.makedirs(self.directory, exist_ok=True)
        if self.resume:
            saved = RunManifest.load(self.directory)
            diagnostics = saved.mismatches(self.manifest)
            if diagnostics:
                raise ManifestMismatch(diagnostics)
            candidates = set(self.parent_store.valid_generations())
            for worker_id in range(self.workers):
                store = CheckpointStore(self.shard_dir(worker_id), keep=self.keep)
                candidates &= set(store.valid_generations())
                if not candidates:
                    break
            if candidates:
                generation = max(candidates)
                payload = self.parent_store.load(generation).payload
                if payload.get("version") != PARENT_STATE_VERSION:
                    raise ValueError(
                        f"unsupported parent state version {payload.get('version')!r}"
                    )
                self.log(
                    f"resuming from checkpoint generation {generation} "
                    f"({payload['records']} records already processed)"
                )
                return generation, payload
            self.log("no valid checkpoint found; restarting from the beginning")
            return None, None
        for store in [self.parent_store] + [
            CheckpointStore(self.shard_dir(worker_id)) for worker_id in range(self.workers)
        ]:
            for generation in store.generations():
                os.unlink(store.path_for(generation))
        self.manifest.save(self.directory)
        return None, None

    def _open_quarantine(self, payload: dict | None) -> QuarantineWriter | None:
        """Durable-mode sidecar over quarantine.part (resume truncates)."""
        if self.on_error is not ErrorPolicy.QUARANTINE:
            return None
        if payload is None:
            # staticcheck: ok[RC001] quarantine .part sink, atomically published on finish
            stream = open(self.quarantine_part, "wb")
        else:
            state = payload["quarantine"]
            # staticcheck: ok[RC001] resume rewinds the sidecar to the checkpointed offset
            stream = open(self.quarantine_part, "r+b")
            stream.truncate(state["pos"])
            stream.seek(state["pos"])
        writer = QuarantineWriter(stream, owns_stream=True)
        if payload is not None:
            writer.restore_state(payload["quarantine"])
        return writer

    def _spawn(self, context, out_queue, resume_generation: int | None):
        processes = []
        for worker_id in range(self.workers):
            config = WorkerConfig(
                worker_id=worker_id,
                workers=self.workers,
                input_path=self.input_path,
                on_error=self.on_error.value,
                fixup_window=DURABLE_FIXUP_WINDOW if self.durable else None,
                reorder_window=self.reorder_window,
                emit=self.emit,
                checkpoint_dir=self.shard_dir(worker_id) if self.durable else None,
                checkpoint_every=self.checkpoint_every if self.durable else None,
                resume_generation=resume_generation,
            )
            process = context.Process(
                target=run_worker,
                args=(config, self.pipeline_factory, out_queue),
                daemon=True,
            )
            process.start()
            processes.append(process)
        return processes

    # -- the fold ---------------------------------------------------------

    def run(self) -> ParallelOutcome:
        # Surface a missing input as FileNotFoundError in the parent
        # (CLI exit 2) instead of as a WorkerFailure traceback.
        open(self.input_path, "rb").close()
        resume_generation, payload = self._prepare()
        quarantine = self.quarantine
        if self.durable:
            assert self.sink is not None
            self.sink.begin(fresh=payload is None, state=payload["sink"] if payload else None)
            quarantine = self._open_quarantine(payload)

        emitter = OrderedRowEmitter(next_emit=payload["next_emit"] if payload else 0)
        merger = QuarantineMerger(
            quarantine.write if quarantine is not None else (lambda line_no, reason, raw: None),
            flushed_line=payload["flushed_line"] if payload else 0,
        )

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        out_queue = context.Queue(maxsize=_QUEUE_SLOTS_PER_WORKER * self.workers + 8)
        processes = self._spawn(context, out_queue, resume_generation)

        done: dict[int, dict] = {}
        markers: dict[int, dict[int, dict]] = {}
        checkpoints_written = 0
        empty_polls_with_dead = 0
        try:
            while len(done) < self.workers:
                try:
                    worker_id, kind, message = out_queue.get(timeout=_POLL_TIMEOUT_S)
                except queue_module.Empty:
                    empty_polls_with_dead = self._watch(processes, done, empty_polls_with_dead)
                    continue
                empty_polls_with_dead = 0
                if kind == "batch":
                    for index, row, is_ad, is_whitelisted in message["rows"]:
                        emitter.push(index, (row, is_ad, is_whitelisted))
                    for row, is_ad, is_whitelisted in emitter.drain():
                        self._consume_row(row, is_ad, is_whitelisted)
                    for line_no, reason, raw in message["quarantine"]:
                        merger.push(line_no, reason, raw)
                elif kind == "ckpt":
                    generation = message["generation"]
                    group = markers.setdefault(generation, {})
                    group[worker_id] = message
                    if len(group) == self.workers:
                        del markers[generation]
                        self._save_parent_checkpoint(
                            generation, group, emitter, merger, quarantine
                        )
                        checkpoints_written += 1
                elif kind == "done":
                    done[worker_id] = message
                elif kind == "parse_error":
                    line_no, reason, line = message
                    raise LogParseError(line_no, reason, line)
                else:
                    raise WorkerFailure(f"worker {worker_id} failed:\n{message}")
            for process in processes:
                process.join(timeout=10.0)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5.0)
            out_queue.close()

        for row, is_ad, is_whitelisted in emitter.drain():
            self._consume_row(row, is_ad, is_whitelisted)
        records = done[0]["arrivals"]
        if self.emit == "rows":
            if emitter.next_emit != records:
                emitter.assert_empty()
                raise WorkerFailure(
                    f"row merge lost rows: emitted {emitter.next_emit} of {records}"
                )
            emitter.assert_empty()
        merger.finish()

        health = PipelineHealth()
        for worker_id in range(self.workers):
            health.merge_state(done[worker_id]["health"])
            # Cache counters travel outside the (checkpointable) health
            # state; fold them into the parent's transient fields so the
            # CLI can report pool-wide cache effectiveness.
            cache_stats = done[worker_id].get("cache")
            if cache_stats is not None:
                health.add_cache_stats(*cache_stats)
        accumulator = None
        if self.emit == "fold":
            accumulator = TrafficAccumulator()
            for worker_id in range(self.workers):
                accumulator.merge_state(done[worker_id]["fold"])

        output_paths: list[str] = []
        quarantine_path: str | None = None
        quarantine_count = quarantine.count if quarantine is not None else 0
        if self.durable:
            assert self.sink is not None and self.manifest is not None
            output_paths = list(self.sink.finalize())
            self.sink.close()
            if quarantine is not None:
                quarantine.sync()
                quarantine.close()
                quarantine_path = self.manifest.quarantine_path
                assert quarantine_path is not None
                replace_atomic(self.quarantine_part, quarantine_path)
            stores = [self.parent_store] + [
                CheckpointStore(self.shard_dir(worker_id)) for worker_id in range(self.workers)
            ]
            for store in stores:
                for generation in store.generations():
                    os.unlink(store.path_for(generation))

        return ParallelOutcome(
            health=health,
            records=records,
            rows=emitter.next_emit,
            quarantine_count=quarantine_count,
            quarantine_path=quarantine_path,
            accumulator=accumulator,
            resumed_generation=resume_generation,
            checkpoints_written=checkpoints_written,
        )

    def _consume_row(self, row: str, is_ad: bool, is_whitelisted: bool) -> None:
        if self.durable:
            assert self.sink is not None
            self.sink.consume_row(row, is_ad, is_whitelisted)
        elif self.on_row is not None:
            self.on_row(row, is_ad, is_whitelisted)
        if self.crash_injector is not None:
            self.crash_injector.tick()

    def _watch(self, processes, done: dict[int, dict], empty_polls: int) -> int:
        """A dead worker that never said "done" is a failure, after a
        short grace for its final messages to clear the queue pipe."""
        dead = [
            worker_id
            for worker_id, process in enumerate(processes)
            if worker_id not in done and process.exitcode is not None
        ]
        if not dead:
            return 0
        if empty_polls + 1 >= _DEAD_WORKER_GRACE_POLLS:
            codes = ", ".join(
                f"worker {worker_id} exit {processes[worker_id].exitcode}" for worker_id in dead
            )
            raise WorkerFailure(f"shard worker(s) died without reporting a result: {codes}")
        return empty_polls + 1

    def _save_parent_checkpoint(
        self,
        generation: int,
        group: dict[int, dict],
        emitter: OrderedRowEmitter,
        merger: QuarantineMerger,
        quarantine: QuarantineWriter | None,
    ) -> None:
        """Persist parent state once every shard's generation is durable.

        Workers replicate the same stream, so their cut coordinates
        must agree exactly — a mismatch means the replication invariant
        broke and resuming would corrupt output.
        """
        cuts = {(message["line_no"], message["g"]) for message in group.values()}
        if len(cuts) != 1:
            raise WorkerFailure(
                f"shard checkpoints disagree on the generation-{generation} cut: {sorted(cuts)}"
            )
        cut_line, _cut_g = cuts.pop()
        quarantine_state: dict = {"pos": 0, "count": 0, "wrote_header": False}
        if quarantine is not None:
            # Everything at or below the cut line has arrived (workers
            # flush before their marker), so it is safe — and necessary,
            # for the recorded position to cover it — to flush now.
            merger.release(cut_line)
            quarantine.sync()
            quarantine_state = quarantine.export_state()
            quarantine_state["pos"] = quarantine.tell()
        assert self.sink is not None and self.checkpoint_every is not None
        state = {
            "version": PARENT_STATE_VERSION,
            "workers": self.workers,
            "generation": generation,
            "records": generation * self.checkpoint_every,
            "next_emit": emitter.next_emit,
            "sink": self.sink.export_state(),
            "quarantine": quarantine_state,
            "flushed_line": merger.flushed_line,
        }
        self.parent_store.save(state, generation=generation)
        # Retention is the parent's call: shard stores never self-prune
        # (they run ahead of the parent and would delete the very
        # generations the resume rendezvous needs).  Prune them to the
        # parent's retention window, leaving newer shard generations be.
        for worker_id in range(self.workers):
            CheckpointStore(self.shard_dir(worker_id), keep=self.keep).prune_through(generation)
