"""Parent-side worker supervision for the shard pool (DESIGN.md §12).

The PR-4 runner treated every worker anomaly the same way: abort the
whole run.  This module gives :class:`~repro.parallel.runner.ParallelRun`
a supervisor that distinguishes the three ways a shard worker goes bad
and recovers from each:

* **crash** — the process's ``exitcode`` is set before its ``done``
  message arrived (OOM kill, segfault, injected ``crash-hard``);
* **hang** — the process is alive but has sent nothing (not even a
  heartbeat) within ``worker_timeout``; the supervisor kills it, so a
  stuck shard can never stall the parent forever;
* **garbage** — the worker emitted an unintelligible message on the
  result queue; the worker is killed and treated like a crash.

Recovery is respawn-from-checkpoint bounded by a
:class:`~repro.robustness.retry.RetryPolicy`: each incarnation gets a
new 0-based ``attempt`` number, messages stamped with a stale attempt
are dropped (a killed worker's last gasps must not poison the fold),
and the replacement resumes from the shard's newest valid checkpoint
(durable runs) or from scratch (in-memory runs) — both safe because
shard replay is deterministic and the parent's merge structures are
idempotent.  Terminal failures follow ``on_failure``: ``abort`` raises
:class:`WorkerFailure`; ``degrade`` marks the shard lost and lets the
remaining shards finish, for an honest partial result.

The supervisor owns no queue and no protocol: the runner feeds it
liveness evidence (``accept``/``mark_done``) and calls ``poll`` between
messages; everything here is pure bookkeeping over injectable
``clock``/``sleep``, which is what makes the unit tests deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.robustness.policy import RunInterrupted
from repro.robustness.retry import RetryPolicy

__all__ = ["ShardSlot", "WorkerFailure", "RunInterrupted", "WorkerSupervisor"]

# Grace period for a dead worker whose final messages may still be in
# flight through the queue pipe before its silence counts as a crash.
_DEAD_WORKER_GRACE_S = 1.0

# Until its first real (non-heartbeat) message, a worker is rebuilding
# its filter engine — one opaque call it cannot heartbeat from — so its
# silence budget is this multiple of ``worker_timeout``.  A worker hung
# in startup is still caught, just on a longer fuse.
_WARMUP_FACTOR = 10.0

# How long terminate() gets before escalating to kill().  Generous on
# purpose: workers flush their queue feeder thread on SIGTERM (see
# run_worker), and SIGKILLing a worker mid-pipe-write truncates a
# frame, which would wedge the parent's next queue read forever.
_TERMINATE_GRACE_S = 5.0


class WorkerFailure(Exception):
    """A shard worker failed terminally (retries exhausted or disabled)."""


@dataclass(slots=True)
class ShardSlot:
    """Supervision state for one shard (across all its incarnations)."""

    worker_id: int
    process: Any = None
    attempt: int = 0
    last_seen: float = 0.0
    dead_since: float | None = None
    warmed: bool = False  # first non-heartbeat message seen (engine built)
    done: bool = False
    failed: bool = False
    fail_reason: str | None = None


class WorkerSupervisor:
    """Tracks liveness of the pool; kills, respawns, or gives up.

    Args:
        workers: pool size (one slot per shard).
        spawn: callback ``(worker_id, attempt) -> process`` that starts
            a new incarnation; the runner closes over the worker config
            and the shard's resume generation.
        retry: respawn budget; ``None`` disables recovery entirely
            (any fault is terminal), preserving fail-fast semantics.
        worker_timeout: seconds of silence after which a live worker is
            declared hung and killed; ``None`` disables hang detection.
        on_failure: ``"abort"`` raises :class:`WorkerFailure` on a
            terminal fault, ``"degrade"`` records the shard as lost.
        clock/sleep: injectable time sources for deterministic tests.
    """

    def __init__(
        self,
        *,
        workers: int,
        spawn: "Callable[[int, int], Any]",
        retry: RetryPolicy | None,
        worker_timeout: float | None,
        on_failure: str = "abort",
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
        log: "Callable[[str], None]" = lambda message: None,
    ) -> None:
        if on_failure not in ("abort", "degrade"):
            raise ValueError("on_failure must be 'abort' or 'degrade'")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError("worker_timeout must be > 0 (or None to disable)")
        self.slots = [ShardSlot(worker_id) for worker_id in range(workers)]
        self.spawn = spawn
        self.retry = retry
        self.worker_timeout = worker_timeout
        self.on_failure = on_failure
        self.clock = clock
        self.sleep = sleep
        self.log = log
        self.restarts = 0
        self.heartbeat_gaps = 0
        # Old incarnations that were sent SIGTERM and are on the clock:
        # (process, SIGKILL deadline).  Killing is deliberately
        # asynchronous — the parent must keep draining the result queue
        # while a worker flushes its feeder and dies, or the flush
        # could never complete and the whole pool would deadlock.
        self._dying: list[tuple[Any, float]] = []

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        for slot in self.slots:
            self._launch(slot)

    def _launch(self, slot: ShardSlot) -> None:
        slot.process = self.spawn(slot.worker_id, slot.attempt)
        slot.last_seen = self.clock()
        slot.dead_since = None
        slot.warmed = False  # every incarnation rebuilds its engine

    @property
    def finished(self) -> bool:
        return all(slot.done or slot.failed for slot in self.slots)

    @property
    def failed_ids(self) -> list[int]:
        return [slot.worker_id for slot in self.slots if slot.failed]

    def processes(self) -> list[Any]:
        return [slot.process for slot in self.slots if slot.process is not None]

    # -- evidence from the message loop -----------------------------------

    def accept(self, worker_id: int, attempt: int, kind: str) -> bool:
        """Record a message as liveness evidence; ``False`` = drop it.

        Messages from a superseded incarnation (stale ``attempt``) or a
        shard already written off are dropped: a worker killed mid-kill
        may still flush an ``error`` or half a batch, and none of it may
        reach the fold.  ``kind`` is accepted for symmetry/logging; the
        dispatch itself stays in the runner.
        """
        if not 0 <= worker_id < len(self.slots):
            self.log(f"discarding message from unknown worker id {worker_id!r}")
            return False
        slot = self.slots[worker_id]
        if slot.failed or attempt != slot.attempt:
            self.log(
                f"worker {worker_id}: dropping stale {kind!r} message "
                f"(attempt {attempt}, current {slot.attempt})"
            )
            return False
        slot.last_seen = self.clock()
        if kind != "hb":
            slot.warmed = True
        return True

    def mark_done(self, worker_id: int) -> None:
        self.slots[worker_id].done = True

    # -- detection --------------------------------------------------------

    def poll(self) -> None:
        """Sweep for crashed and hung workers; recover or give up.

        Called by the runner on every loop iteration (message or poll
        timeout), so detection latency is bounded by the queue poll
        interval, never by worker goodwill.
        """
        now = self.clock()
        self._reap_dying(now)
        for slot in self.slots:
            if slot.done or slot.failed:
                continue
            process = slot.process
            if process is None:
                continue
            if process.exitcode is not None:
                # Dead without a `done`: its final messages may still be
                # in the pipe — give them one grace period to drain.
                if slot.dead_since is None:
                    slot.dead_since = now
                elif now - slot.dead_since >= _DEAD_WORKER_GRACE_S:
                    self.fault(
                        slot.worker_id,
                        f"exited with code {process.exitcode} before reporting a result",
                    )
            elif self.worker_timeout is not None:
                budget = self.worker_timeout * (1.0 if slot.warmed else _WARMUP_FACTOR)
                if now - slot.last_seen > budget:
                    self.heartbeat_gaps += 1
                    self.log(
                        f"worker {slot.worker_id}: no heartbeat within "
                        f"{budget:g}s — killing the stuck process"
                    )
                    self.fault(
                        slot.worker_id,
                        f"hung (no heartbeat within {budget:g}s)",
                    )

    # -- recovery ---------------------------------------------------------

    def fault(self, worker_id: int, reason: str) -> None:
        """One incarnation failed: respawn within budget, else give up."""
        slot = self.slots[worker_id]
        if slot.done or slot.failed:
            return
        self._begin_kill(slot.process)
        next_attempt = slot.attempt + 1
        if self.retry is not None and self.retry.allows(next_attempt):
            delay = self.retry.delay_before(next_attempt, key=worker_id)
            self.log(
                f"worker {worker_id} {reason}; retrying shard "
                f"(attempt {next_attempt + 1}/{self.retry.max_attempts}) "
                f"after {delay:.2f}s backoff"
            )
            if delay > 0.0:
                self.sleep(delay)
            slot.attempt = next_attempt
            self.restarts += 1
            self._launch(slot)
            return
        budget = f" after {slot.attempt + 1} attempt(s)" if self.retry is not None else ""
        if self.on_failure == "degrade":
            slot.failed = True
            slot.fail_reason = reason
            self.log(
                f"worker {worker_id} {reason}; retries exhausted{budget} — "
                f"continuing without shard {worker_id} (degraded)"
            )
            return
        raise WorkerFailure(f"worker {worker_id} {reason}{budget}")

    # -- process plumbing -------------------------------------------------

    def _begin_kill(self, process: Any) -> None:
        """Start killing one incarnation without blocking the caller.

        TERM first: workers flush their queue feeder on SIGTERM, so a
        polite death cannot truncate a frame mid-pipe-write (a
        truncated frame wedges the parent's next queue read forever —
        it reads a length header, then blocks for bytes that never
        come).  The flush itself needs the parent to keep draining, so
        no join happens here; :meth:`poll` escalates to SIGKILL only
        after the grace deadline, by which point a flushing worker is
        long gone and only a truly stuck one remains.
        """
        if process is None or process.exitcode is not None:
            return
        process.terminate()
        self._dying.append((process, self.clock() + _TERMINATE_GRACE_S))

    def _reap_dying(self, now: float) -> None:
        remaining: list[tuple[Any, float]] = []
        for process, deadline in self._dying:
            if process.exitcode is not None:
                continue  # polling exitcode also reaps the zombie
            if now >= deadline:
                process.kill()
                process.join(timeout=0.2)
                continue
            remaining.append((process, deadline))
        self._dying = remaining

    def join_all(self, timeout: float) -> list[int]:
        """Join every live process; return ids still running (stragglers)."""
        for slot in self.slots:
            if slot.process is not None:
                slot.process.join(timeout=timeout)
        return [
            slot.worker_id
            for slot in self.slots
            if slot.process is not None and slot.process.is_alive()
        ]

    def terminate_all(self) -> None:
        """Best-effort shutdown of every live incarnation (cleanup path)."""
        processes = [slot.process for slot in self.slots]
        processes += [process for process, _deadline in self._dying]
        self._dying = []
        for process in processes:
            if process is not None and process.exitcode is None:
                process.terminate()
        for process in processes:
            if process is not None and process.exitcode is None:
                process.join(timeout=_TERMINATE_GRACE_S)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=_TERMINATE_GRACE_S)
