"""Shard-parallel execution of the classification pipeline.

``repro classify --workers N`` (DESIGN.md §10) hash-shards the user
space across a pool of worker processes, each running its own
:class:`~repro.core.pipeline.StreamingClassifier` and filter engine,
and folds the results back into output byte-identical to the serial
path.  See :mod:`repro.parallel.worker` for the replication model and
:mod:`repro.parallel.runner` for the deterministic merge and the
per-shard durable-run extension.
"""

from repro.parallel.runner import (
    ParallelOutcome,
    ParallelRun,
    RunInterrupted,
    WorkerFailure,
    build_ecosystem_pipeline,
)
from repro.parallel.sharding import OrderedRowEmitter, QuarantineMerger, claims_line, shard_of
from repro.parallel.supervision import ShardSlot, WorkerSupervisor
from repro.parallel.worker import WorkerConfig, run_worker

__all__ = [
    "ParallelOutcome",
    "ParallelRun",
    "RunInterrupted",
    "WorkerFailure",
    "WorkerSupervisor",
    "ShardSlot",
    "build_ecosystem_pipeline",
    "OrderedRowEmitter",
    "QuarantineMerger",
    "claims_line",
    "shard_of",
    "WorkerConfig",
    "run_worker",
]
