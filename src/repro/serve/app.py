"""Routing, request handling, and signal-driven lifecycle for the daemon.

:class:`ServeApp` wires the serving layers together::

    HttpServer ── _route ──► /healthz /readyz /metrics  (always on)
                       └───► POST /classify ─► AdmissionQueue ─► engine
                       └───► POST /-/reload ─► ReloadManager ─► EngineHolder

and owns the graceful-drain sequence (DESIGN.md §13.4):

1. a shutdown signal flips the admission queue to draining — new
   classify requests are shed with 503, health endpoints stay up;
2. the listening socket closes; responses start carrying
   ``Connection: close`` so keep-alive clients migrate off;
3. the queue drains: every already-accepted request is answered (or,
   past the drain deadline, resolved as timed out — never dropped);
4. open connections get a short grace to flush, then the loop exits
   with code 0 (SIGTERM) or 130 (SIGINT).

The serve chaos faults (slow-handler, reload-storm, malformed-body)
are injected here, at the same seams real trouble enters: handler
latency, operator reload storms, and hostile request bodies.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.content_type import infer_content_type, type_from_mime
from repro.exitcodes import EXIT_CLEAN as EXIT_OK
from repro.exitcodes import EXIT_INTERRUPTED
from repro.filterlist.cache import DEFAULT_CACHE_SIZE
from repro.filterlist.engine import RequestContext
from repro.filterlist.options import ContentType
from repro.robustness.crash import ServeFaultInjector
from repro.serve.admission import (
    DEFAULT_CONCURRENCY,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_TIMEOUT_S,
    AdmissionQueue,
    DeadlineExceeded,
    Shed,
)
from repro.serve.http11 import HttpServer, Request, Response
from repro.serve.metrics import ServeMetrics
from repro.serve.reload import (
    EngineHolder,
    EngineSource,
    ReloadManager,
    ReloadOutcome,
)

__all__ = ["ServeApp", "ServeConfig"]

# Readiness: the queue is "high water" above this fraction of its depth.
DEFAULT_READY_HIGH_WATER = 0.8

# Grace for open connections to flush after the queue drains.
CONNECTION_GRACE_S = 1.0


@dataclass(slots=True)
class ServeConfig:
    """Tunables for one daemon process (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    timeout_s: float = DEFAULT_TIMEOUT_S
    concurrency: int = DEFAULT_CONCURRENCY
    drain_timeout_s: float = 10.0
    cache_size: int | None = DEFAULT_CACHE_SIZE
    ready_high_water: float = DEFAULT_READY_HIGH_WATER
    chaos: str | None = None

    def high_water_mark(self) -> int:
        return max(1, int(self.queue_depth * self.ready_high_water))


def _json_response(status: int, data: dict, **headers: str) -> Response:
    body = json.dumps(data, sort_keys=False, separators=(",", ":")).encode() + b"\n"
    return Response(status=status, body=body, headers=dict(headers))


def _parse_content_type(value: str | None, url: str) -> ContentType:
    """ABP type name, MIME string, or (absent) inference from the URL."""
    if value:
        member = ContentType.__members__.get(value.upper().replace("-", "_"))
        if member is not None:
            return member
        if "/" in value:  # looks like a MIME type; those map leniently
            from_mime = type_from_mime(value)
            if from_mime is not None:
                return from_mime
        raise ValueError(f"unknown content type {value!r}")
    return infer_content_type(url, None)


class _BadBody(Exception):
    """A classify body the handler rejected; answered 400, counted served."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ServeApp:
    """The daemon: one engine holder, one admission queue, one listener."""

    def __init__(
        self,
        holder: EngineHolder,
        source: EngineSource,
        config: ServeConfig,
        *,
        log: Callable[[str], None] = lambda message: None,
    ) -> None:
        self.holder = holder
        self.source = source
        self.config = config
        self.log = log
        self.metrics = ServeMetrics()
        self.manager = ReloadManager(source, holder, log=log)
        self.admission = AdmissionQueue(
            self._classify_ticket,
            self.metrics,
            depth=config.queue_depth,
            timeout_s=config.timeout_s,
            concurrency=config.concurrency,
        )
        self.server = HttpServer(self._route, host=config.host, port=config.port)
        self.injector = ServeFaultInjector.from_spec(config.chaos)
        self.draining = False
        self._exit_code = EXIT_OK
        self._shutdown = asyncio.Event()
        self._background: set[asyncio.Task[Any]] = set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> int:
        """Start workers and the listener; returns the bound port."""
        self.admission.start()
        return await self.server.start()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, self.begin_shutdown, EXIT_OK)
        loop.add_signal_handler(signal.SIGINT, self.begin_shutdown, EXIT_INTERRUPTED)
        loop.add_signal_handler(signal.SIGHUP, self._spawn_reload, "SIGHUP")

    def begin_shutdown(self, exit_code: int) -> None:
        """Signal-safe shutdown trigger; idempotent (first signal wins)."""
        if not self._shutdown.is_set():
            self._exit_code = exit_code
            self._shutdown.set()

    def _spawn_reload(self, origin: str) -> None:
        task = asyncio.ensure_future(self._reload(origin))
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def serve_forever(self) -> int:
        """Run until a shutdown signal, then drain; returns the exit code."""
        await self.start()
        self.install_signal_handlers()
        self.log(
            f"serving on http://{self.config.host}:{self.port} — engine "
            f"{self.holder.fingerprint[:12]}… "
            f"({self.holder.engine.filter_count} filters), "
            f"queue depth {self.config.queue_depth}"
        )
        await self._shutdown.wait()
        await self.drain()
        return self._exit_code

    async def drain(self) -> None:
        """The four-step graceful drain (module docstring)."""
        self.draining = True
        self.log("drain: refusing new work, finishing accepted requests")
        await self.server.stop_accepting()
        await self.admission.drain(self.config.drain_timeout_s)
        await self.server.wait_connections(grace_s=CONNECTION_GRACE_S)
        for task in tuple(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        self.log(
            f"drain complete: {self.metrics.served} served, "
            f"{self.metrics.timed_out} timed out, {self.metrics.shed} shed"
        )

    # -- routing -----------------------------------------------------------

    async def _route(self, request: Request) -> Response:
        if request.path == "/healthz":
            if request.method != "GET":
                return _json_response(405, {"error": "method not allowed"})
            return _json_response(200, {"status": "ok"})
        if request.path == "/readyz":
            if request.method != "GET":
                return _json_response(405, {"error": "method not allowed"})
            return self._readyz()
        if request.path == "/metrics":
            if request.method != "GET":
                return _json_response(405, {"error": "method not allowed"})
            return _json_response(200, self._metrics_document())
        if request.path == "/classify":
            if request.method != "POST":
                return _json_response(405, {"error": "method not allowed"})
            return await self._classify(request)
        if request.path == "/-/reload":
            if request.method != "POST":
                return _json_response(405, {"error": "method not allowed"})
            outcome = await self._reload("http")
            status = 200 if outcome.status in ("swapped", "noop") else 503
            return _json_response(status, outcome.to_dict())
        return _json_response(404, {"error": f"no route {request.path}"})

    def _readyz(self) -> Response:
        reasons: list[str] = []
        if self.draining:
            reasons.append("draining")
        if self.manager.in_progress:
            reasons.append("reloading")
        if self.admission.queued >= self.config.high_water_mark():
            reasons.append("queue above high water")
        if reasons:
            return _json_response(503, {"ready": False, "reasons": reasons})
        return _json_response(200, {"ready": True})

    def _metrics_document(self) -> dict:
        cache = self.holder.cache
        return self.metrics.snapshot(
            queue_depth=self.admission.depth,
            queued=self.admission.queued,
            draining=self.draining,
            cache=self.holder.cache_stats(),
            cache_entries=len(cache.cache) if cache is not None else None,
            engine=self.holder.engine_info(),
            reload_state="loading" if self.manager.in_progress else "idle",
            generation=self.holder.generation,
        )

    # -- /classify ---------------------------------------------------------

    async def _classify(self, request: Request) -> Response:
        body = request.body
        delay_s = 0.0
        if self.injector is not None:
            actions = self.injector.observe()
            if actions.reload:
                self._spawn_reload("chaos")
            if actions.mangle_body:
                body = self.injector.mangle(body)
            delay_s = actions.delay_s
        try:
            status, result = await self.admission.submit((body, delay_s))
        except Shed as shed:
            http_status = 503 if shed.reason == "draining" else 429
            return _json_response(
                http_status,
                {"error": shed.reason},
                **{"Retry-After": f"{shed.retry_after_s:.1f}"},
            )
        except DeadlineExceeded:
            return _json_response(503, {"error": "deadline exceeded"})
        except Exception as exc:  # staticcheck: ok[RC002] handler bugs must answer 500, not kill the connection
            self.log(f"classify failed: {exc!r}")
            return _json_response(500, {"error": "internal error"})
        if status != 200:
            self.metrics.client_errors += 1
        return _json_response(status, result)

    async def _classify_ticket(self, payload: tuple[bytes, float]) -> tuple[int, dict]:
        """Admission worker handler: parse, classify, shape the response.

        Client mistakes come back as ``(400, body)`` rather than an
        exception — the ticket *was* answered, so the worker books it
        served and the waiter adds it to the ``client_errors`` subset.
        """
        body, delay_s = payload
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        try:
            return 200, self._classify_body(body)
        except _BadBody as bad:
            return 400, {"error": bad.reason}

    def _classify_body(self, body: bytes) -> dict:
        try:
            document = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.health.record_error("serve", "malformed json body")
            raise _BadBody(f"malformed JSON body: {exc}") from None
        if not isinstance(document, dict):
            self.metrics.health.record_error("serve", "body not an object")
            raise _BadBody("body must be a JSON object")

        engine = self.holder.engine  # one grab: consistent across the batch
        batch = document.get("records")
        if batch is not None:
            if not isinstance(batch, list):
                self.metrics.health.record_error("serve", "records not a list")
                raise _BadBody('"records" must be a list')
            results = [self._classify_record(engine, record) for record in batch]
            return self._envelope(engine, results=results)
        return self._envelope(engine, result=self._classify_record(engine, document))

    def _envelope(self, engine: Any, **payload: Any) -> dict:
        return {
            "engine": engine.fingerprint[:12],
            "generation": self.holder.generation,
            **payload,
        }

    def _classify_record(self, engine: Any, record: Any) -> dict:
        if not isinstance(record, dict):
            self.metrics.health.record_error("serve", "record not an object")
            raise _BadBody("each record must be a JSON object")
        url = record.get("url")
        if not isinstance(url, str) or not url:
            self.metrics.health.record_error("serve", "missing url")
            raise _BadBody('each record needs a non-empty "url"')
        raw_type = record.get("content_type")
        if raw_type is not None and not isinstance(raw_type, str):
            self.metrics.health.record_error("serve", "bad content_type")
            raise _BadBody('"content_type" must be a string')
        try:
            content_type = _parse_content_type(raw_type, url)
        except ValueError as exc:
            self.metrics.health.record_error("serve", "bad content_type")
            raise _BadBody(str(exc)) from None
        page_url = record.get("page_url", "")
        if not isinstance(page_url, str):
            self.metrics.health.record_error("serve", "bad page_url")
            raise _BadBody('"page_url" must be a string')
        context = RequestContext(content_type=content_type, page_url=page_url)
        classification = engine.classify(url, context)
        self.metrics.health.record_ok()
        return {
            "url": url,
            "content_type": content_type.name.lower() if content_type.name else "other",
            "is_ad": classification.is_ad,
            "is_blacklisted": classification.is_blacklisted,
            "is_whitelisted": classification.is_whitelisted,
            "would_block": classification.would_block,
            "blacklist": classification.blacklist_name,
            "whitelist": classification.whitelist_name,
            "blacklist_lists": list(classification.blacklist_lists),
        }

    # -- reload ------------------------------------------------------------

    async def _reload(self, origin: str) -> ReloadOutcome:
        self.metrics.reloads_attempted += 1
        self.log(f"reload requested ({origin})")
        outcome = await self.manager.reload()
        if outcome.status == "swapped":
            self.metrics.reloads_succeeded += 1
        elif outcome.status == "noop":
            self.metrics.reloads_noop += 1
        else:
            self.metrics.reloads_failed += 1
        return outcome
