"""Bounded admission with explicit backpressure and deadlines.

The daemon's robustness invariant is *exact accounting*: every classify
request is *exactly one* of

* **shed** — refused at the door (queue full, or draining) with 429/503
  and a ``Retry-After``, never enqueued;
* **served** — admitted and answered (200, or 400 for a body the
  handler rejected);
* **timed out** — admitted but not answered within its deadline (503).

The chaos tests sum these against the request total and require
equality; nothing may be double-counted or dropped on the floor, which
is why ticket resolution is single-owner (:meth:`Ticket.claim`): the
waiting request handler and the worker that eventually processes the
ticket race politely, and exactly one of them books the outcome.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.serve.metrics import ServeMetrics

__all__ = ["AdmissionQueue", "DeadlineExceeded", "Shed", "Ticket"]

DEFAULT_QUEUE_DEPTH = 1024
DEFAULT_TIMEOUT_S = 5.0
DEFAULT_CONCURRENCY = 8


class Shed(Exception):
    """The request was refused admission (backpressure or drain)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class DeadlineExceeded(Exception):
    """The request was admitted but its deadline expired unanswered."""


@dataclass(slots=True)
class Ticket:
    """One admitted request waiting for a worker."""

    payload: Any
    future: asyncio.Future
    claimed: bool = False

    def claim(self) -> bool:
        """Take ownership of the outcome; exactly one caller wins."""
        if self.claimed:
            return False
        self.claimed = True
        return True


class AdmissionQueue:
    """Bounded queue + worker pool between the HTTP layer and the engine.

    ``handler`` is the application's classify function; workers await it
    for each admitted ticket.  The queue depth bounds memory and tail
    latency; admission failure is immediate and explicit (429), and the
    per-request deadline is enforced by the *waiter* (the HTTP handler
    coroutine), which is the only place that can still answer the
    client — a worker discovering a stale ticket just drops it.
    """

    def __init__(
        self,
        handler: Callable[[Any], Awaitable[Any]],
        metrics: ServeMetrics,
        *,
        depth: int = DEFAULT_QUEUE_DEPTH,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        concurrency: int = DEFAULT_CONCURRENCY,
    ) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self._handler = handler
        self._metrics = metrics
        self._timeout_s = timeout_s
        self._depth = depth
        self._concurrency = concurrency
        self._queue: asyncio.Queue[Ticket] = asyncio.Queue(maxsize=depth)
        self._workers: list[asyncio.Task[None]] = []
        self._pending = 0  # queued + in service, not yet claimed
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def timeout_s(self) -> float:
        return self._timeout_s

    @property
    def queued(self) -> int:
        return self._queue.qsize()

    @property
    def pending(self) -> int:
        return self._pending

    def start(self) -> None:
        for _ in range(self._concurrency):
            self._workers.append(asyncio.ensure_future(self._worker()))

    # -- admission ---------------------------------------------------------

    async def submit(self, payload: Any) -> Any:
        """Admit, await the outcome, enforce the deadline.

        Raises :class:`Shed` without enqueueing when the queue is full
        or the daemon is draining; raises :class:`DeadlineExceeded` when
        the ticket was admitted but not processed in time.
        """
        if self.draining:
            self._metrics.shed_draining += 1
            raise Shed("draining", retry_after_s=1.0)
        ticket = Ticket(payload=payload, future=asyncio.get_running_loop().create_future())
        try:
            self._queue.put_nowait(ticket)
        except asyncio.QueueFull:
            self._metrics.shed_queue_full += 1
            raise Shed("queue full", retry_after_s=self._retry_after()) from None
        self._metrics.accepted += 1
        self._pending += 1
        self._idle.clear()
        try:
            return await asyncio.wait_for(
                asyncio.shield(ticket.future), timeout=self._timeout_s
            )
        except asyncio.TimeoutError:
            if ticket.claim():
                self._book_done(self._metrics.book_timeout)
            raise DeadlineExceeded from None
        except asyncio.CancelledError:
            if ticket.future.cancelled():
                # Drain force-resolution: the canceller already claimed
                # and booked this ticket as timed out — answer 503.
                raise DeadlineExceeded from None
            raise  # the waiter itself was cancelled (connection died)

    def _retry_after(self) -> float:
        """A Retry-After estimate: time to drain half the queue."""
        per_request = self._timeout_s / max(1, self._depth)
        return max(0.1, per_request * self._queue.qsize() / 2)

    def _book_done(self, book: Callable[[], None]) -> None:
        book()
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    # -- the worker pool ---------------------------------------------------

    async def _worker(self) -> None:
        while True:
            ticket = await self._queue.get()
            if ticket.claimed:
                continue  # deadline fired while queued; already booked
            try:
                result = await self._handler(ticket.payload)
            except asyncio.CancelledError:
                # Drain cancellation: resolve rather than drop, so the
                # waiter books the timeout instead of hanging.
                if ticket.claim():
                    self._book_done(self._metrics.book_timeout)
                    ticket.future.cancel()
                raise
            except Exception as exc:  # staticcheck: ok[RC002] handler bugs must 500, not kill the worker
                if ticket.claim():
                    self._book_done(self._metrics.book_internal_error)
                    ticket.future.set_exception(exc)
                    # The waiter consumes it; stop the "never retrieved"
                    # warning if the waiter already timed out racing us.
                    ticket.future.exception()
                continue
            if ticket.claim():
                self._book_done(self._metrics.book_served)
                ticket.future.set_result(result)

    # -- drain -------------------------------------------------------------

    async def drain(self, deadline_s: float) -> None:
        """Stop admitting, finish queued work, deadline the rest.

        After ``deadline_s`` any still-unclaimed ticket is resolved as
        timed out (its waiter answers 503), so the accounting invariant
        holds even for a drain that runs out of patience.
        """
        self.draining = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=deadline_s)
        except asyncio.TimeoutError:
            pass
        while not self._queue.empty():
            ticket = self._queue.get_nowait()
            if ticket.claim():
                self._book_done(self._metrics.book_timeout)
                ticket.future.cancel()
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
