"""`repro serve` — the long-lived classification daemon (DESIGN.md §13).

The batch CLI and this service share one engine core: a
:class:`~repro.filterlist.engine.FilterEngine` wrapped in the
:class:`~repro.filterlist.cache.CachingEngine` decision memo, loaded
once and classified against over HTTP.  The serving layers are:

* :mod:`repro.serve.http11` — a dependency-free asyncio HTTP/1.1
  transport (aiohttp is not a hard dependency of this repo; the daemon
  must run on a bare python toolchain);
* :mod:`repro.serve.admission` — the bounded admission queue with
  explicit backpressure (429 + ``Retry-After``) and per-request
  deadlines (503);
* :mod:`repro.serve.reload` — hot filter-list reload with atomic
  engine swap, keyed by the engine fingerprint so the decision cache
  invalidates exactly when the list actually changed;
* :mod:`repro.serve.metrics` — the ``/metrics`` JSON built from
  :class:`~repro.robustness.health.PipelineHealth` and
  :class:`~repro.filterlist.cache.CacheStats`;
* :mod:`repro.serve.app` — routing, request handling, signal-driven
  graceful drain.
"""

from repro.serve.admission import AdmissionQueue, DeadlineExceeded, Shed, Ticket
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.metrics import ServeMetrics
from repro.serve.reload import EngineHolder, EngineSource, ReloadManager

__all__ = [
    "AdmissionQueue",
    "DeadlineExceeded",
    "EngineHolder",
    "EngineSource",
    "ReloadManager",
    "ServeApp",
    "ServeConfig",
    "ServeMetrics",
    "Shed",
    "Ticket",
]
