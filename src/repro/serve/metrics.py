"""Serving metrics: one JSON document, no text scraping.

``/metrics`` is assembled from the same machine-readable substrates the
batch CLI reports through — :meth:`PipelineHealth.summary_dict` and
:class:`CacheStats` — plus the daemon's own admission/reload counters.
The serve chaos tests hold the accounting invariant against this
structure::

    requests == accepted + shed_queue_full + shed_draining
    accepted == served + internal_errors + timed_out
               (+ in_flight, zero at quiescence)

``client_errors`` (400s for bodies the handler rejected) is an
informational *subset* of ``served`` — the request was answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filterlist.cache import CacheStats
from repro.robustness.health import PipelineHealth

__all__ = ["ServeMetrics"]


@dataclass(slots=True)
class ServeMetrics:
    """Counters for one daemon process (all transient by nature)."""

    accepted: int = 0
    served: int = 0
    client_errors: int = 0
    internal_errors: int = 0
    timed_out: int = 0
    shed_queue_full: int = 0
    shed_draining: int = 0
    reloads_attempted: int = 0
    reloads_succeeded: int = 0
    reloads_failed: int = 0
    reloads_noop: int = 0
    health: PipelineHealth = field(default_factory=PipelineHealth)

    # -- admission bookkeeping (single-owner, via Ticket.claim) ------------

    def book_served(self) -> None:
        self.served += 1

    def book_internal_error(self) -> None:
        self.internal_errors += 1

    def book_timeout(self) -> None:
        self.timed_out += 1

    # -- derived -----------------------------------------------------------

    @property
    def requests(self) -> int:
        return self.accepted + self.shed

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_draining

    @property
    def answered(self) -> int:
        # client_errors are a subset of served, not a separate bucket.
        return self.served + self.internal_errors + self.timed_out

    @property
    def in_flight(self) -> int:
        return self.accepted - self.answered

    def snapshot(
        self,
        *,
        queue_depth: int,
        queued: int,
        draining: bool,
        cache: CacheStats | None,
        cache_entries: int | None = None,
        engine: dict | None = None,
        reload_state: str = "idle",
        generation: int = 0,
    ) -> dict:
        """The ``/metrics`` document (deterministic key order)."""
        data: dict = {
            "serve": {
                "requests": self.requests,
                "accepted": self.accepted,
                "served": self.served,
                "client_errors": self.client_errors,
                "internal_errors": self.internal_errors,
                "timed_out": self.timed_out,
                "shed": self.shed,
                "shed_queue_full": self.shed_queue_full,
                "shed_draining": self.shed_draining,
                "in_flight": self.in_flight,
                "queued": queued,
                "queue_depth": queue_depth,
                "draining": draining,
            },
            "reload": {
                "attempted": self.reloads_attempted,
                "succeeded": self.reloads_succeeded,
                "failed": self.reloads_failed,
                "noop": self.reloads_noop,
                "state": reload_state,
                "generation": generation,
            },
            "health": self.health.summary_dict(transient=False),
        }
        if engine is not None:
            data["engine"] = engine
        if cache is not None:
            data["cache"] = {
                "lookups": cache.lookups,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate,
                "entries": cache_entries if cache_entries is not None else 0,
            }
        return data
