"""Hot filter-list reload: build off-thread, swap atomically, fall back.

Filter lists churn continuously under publisher counter-blocking
pressure (the arms-race literature in PAPERS.md), so an always-on
classifier must pick up new list contents *without* dropping in-flight
work — and without trusting the new list blindly:

* the replacement engine is built on a worker thread
  (``asyncio.to_thread``) from the same sources the daemon started
  with, inside a :class:`~repro.robustness.retry.RetryPolicy` budget,
  so the event loop never stalls on a multi-second list parse;
* lint gating (``FilterList.from_text(lint=...)``, DESIGN.md §9.4)
  applies on reload exactly as on startup — a list that fails to parse
  or lint leaves the **last good engine** serving;
* the swap is a single reference assignment keyed by the PR 5 engine
  fingerprint: an *identical* fingerprint keeps the warm decision
  cache (reload was a no-op), a *changed* fingerprint installs a fresh
  :class:`CachingEngine` — which is precisely "the decision cache
  invalidates exactly when the list actually changed";
* requests that grabbed the old engine reference finish against it;
  per-request consistency is free because the swap never mutates an
  engine in place (``CachingEngine`` refuses that anyway, via the
  fingerprint guard).
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Callable

from repro.filterlist.actrie import ACTrieEngine
from repro.filterlist.cache import CacheStats, CachingEngine, DecisionEngine
from repro.filterlist.combined import CombinedRegexEngine
from repro.filterlist.engine import FilterEngine
from repro.filterlist.lists import FilterList
from repro.filterlist.snapshot import load_snapshot
from repro.robustness.retry import RetryExhausted, RetryPolicy

__all__ = ["EngineHolder", "EngineSource", "ReloadManager", "ReloadOutcome"]

DEFAULT_RELOAD_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.2, multiplier=2.0, max_delay_s=2.0
)


class EngineSource:
    """Where engines come from: list files, ecosystem, or a snapshot.

    File mode re-reads ``--lists`` paths on every (re)build, which is
    what makes ``SIGHUP`` / ``POST /-/reload`` pick up on-disk changes.
    Ecosystem mode rebuilds deterministically from the generation seed —
    its fingerprint never changes, so reloads are honest no-ops.
    Snapshot mode deserializes a ``repro compile-lists`` artifact in
    milliseconds; a reload re-reads the snapshot file, so replacing the
    artifact on disk and sending ``SIGHUP`` is the zero-parse hot-reload
    path (DESIGN.md §15).  Snapshot bytes are checksummed, not linted —
    lint gating happened at compile time.
    """

    def __init__(
        self,
        *,
        list_paths: list[str] | None = None,
        publishers: int = 300,
        eco_seed: int = 20151028,
        lint: str = "refuse",
        use_keyword_index: bool = True,
        snapshot_path: str | None = None,
        matcher: str = "buckets",
    ) -> None:
        if lint not in ("off", "refuse", "quarantine"):
            raise ValueError(f"unknown lint policy {lint!r}")
        if snapshot_path and list_paths:
            raise ValueError("snapshot_path and list_paths are mutually exclusive")
        self.list_paths = list(list_paths or [])
        self.publishers = publishers
        self.eco_seed = eco_seed
        self.lint = lint
        self.use_keyword_index = use_keyword_index
        self.snapshot_path = snapshot_path
        self.matcher = matcher

    def _empty_engine(self) -> DecisionEngine:
        if self.matcher == "actrie":
            return ACTrieEngine(use_keyword_index=self.use_keyword_index)
        if self.matcher == "combined":
            return CombinedRegexEngine()
        return FilterEngine(use_keyword_index=self.use_keyword_index)

    def build(self) -> DecisionEngine:
        """Parse/lint the sources into a fresh engine (blocking).

        Snapshot mode raises :class:`~repro.filterlist.snapshot.SnapshotError`
        (a ``ValueError`` subclass it is not — the retry policy treats it
        as terminal) when the artifact fails validation; the reload
        manager keeps the last good engine serving in that case.
        """
        if self.snapshot_path:
            return load_snapshot(self.snapshot_path, matcher=self.matcher).engine
        engine = self._empty_engine()
        for name, filter_list in self.load_lists().items():
            engine.add_filters(filter_list.filters, list_name=name)
        return engine

    def load_lists(self) -> dict[str, FilterList]:
        if not self.list_paths:
            from repro.filterlist import build_lists
            from repro.web import Ecosystem, EcosystemConfig

            ecosystem = Ecosystem.generate(
                EcosystemConfig(n_publishers=self.publishers, seed=self.eco_seed)
            )
            return build_lists(ecosystem.list_spec())
        lists: dict[str, FilterList] = {}
        for path in self.list_paths:
            name = os.path.splitext(os.path.basename(path))[0]
            with open(path, encoding="utf-8", errors="replace") as stream:
                text = stream.read()
            lists[name] = FilterList.from_text(text, name=name, lint=self.lint)
        return lists

    def describe(self) -> dict:
        if self.snapshot_path:
            return {
                "mode": "snapshot",
                "path": self.snapshot_path,
                "matcher": self.matcher,
            }
        if self.list_paths:
            return {"mode": "files", "lists": list(self.list_paths), "lint": self.lint}
        return {
            "mode": "ecosystem",
            "publishers": self.publishers,
            "eco_seed": self.eco_seed,
        }


class EngineHolder:
    """The atomically-swappable current engine (+ its decision cache).

    ``classify`` callers must grab :attr:`engine` once per request and
    use that reference throughout — the holder may be pointed at a new
    engine between requests, never during one.
    """

    def __init__(
        self,
        engine: DecisionEngine,
        *,
        cache_size: int | None,
    ) -> None:
        self._cache_size = cache_size
        self._generation = 1
        self._retired_stats = CacheStats()
        self._lock = threading.Lock()
        self._engine: CachingEngine | DecisionEngine = self._wrap(engine)

    def _wrap(self, engine: DecisionEngine) -> CachingEngine | DecisionEngine:
        if self._cache_size is None:
            return engine
        return CachingEngine(engine, maxsize=self._cache_size)

    @property
    def engine(self) -> CachingEngine | DecisionEngine:
        return self._engine

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def fingerprint(self) -> str:
        return self._engine.fingerprint

    @property
    def cache(self) -> CachingEngine | None:
        engine = self._engine
        return engine if isinstance(engine, CachingEngine) else None

    def cache_stats(self) -> CacheStats | None:
        """Cumulative stats across every engine this holder ever served."""
        caching = self.cache
        if caching is None:
            return None
        total = CacheStats(
            hits=self._retired_stats.hits,
            misses=self._retired_stats.misses,
            evictions=self._retired_stats.evictions,
        )
        total.merge(caching.stats)
        return total

    def adopt(self, engine: DecisionEngine) -> str:
        """Swap in a freshly-built engine; returns ``"swapped"``/``"noop"``.

        An identical fingerprint proves the list contents did not
        change, so the warm decision cache (and the old engine) stay —
        invalidating it would throw away a ~90% hit rate for nothing.
        A changed fingerprint installs the new engine behind a *fresh*
        cache, the only state change that can never serve a stale
        decision (tests/test_serve_reload.py holds this by property).
        """
        with self._lock:
            if engine.fingerprint == self._engine.fingerprint:
                return "noop"
            caching = self.cache
            if caching is not None:
                self._retired_stats.merge(caching.stats)
            self._engine = self._wrap(engine)
            self._generation += 1
            return "swapped"

    def engine_info(self) -> dict:
        engine = self._engine
        return {
            "fingerprint": engine.fingerprint,
            "filter_count": engine.filter_count,
            "lists": engine.list_names,
            "generation": self._generation,
        }


class ReloadOutcome:
    """Result of one reload request (JSON-ready)."""

    def __init__(self, status: str, holder: EngineHolder, error: str | None = None):
        self.status = status  # "swapped" | "noop" | "failed"
        self.error = error
        self.fingerprint = holder.fingerprint
        self.generation = holder.generation

    def to_dict(self) -> dict:
        data = {
            "status": self.status,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
        }
        if self.error is not None:
            data["error"] = self.error
        return data


class ReloadManager:
    """Single-flight reload driver with retry and last-good fallback.

    Concurrent reload triggers (SIGHUP storms, ``POST /-/reload`` from
    several operators, the chaos harness's reload-storm fault) serialize
    on an asyncio lock; each attempt rebuilds from source inside the
    retry budget *off-thread* and reports one of three outcomes.  A
    failure never touches the serving engine: the last good engine
    keeps answering, which is the fallback the arms-race reality
    demands (a broken upstream list push must not take the daemon down).
    """

    def __init__(
        self,
        source: EngineSource,
        holder: EngineHolder,
        *,
        retry: RetryPolicy = DEFAULT_RELOAD_RETRY,
        log: Callable[[str], None] = lambda message: None,
    ) -> None:
        self.source = source
        self.holder = holder
        self.retry = retry
        self.log = log
        self.in_progress = False
        self._lock = asyncio.Lock()

    async def reload(self) -> ReloadOutcome:
        async with self._lock:
            self.in_progress = True
            try:
                engine = await asyncio.to_thread(self._build_with_retry)
            except RetryExhausted as exc:
                self.log(f"reload failed, keeping last good engine: {exc}")
                return ReloadOutcome("failed", self.holder, error=str(exc))
            finally:
                self.in_progress = False
            status = self.holder.adopt(engine)
            self.log(
                f"reload {status}: engine {self.holder.fingerprint[:12]}… "
                f"generation {self.holder.generation}"
            )
            return ReloadOutcome(status, self.holder)

    def _build_with_retry(self) -> DecisionEngine:
        return self.retry.run(
            self.source.build,
            retry_on=(OSError, ValueError),
            on_retry=lambda attempt, exc: self.log(
                f"reload attempt {attempt + 1} failed: {exc!r}; retrying"
            ),
        )
