"""Minimal asyncio HTTP/1.1 transport for the classification daemon.

The serving layers above this (admission, reload, metrics, routing) are
transport-agnostic; this module exists because the daemon must run on a
bare python toolchain — aiohttp is deliberately *not* a dependency.  It
implements exactly the subset the daemon needs and the robustness the
serve tests exercise:

* request-line + header + ``Content-Length`` body parsing with hard
  caps (header block and body size) — oversized or malformed input is
  answered with 400/413/431 and the connection closed, never an
  unhandled exception;
* keep-alive with an idle timeout, so load generators and the chaos
  harness can reuse connections;
* connection tracking, so graceful drain can wait for in-flight
  responses to flush before the process exits.

No TLS, no chunked encoding, no pipelining guarantees beyond
read-one/answer-one: the daemon sits behind an operator's reverse
proxy in any real deployment, exactly like the paper's collection
infrastructure sat behind the ISP's capture path.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable

__all__ = ["HttpError", "HttpServer", "Request", "Response"]

# Hard caps: one header line / the whole header block / the body.
MAX_LINE = 8192
MAX_HEADERS = 64
MAX_BODY = 1 << 20  # 1 MiB

# Keep-alive connections idle longer than this are closed.
IDLE_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that could not be parsed; maps to a 4xx and a close."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes


@dataclass(slots=True)
class Response:
    """One response to serialize; ``headers`` are extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, *, close: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


Handler = Callable[[Request], Awaitable[Response]]


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpError(431, "request line too long") from exc
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise HttpError(431, "request line too long")
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise HttpError(431, "header line too long") from exc
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "truncated header block")
        if len(line) > MAX_LINE:
            raise HttpError(431, "header line too long")
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many header fields")
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw_length!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {raw_length!r}")
    if length > MAX_BODY:
        raise HttpError(413, f"body of {length} bytes exceeds {MAX_BODY}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc
    return Request(method=method, path=target, headers=headers, body=body)


class HttpServer:
    """One listening socket dispatching requests to an async handler.

    The handler owns all application semantics (routing, drain
    refusals, accounting); the server guarantees only that every parsed
    request gets exactly one response and that malformed input gets a
    4xx instead of a stack trace.
    """

    def __init__(
        self,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float = IDLE_TIMEOUT_S,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._idle_timeout_s = idle_timeout_s
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self.closing = False

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        assert self._server is not None, "server not started"
        sockets = self._server.sockets
        assert sockets
        return int(sockets[0].getsockname()[1])

    @property
    def open_connections(self) -> int:
        return len(self._connections)

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port, limit=MAX_LINE * 2
        )
        return self.port

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # peer vanished or idled out: nothing to answer
        except Exception:  # staticcheck: ok[RC002] a connection handler must never kill the daemon
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=self._idle_timeout_s
                )
            except HttpError as exc:
                response = Response(
                    status=exc.status,
                    body=json.dumps({"error": exc.reason}).encode(),
                )
                writer.write(response.encode(close=True))
                await writer.drain()
                return
            if request is None:
                return
            response = await self._handler(request)
            # Drain semantics: once the server is closing, every response
            # carries ``Connection: close`` so keep-alive clients migrate
            # off before the socket disappears.
            close = self.closing or request.headers.get("connection", "") == "close"
            writer.write(response.encode(close=close))
            await writer.drain()
            if close:
                return

    async def stop_accepting(self) -> None:
        """Close the listening socket; existing connections keep going.

        Also flips :attr:`closing`, so every subsequent response carries
        ``Connection: close`` — the first half of graceful drain.
        """
        self.closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def wait_connections(self, *, grace_s: float = 5.0) -> None:
        """Wait (bounded) for open connections to finish, then cut them."""
        if self._connections:
            await asyncio.wait(tuple(self._connections), timeout=grace_s)
        for task in tuple(self._connections):
            task.cancel()

    async def close(self, *, grace_s: float = 5.0) -> None:
        """Stop accepting, then wait (bounded) for open connections."""
        await self.stop_accepting()
        await self.wait_connections(grace_s=grace_s)
