"""Tests for §10's measurement confounds: ad-blocking proxies and
browser caches, plus the §6.1 annotation-coverage numbers."""

from __future__ import annotations

import pytest

from repro.analysis.usage import annotation_coverage
from repro.core import (
    AdClassificationPipeline,
    aggregate_users,
    annotate_browsers,
    heavy_hitters,
)
from repro.trace import RBNTraceGenerator, rbn2_config
from repro.trace.population import PopulationConfig


def _small_config(**population_overrides):
    config = rbn2_config(scale=0.0, seed=31)
    config.population = PopulationConfig(n_households=25, seed=13, **population_overrides)
    config.duration_s = 4 * 3600.0
    return config


class TestProxyConfound:
    @pytest.fixture(scope="class")
    def proxy_trace(self, ecosystem, lists):
        config = _small_config(adblock_proxy_share=0.4)
        generator = RBNTraceGenerator(config, ecosystem=ecosystem, lists=lists)
        return generator, generator.generate()

    def test_proxy_households_exist(self, proxy_trace):
        generator, _trace = proxy_trace
        proxied = [h for h in generator.households if h.proxy_blocker]
        assert proxied

    def test_proxy_strips_all_devices(self, proxy_trace):
        """No ad-intent request leaves a proxied household — the
        middlebox filters every device, browsers and apps alike."""
        generator, trace = proxy_trace
        proxied_ips = {h.ip for h in generator.households if h.proxy_blocker}
        assert proxied_ips
        saw_proxied_traffic = False
        for record, truth in zip(trace.http, trace.truth):
            if record.client in proxied_ips:
                saw_proxied_traffic = True
                assert truth.intent != "ad", (record.url, truth.profile_name)
        assert saw_proxied_traffic

    def test_proxy_has_no_abp_downloads(self, proxy_trace, ecosystem):
        from repro.trace.capture import abp_server_ips

        generator, trace = proxy_trace
        abp_ips = abp_server_ips(ecosystem)
        # Proxy households WITHOUT real ABP devices never contact the
        # ABP servers — the overestimation shows up as type-D users.
        pure_proxy_ips = {
            h.ip
            for h in generator.households
            if h.proxy_blocker and not h.has_abp_device
        }
        download_clients = {r.client for r in trace.tls if r.server in abp_ips}
        assert not (pure_proxy_ips & download_clients)

    def test_proxy_browsers_classified_low_ratio(self, proxy_trace, lists):
        generator, trace = proxy_trace
        pipeline = AdClassificationPipeline(lists)
        entries = pipeline.process(trace.http)
        stats = aggregate_users(entries)
        proxied_ips = {h.ip for h in generator.households if h.proxy_blocker}
        proxied_active = [
            s for s in stats.values()
            if s.client in proxied_ips and s.requests > 300 and s.ua_info.is_browser
        ]
        assert proxied_active
        for user_stats in proxied_active:
            assert user_stats.ad_ratio <= 0.05


class TestBrowserCache:
    def test_cache_reduces_content_not_ads(self, ecosystem, lists):
        base = _small_config()
        cached = _small_config()
        cached.browser_cache = True
        trace_plain = RBNTraceGenerator(base, ecosystem=ecosystem, lists=lists).generate()
        trace_cached = RBNTraceGenerator(cached, ecosystem=ecosystem, lists=lists).generate()

        def intent_counts(trace):
            counts = {"content": 0, "ad": 0, "tracker": 0, "app": 0}
            for truth in trace.truth:
                counts[truth.intent] += 1
            return counts

        plain = intent_counts(trace_plain)
        warm = intent_counts(trace_cached)
        # With per-visit rendering RNG the two runs draw identical
        # pages; only cache hits differ: content shrinks, ads/trackers
        # are cache-busted and stay exactly equal.
        assert warm["content"] < plain["content"]
        assert warm["ad"] == plain["ad"]
        assert warm["tracker"] == plain["tracker"]

    def test_cache_inflates_ad_ratio(self, ecosystem, lists):
        """§10: caches decrease observed requests; since ads are not
        cached, the measured ad ratio inflates."""
        base = _small_config()
        cached = _small_config()
        cached.browser_cache = True
        pipeline = AdClassificationPipeline(lists)
        plain_entries = pipeline.process(
            RBNTraceGenerator(base, ecosystem=ecosystem, lists=lists).generate().http
        )
        warm_entries = pipeline.process(
            RBNTraceGenerator(cached, ecosystem=ecosystem, lists=lists).generate().http
        )
        plain_ratio = sum(e.is_ad for e in plain_entries) / len(plain_entries)
        warm_ratio = sum(e.is_ad for e in warm_entries) / len(warm_entries)
        assert warm_ratio > plain_ratio


class TestAnnotationCoverage:
    def test_coverage_shares(self, classified):
        stats = aggregate_users(classified)
        annotation = annotate_browsers(stats)
        heavy = heavy_hitters(stats, min_requests=500)
        heavy_browsers = annotate_browsers(heavy).browsers
        coverage = annotation_coverage(stats, annotation.browsers, heavy_browsers)
        assert coverage.browsers >= coverage.heavy_hitter_browsers
        assert 0.0 < coverage.request_share <= 1.0
        # Browsers generate the bulk of ad requests (paper: 82.2%).
        assert coverage.ad_request_share > 0.7
        # Heavy hitters dominate within that (paper: 72.5%).
        assert coverage.heavy_ad_request_share <= coverage.ad_request_share
        assert coverage.heavy_ad_request_share > 0.3
