"""Tests for the active measurement study (§4, Table 1, Fig 2 shape)."""

from __future__ import annotations

from repro.core import AdClassificationPipeline
from repro.filterlist.lists import EASYLIST, EASYPRIVACY


def _list_hits(pipeline, records):
    entries = pipeline.process(records.http)
    easylist = sum(
        1 for e in entries
        if (e.blacklist_name or "").startswith(EASYLIST) or
        (e.is_whitelisted and not e.classification.is_blacklisted)
    )
    easyprivacy = sum(1 for e in entries if e.blacklist_name == EASYPRIVACY)
    return easylist, easyprivacy


class TestCrawlShape:
    """The qualitative structure of Table 1 must hold."""

    def test_all_profiles_present(self, crawl_results):
        assert set(crawl_results) == {
            "Vanilla", "AdBP-Ad", "AdBP-Pr", "AdBP-Pa",
            "Ghostery-Ad", "Ghostery-Pr", "Ghostery-Pa",
        }
        for result in crawl_results.values():
            assert len(result.visits) == 40

    def test_adblockers_reduce_http_requests(self, crawl_results):
        vanilla = crawl_results["Vanilla"].http_requests
        for name in ("AdBP-Pa", "AdBP-Ad", "Ghostery-Pa"):
            assert crawl_results[name].http_requests < vanilla, name
        # AdBP-Pa removes a sizeable chunk (paper: ~20%).
        assert crawl_results["AdBP-Pa"].http_requests < 0.95 * vanilla

    def test_vanilla_has_most_ad_hits(self, crawl_results, pipeline):
        vanilla_el, vanilla_ep = _list_hits(pipeline, crawl_results["Vanilla"].records)
        assert vanilla_el > 0 and vanilla_ep > 0
        pa_el, pa_ep = _list_hits(pipeline, crawl_results["AdBP-Pa"].records)
        # Paranoia mode: both lists' hits nearly vanish (Table 1 bold).
        assert pa_el < 0.25 * vanilla_el
        assert pa_ep < 0.1 * vanilla_ep

    def test_adbp_ad_keeps_tracker_hits(self, crawl_results, pipeline):
        """AdBP-Ad (EasyList only): EasyPrivacy hits stay high."""
        vanilla_el, vanilla_ep = _list_hits(pipeline, crawl_results["Vanilla"].records)
        ad_el, ad_ep = _list_hits(pipeline, crawl_results["AdBP-Ad"].records)
        assert ad_ep > 0.5 * vanilla_ep  # trackers not blocked
        assert ad_el < 0.6 * vanilla_el  # ads mostly blocked (AA remains)

    def test_adbp_pr_keeps_ad_hits(self, crawl_results, pipeline):
        """AdBP-Pr (EasyPrivacy only): EasyList hits stay high."""
        vanilla_el, _ = _list_hits(pipeline, crawl_results["Vanilla"].records)
        pr_el, pr_ep = _list_hits(pipeline, crawl_results["AdBP-Pr"].records)
        assert pr_el > 0.5 * vanilla_el
        assert pr_ep < 50

    def test_ghostery_paranoia_leaves_residual_hits(self, crawl_results, pipeline):
        """Ghostery's DB is incomplete: EasyList still matches leftovers."""
        ghostery_el, _ = _list_hits(pipeline, crawl_results["Ghostery-Pa"].records)
        pa_el, _ = _list_hits(pipeline, crawl_results["AdBP-Pa"].records)
        assert ghostery_el > pa_el

    def test_abp_profiles_contact_update_servers(self, crawl_results):
        for name in ("AdBP-Ad", "AdBP-Pr", "AdBP-Pa"):
            result = crawl_results[name]
            assert result.https_connections >= len(result.visits)
        # Vanilla only has page HTTPS (none here since top sites chosen
        # may include https landings) but never update connections.


class TestAdRatioSeparation:
    """Fig 2: the ad-ratio gap grows with the number of page loads."""

    def test_ratio_separation(self, crawl_results, pipeline):
        import random

        def ratios(profile_name, loads):
            result = crawl_results[profile_name]
            rng = random.Random(7)
            samples = []
            for _ in range(30):
                picked = rng.sample(result.visits, loads)
                requests = ads = 0
                for visit in picked:
                    for request in visit.requests:
                        requests += 1
                        if request.obj.intent in ("ad", "tracker"):
                            ads += 1
                samples.append(ads / max(1, requests))
            return samples

        vanilla_10 = ratios("Vanilla", 10)
        adbp_10 = ratios("AdBP-Pa", 10)
        # With 10 page loads the distributions separate cleanly at 5%.
        assert min(vanilla_10) > 0.05
        assert max(adbp_10) < 0.05
