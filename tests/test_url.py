"""Unit tests for repro.http.url."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.url import (
    SplitUrl,
    embedded_urls,
    format_query,
    hostname_of,
    is_subdomain_of,
    is_third_party,
    join_url,
    parse_query,
    path_extension,
    registrable_domain,
    split_url,
)


class TestSplitUrl:
    def test_full_url(self):
        parts = split_url("http://www.Example.com:8080/a/b.html?x=1&y=2#frag")
        assert parts.scheme == "http"
        assert parts.host == "www.example.com"
        assert parts.port == 8080
        assert parts.path == "/a/b.html"
        assert parts.query == "x=1&y=2"

    def test_no_port(self):
        parts = split_url("https://example.com/path")
        assert parts.port is None
        assert parts.netloc == "example.com"
        assert parts.origin == "https://example.com"

    def test_scheme_relative(self):
        parts = split_url("//cdn.example.net/asset.js")
        assert parts.scheme == ""
        assert parts.host == "cdn.example.net"
        assert parts.path == "/asset.js"

    def test_host_only(self):
        parts = split_url("http://example.com")
        assert parts.path == ""
        assert parts.query == ""

    def test_fragment_dropped(self):
        assert split_url("http://e.com/p#x?y").path == "/p"

    def test_query_without_path(self):
        # Degenerate but seen in the wild via proxies.
        parts = split_url("http://e.com/?a=b")
        assert parts.path == "/"
        assert parts.query == "a=b"

    def test_path_and_query_property(self):
        parts = split_url("http://e.com/p?q=1")
        assert parts.path_and_query == "/p?q=1"
        assert split_url("http://e.com/p").path_and_query == "/p"

    def test_join_roundtrip(self):
        url = "http://sub.example.co.uk:81/x/y?k=v&m"
        assert join_url(split_url(url)) == url

    def test_ipv4_host(self):
        parts = split_url("http://192.168.1.10:8000/x")
        assert parts.host == "192.168.1.10"
        assert parts.port == 8000


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("example.com", "example.com"),
            ("www.example.com", "example.com"),
            ("a.b.c.example.com", "example.com"),
            ("news.co.uk", "news.co.uk"),
            ("static.news.co.uk", "news.co.uk"),
            ("deep.static.news.co.uk", "news.co.uk"),
            ("localhost", "localhost"),
            ("192.168.0.1", "192.168.0.1"),
            ("Example.COM.", "example.com"),
        ],
    )
    def test_cases(self, host, expected):
        assert registrable_domain(host) == expected

    def test_third_party(self):
        assert is_third_party("ads.tracker.net", "www.example.com")
        assert not is_third_party("static.example.com", "www.example.com")

    def test_subdomain(self):
        assert is_subdomain_of("a.b.com", "b.com")
        assert is_subdomain_of("b.com", "b.com")
        assert not is_subdomain_of("notb.com", "b.com")
        assert not is_subdomain_of("b.com.evil.org", "b.com")


class TestPathExtension:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/a/b.GIF", "gif"),
            ("/a/b.tar.gz", "gz"),
            ("/a/b", ""),
            ("/a/.hidden", ""),
            ("/", ""),
            ("", ""),
            ("/x.j$s", ""),
        ],
    )
    def test_cases(self, path, expected):
        assert path_extension(path) == expected


class TestQuery:
    def test_parse(self):
        assert parse_query("a=1&b=&c&&d=x=y") == [
            ("a", "1"),
            ("b", ""),
            ("c", ""),
            ("d", "x=y"),
        ]

    def test_roundtrip(self):
        query = "a=1&flag&b=two"
        assert format_query(parse_query(query)) == query

    def test_empty(self):
        assert parse_query("") == []
        assert format_query([]) == ""


class TestEmbeddedUrls:
    def test_clear_text(self):
        urls = embedded_urls("http://r.com/go?u=http://target.com/x&z=1")
        assert urls == ["http://target.com/x"]

    def test_percent_encoded(self):
        urls = embedded_urls("http://r.com/go?u=http%3A%2F%2Ftarget.com%2Fx")
        assert urls == ["http://target.com/x"]

    def test_none(self):
        assert embedded_urls("http://r.com/plain?x=1") == []
        assert embedded_urls("http://r.com/plain") == []


_HOST_LABEL = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)


@given(
    labels=st.lists(_HOST_LABEL, min_size=1, max_size=4),
    path=st.text(alphabet=string.ascii_lowercase + "/._-", max_size=20),
    query=st.text(alphabet=string.ascii_lowercase + "=&_", max_size=20),
)
def test_split_join_roundtrip_property(labels, path, query):
    host = ".".join(labels)
    path = "/" + path.lstrip("/")
    url = f"http://{host}{path}"
    if query:
        url += f"?{query}"
    parts = split_url(url)
    assert parts.host == host
    assert join_url(parts) == url


@given(host=st.lists(_HOST_LABEL, min_size=1, max_size=5).map(".".join))
def test_registrable_domain_is_suffix(host):
    domain = registrable_domain(host)
    assert host == domain or host.endswith("." + domain)
    # Idempotence.
    assert registrable_domain(domain) == domain
