"""Unit tests for repro.http.parser (HTTP/1.x wire format)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import (
    HttpParseError,
    parse_request_stream,
    parse_response_stream,
    serialize_request,
    serialize_response,
)


def _request(uri="/", host="e.com", **extra):
    headers = Headers({"Host": host, **extra})
    return HttpRequest("GET", uri, headers)


class TestRequestStream:
    def test_single_get(self):
        data = b"GET /x HTTP/1.1\r\nHost: e.com\r\nUser-Agent: UA\r\n\r\n"
        requests = parse_request_stream(data)
        assert len(requests) == 1
        assert requests[0].method == "GET"
        assert requests[0].uri == "/x"
        assert requests[0].host == "e.com"

    def test_pipelined_requests(self):
        data = (
            b"GET /1 HTTP/1.1\r\nHost: a.com\r\n\r\n"
            b"GET /2 HTTP/1.1\r\nHost: a.com\r\n\r\n"
        )
        requests = parse_request_stream(data)
        assert [r.uri for r in requests] == ["/1", "/2"]

    def test_post_with_body(self):
        data = (
            b"POST /f HTTP/1.1\r\nHost: a.com\r\nContent-Length: 5\r\n\r\nhello"
            b"GET /after HTTP/1.1\r\nHost: a.com\r\n\r\n"
        )
        requests = parse_request_stream(data)
        assert [r.method for r in requests] == ["POST", "GET"]

    def test_malformed_request_line(self):
        with pytest.raises(HttpParseError):
            parse_request_stream(b"NONSENSE\r\n\r\n")

    def test_unterminated_headers(self):
        with pytest.raises(HttpParseError):
            parse_request_stream(b"GET / HTTP/1.1\r\nHost: e.com")

    def test_malformed_header_line(self):
        with pytest.raises(HttpParseError):
            parse_request_stream(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")


class TestResponseStream:
    def test_single_response(self):
        data = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 2\r\n\r\nhi"
        responses = parse_response_stream(data)
        assert len(responses) == 1
        assert responses[0].status == 200
        assert responses[0].content_type == "text/html"
        assert responses[0].body_length == 2

    def test_chunked_body_consumed(self):
        data = (
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n"
            b"HTTP/1.1 204 No Content\r\n\r\n"
        )
        responses = parse_response_stream(data)
        assert [r.status for r in responses] == [200, 204]
        assert responses[0].body_length == 9

    def test_head_response_has_no_body(self):
        data = (
            b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"
        )
        responses = parse_response_stream(data, ["HEAD", "GET"])
        assert len(responses) == 2
        assert responses[0].content_length == 100  # header preserved
        assert responses[0].body_length == 0  # but no body read

    def test_304_has_no_body(self):
        data = (
            b"HTTP/1.1 304 Not Modified\r\nContent-Length: 10\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nx"
        )
        responses = parse_response_stream(data)
        assert [r.status for r in responses] == [304, 200]

    def test_bad_status_line(self):
        with pytest.raises(HttpParseError):
            parse_response_stream(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_bad_chunk_size(self):
        with pytest.raises(HttpParseError):
            parse_response_stream(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n"
            )


class TestRoundTrip:
    def test_request_roundtrip(self):
        request = _request("/a?b=c", Referer="http://r.com/")
        parsed = parse_request_stream(serialize_request(request))
        assert parsed[0].uri == "/a?b=c"
        assert parsed[0].headers.get("Referer") == "http://r.com/"

    def test_response_roundtrip_with_body(self):
        response = HttpResponse(302, "Found", Headers({"Location": "http://t.com/x"}))
        data = serialize_response(response, b"abcde")
        parsed = parse_response_stream(data)
        assert parsed[0].status == 302
        assert parsed[0].location == "http://t.com/x"
        assert parsed[0].body_length == 5


_TOKEN = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_./", min_size=1, max_size=20
)


@given(
    uris=st.lists(_TOKEN.map(lambda t: "/" + t), min_size=1, max_size=5),
    host=_TOKEN,
)
def test_pipelined_roundtrip_property(uris, host):
    stream = b"".join(serialize_request(_request(uri, host=host)) for uri in uris)
    parsed = parse_request_stream(stream)
    assert [r.uri for r in parsed] == uris
    assert all(r.host == host.lower() for r in parsed)


@given(
    statuses=st.lists(st.sampled_from([200, 204, 302, 404, 500]), min_size=1, max_size=5),
    body=st.binary(max_size=64),
)
def test_response_stream_roundtrip_property(statuses, body):
    stream = b""
    for status in statuses:
        response = HttpResponse(status, "R")
        stream += serialize_response(response, body if status not in (204,) else b"")
    parsed = parse_response_stream(stream)
    assert [r.status for r in parsed] == statuses
