"""Extended HTTP substrate tests: HTTP/1.0 bodies, parser fuzzing,
streaming pipeline equivalence, NAT UA collisions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.parser import HttpParseError, parse_response_stream


class TestReadUntilClose:
    def test_http10_body_to_eof(self):
        data = (
            b"HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n"
            b"body-without-length-running-to-eof"
        )
        responses = parse_response_stream(data)
        assert len(responses) == 1
        assert responses[0].body_length == len(b"body-without-length-running-to-eof")

    def test_connection_close_body_to_eof(self):
        data = (
            b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n"
            b"everything here is body GET /fake HTTP/1.1\r\n\r\n"
        )
        responses = parse_response_stream(data)
        assert len(responses) == 1  # the fake request line is body

    def test_content_length_beats_until_close(self):
        data = (
            b"HTTP/1.0 200 OK\r\nContent-Length: 4\r\n\r\nbody"
            b"HTTP/1.0 404 NF\r\nContent-Length: 0\r\n\r\n"
        )
        responses = parse_response_stream(data)
        assert [r.status for r in responses] == [200, 404]

    def test_head_still_bodyless(self):
        data = b"HTTP/1.0 200 OK\r\n\r\n"
        responses = parse_response_stream(data, ["HEAD"])
        assert responses[0].body_length == 0


class TestParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=256))
    def test_response_parser_total(self, data):
        """Random bytes either parse or raise HttpParseError — never
        anything else, never hang."""
        try:
            parse_response_stream(data)
        except HttpParseError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=256))
    def test_request_parser_total(self, data):
        from repro.http.parser import parse_request_stream

        try:
            parse_request_stream(data)
        except HttpParseError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(prefix=st.binary(max_size=32))
    def test_valid_message_with_garbage_prefix_rejected(self, prefix):
        data = prefix + b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"
        try:
            responses = parse_response_stream(data)
            # If it parsed, the garbage must have been header-shaped.
            assert all(isinstance(r.status, int) for r in responses)
        except HttpParseError:
            pass


class TestStreamingPipeline:
    def test_iter_process_matches_process(self, pipeline, rbn_trace):
        sample = rbn_trace.http[:8000]
        batch = pipeline.process(sample)
        streamed = list(pipeline.iter_process(sample, fixup_window=256))
        assert len(streamed) == len(batch)
        for a, b in zip(batch, streamed):
            assert a.record is b.record
            assert a.page_url == b.page_url
            assert a.is_ad == b.is_ad
            assert a.blacklist_name == b.blacklist_name

    def test_iter_process_is_lazy(self, pipeline, rbn_trace):
        iterator = pipeline.iter_process(iter(rbn_trace.http[:5000]), fixup_window=16)
        first = next(iterator)
        assert first.record is rbn_trace.http[0]

    def test_unbounded_window(self, pipeline, rbn_trace):
        sample = rbn_trace.http[:2000]
        assert len(list(pipeline.iter_process(sample, fixup_window=None))) == len(sample)


class TestUaCollisions:
    def test_collisions_merge_pairs(self):
        from repro.trace.population import PopulationConfig, generate_population

        config = PopulationConfig(n_households=300, seed=8, ua_collision_share=0.5)
        households = generate_population(config)
        collided = 0
        for household in households:
            uas = [d.user_agent for d in household.devices if d.is_browser]
            collided += len(uas) - len(set(uas))
        assert collided > 0

    def test_collisions_can_mix_profiles(self):
        """The interesting case: one pair, two devices, only one ABP —
        the paper's type-B mechanism."""
        from repro.trace.population import PopulationConfig, generate_population

        config = PopulationConfig(
            n_households=600, seed=9, ua_collision_share=0.5, household_abp_rate=0.6
        )
        households = generate_population(config)
        mixed = 0
        for household in households:
            by_ua: dict[str, set[bool]] = {}
            for device in household.devices:
                if device.is_browser:
                    by_ua.setdefault(device.user_agent, set()).add(device.profile.has_abp)
            mixed += sum(1 for values in by_ua.values() if len(values) == 2)
        assert mixed > 0

    def test_zero_collision_share(self):
        from repro.trace.population import PopulationConfig, generate_population

        config = PopulationConfig(n_households=200, seed=8, ua_collision_share=0.0)
        households = generate_population(config)
        collided = total = 0
        for household in households:
            uas = [d.user_agent for d in household.devices if d.is_browser]
            collided += len(uas) - len(set(uas))
            total += len(uas)
        # Accidental same-build collisions exist but must be rare
        # compared to the engineered share.
        assert collided / total < 0.03
