"""End-to-end integration test at calibration scale.

Regenerates a reduced RBN-2 and asserts the paper's headline numbers
hold in *band* — the reproduction's acceptance test.  This is the
slowest test in the suite (about a minute); everything it checks is
also exercised piecemeal by the unit tests on a smaller fixture.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import (
    AdClassificationPipeline,
    aggregate_users,
    annotate_browsers,
    classify_usage,
    easyprivacy_subscription_shares,
    heavy_hitters,
    usage_breakdown,
)
from repro.trace import RBNTraceGenerator, abp_server_ips, easylist_download_clients, rbn2_config
from repro.web import Ecosystem, EcosystemConfig


@pytest.fixture(scope="module")
def study():
    ecosystem = Ecosystem.generate(EcosystemConfig(n_publishers=300))
    config = rbn2_config(scale=0.008)
    generator = RBNTraceGenerator(config, ecosystem=ecosystem)
    trace = generator.generate()
    pipeline = AdClassificationPipeline(generator.lists)
    entries = pipeline.process(trace.http)
    return ecosystem, generator, trace, entries


class TestPaperBands:
    def test_ad_request_share(self, study):
        _, _, _, entries = study
        share = sum(1 for e in entries if e.is_ad) / len(entries)
        assert 0.13 < share < 0.25, f"paper: 18.89%, got {share:.1%}"

    def test_list_attribution_ordering(self, study):
        _, _, _, entries = study
        buckets = Counter(
            e.blacklist_name for e in entries if e.classification.is_blacklisted
        )
        easylist = buckets.get("easylist", 0)
        easyprivacy = buckets.get("easyprivacy", 0)
        total = easylist + easyprivacy
        assert easylist / total > 0.45  # paper: EL 55.9% of ad hits
        assert easyprivacy / total > 0.25  # paper: EP 35.1%
        assert easylist > easyprivacy

    def test_download_household_share(self, study):
        ecosystem, generator, trace, _ = study
        downloads = easylist_download_clients(trace.tls, abp_server_ips(ecosystem))
        share = len(downloads) / generator.subscribers
        assert 0.12 < share < 0.30, f"paper: 19.7%, got {share:.1%}"

    def test_usage_classes(self, study):
        ecosystem, generator, trace, entries = study
        stats = aggregate_users(entries)
        annotation = annotate_browsers(heavy_hitters(stats))
        downloads = easylist_download_clients(trace.tls, abp_server_ips(ecosystem))
        usages = classify_usage(list(annotation.browsers.values()), downloads)
        rows = {row.usage_type: row for row in usage_breakdown(usages)}
        # Paper: A 46.8, B 15.7, C 22.2, D 15.3 — assert loose bands.
        assert 0.30 < rows["A"].instance_share < 0.65
        assert 0.04 < rows["B"].instance_share < 0.30
        assert 0.12 < rows["C"].instance_share < 0.35
        assert 0.04 < rows["D"].instance_share < 0.30
        # Likely-ABP users contribute disproportionately few ads.
        assert rows["C"].ad_request_share < rows["C"].request_share

    def test_easyprivacy_adoption_gap(self, study):
        ecosystem, generator, trace, entries = study
        stats = aggregate_users(entries)
        annotation = annotate_browsers(heavy_hitters(stats))
        downloads = easylist_download_clients(trace.tls, abp_server_ips(ecosystem))
        usages = classify_usage(list(annotation.browsers.values()), downloads)
        abp_share, plain_share = easyprivacy_subscription_shares(usages, max_hits=10)
        # Paper: 13.1% vs ~0.1% — a clear gap must exist.
        assert abp_share > plain_share + 0.03
        assert plain_share < 0.05

    def test_detection_agrees_with_ground_truth(self, study):
        """Class C (likely ABP) must be enriched in true ABP devices."""
        ecosystem, generator, trace, entries = study
        device_profiles = {}
        for household in generator.households:
            for device in household.devices:
                device_profiles[(household.ip, device.user_agent)] = device.profile

        stats = aggregate_users(entries)
        annotation = annotate_browsers(heavy_hitters(stats))
        downloads = easylist_download_clients(trace.tls, abp_server_ips(ecosystem))
        usages = classify_usage(list(annotation.browsers.values()), downloads)

        def abp_share(group):
            members = [u for u in usages if u.usage_type == group]
            if not members:
                return 0.0
            with_abp = sum(
                1 for u in members
                if (profile := device_profiles.get(u.stats.user)) and profile.has_abp
            )
            return with_abp / len(members)

        assert abp_share("C") > 0.8  # precision of the indicator pair
        assert abp_share("A") < 0.1
