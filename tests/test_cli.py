"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

_ECO = ["--publishers", "80", "--eco-seed", "99"]


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    http_path = tmp / "trace.tsv"
    tls_path = tmp / "tls.tsv"
    code = main(
        ["trace", *_ECO, "--preset", "rbn2", "--scale", "0.0005",
         "--out", str(http_path), "--tls-out", str(tls_path)]
    )
    assert code == 0
    return http_path, tls_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("ecosystem", "trace", "classify", "usage", "crawl", "report"):
            args = parser.parse_args(
                [command] + (
                    ["--trace", "x"] if command in ("classify", "report") else []
                ) + (
                    ["--tls", "y"] if command == "usage" else []
                ) + (
                    ["--trace", "x"] if command == "usage" else []
                ) + (
                    ["--out", "z"] if command == "trace" else []
                )
            )
            assert callable(args.func)


class TestEcosystemCommand:
    def test_runs(self, capsys):
        assert main(["ecosystem", *_ECO]) == 0
        out = capsys.readouterr().out
        assert "publishers:  80" in out
        assert "easylist" in out


class TestTraceAndClassify:
    def test_trace_writes_files(self, trace_files):
        http_path, tls_path = trace_files
        head = http_path.read_text().splitlines()
        assert head[0].startswith("#ts")
        assert len(head) > 100
        assert tls_path.read_text().startswith("#ts")

    def test_classify(self, trace_files, capsys, tmp_path):
        http_path, _ = trace_files
        out_path = tmp_path / "classified.tsv"
        code = main(["classify", *_ECO, "--trace", str(http_path), "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ad-related:" in out
        lines = out_path.read_text().splitlines()
        assert lines[0].startswith("#ts")
        assert any(line.split("\t")[4] == "1" for line in lines[1:])

    def test_usage(self, trace_files, capsys):
        http_path, tls_path = trace_files
        code = main(
            ["usage", *_ECO, "--trace", str(http_path), "--tls", str(tls_path),
             "--min-requests", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "usage classes" in out
        assert "likely Adblock Plus users" in out

    def test_report(self, trace_files, capsys):
        http_path, _ = trace_files
        assert main(["report", *_ECO, "--trace", str(http_path)]) == 0
        out = capsys.readouterr().out
        assert "Content-Type" in out
        assert "ad share" in out


class TestCrawlCommand:
    def test_crawl(self, capsys):
        assert main(["crawl", *_ECO, "--sites", "15"]) == 0
        out = capsys.readouterr().out
        assert "Vanilla" in out and "AdBP-Pa" in out


@pytest.fixture(scope="module")
def corrupted_trace(trace_files, tmp_path_factory):
    http_path, _ = trace_files
    tmp = tmp_path_factory.mktemp("corrupt")
    damaged = tmp / "damaged.tsv"
    code = main(
        ["corrupt", "--trace", str(http_path), "--out", str(damaged),
         "--rate", "0.1", "--jitter-s", "1.0", "--seed", "7"]
    )
    assert code == 0
    return damaged


class TestDegradedOperation:
    def test_quarantine_completes_with_exit_3(self, corrupted_trace, capsys, tmp_path):
        sidecar = tmp_path / "rejects.tsv"
        code = main(
            ["classify", *_ECO, "--trace", str(corrupted_trace),
             "--on-error", "quarantine", "--quarantine-out", str(sidecar),
             "--reorder-window", "2.0"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "pipeline health" in out
        assert "quarantined" in out

        # No data silently lost: parsed + quarantined == input data lines.
        input_lines = sum(
            1 for line in corrupted_trace.read_text().splitlines()
            if line and not line.startswith("#")
        )
        quarantined = sum(
            1 for line in sidecar.read_text().splitlines()
            if line and not line.startswith("#")
        )
        parsed = int(out.split(" requests classified")[0].rsplit("\n", 1)[-1])
        assert parsed + quarantined == input_lines

    def test_skip_completes_with_exit_3(self, corrupted_trace, capsys):
        code = main(
            ["classify", *_ECO, "--trace", str(corrupted_trace), "--on-error", "skip"]
        )
        assert code == 3
        assert "dropped:" in capsys.readouterr().out

    def test_strict_aborts_citing_line_number(self, corrupted_trace, capsys):
        code = main(["classify", *_ECO, "--trace", str(corrupted_trace)])
        assert code == 1
        err = capsys.readouterr().err
        assert "malformed input at line" in err

    def test_clean_trace_exits_0_with_summary(self, trace_files, capsys):
        http_path, _ = trace_files
        code = main(
            ["classify", *_ECO, "--trace", str(http_path), "--on-error", "quarantine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped:           0" in out

    def test_max_users_flag(self, trace_files, capsys):
        http_path, _ = trace_files
        code = main(
            ["classify", *_ECO, "--trace", str(http_path), "--max-users", "3"]
        )
        assert code == 0
        assert "peak users held:   3" in capsys.readouterr().out


class TestLintCommand:
    FIXTURE = (
        "||ads.example^$bogus-option\n"
        "/(a+)+broken/$script\n"
        "||ok.example^$script\n"
    )

    @pytest.fixture()
    def fixture_path(self, tmp_path):
        path = tmp_path / "list.txt"
        path.write_text(self.FIXTURE)
        return str(path)

    def test_findings_exit_1(self, fixture_path, capsys):
        assert main(["lint", fixture_path]) == 1
        out = capsys.readouterr().out
        assert "FL006 error" in out and "FL007 warning" in out

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.txt"
        path.write_text("||x.example^$bogus-option\n")
        assert main(["lint", str(path)]) == 0
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1

    def test_clean_list_exits_0(self, tmp_path, capsys):
        path = tmp_path / "clean.txt"
        path.write_text("||ads.example^$script\n")
        assert main(["lint", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_format(self, fixture_path, capsys):
        import json

        main(["lint", fixture_path, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"]["error"] == 1

    def test_baseline_round_trip(self, fixture_path, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", fixture_path, "--write-baseline", baseline]) == 0
        assert main(["lint", fixture_path, "--baseline", baseline,
                     "--fail-on", "warning"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_baseline_hides_old_but_reports_new(self, fixture_path, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", fixture_path, "--write-baseline", baseline]) == 0
        capsys.readouterr()
        # A fresh finding appears after the baseline was accepted: only
        # it may be reported, and it alone fails the gate.
        with open(fixture_path, "a") as stream:
            stream.write("||new.example^$other-bogus\n")
        assert main(["lint", fixture_path, "--baseline", baseline,
                     "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "other-bogus" in out
        assert "ads.example" not in out and "broken" not in out

    def test_self_gate_is_clean(self, capsys):
        assert main(["lint", "--self", "--fail-on", "warning"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_self_json_format(self, capsys):
        import json

        assert main(["lint", "--self", "--format", "json",
                     "--fail-on", "warning"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}

    def test_self_baseline_round_trip(self, tmp_path, capsys):
        # A clean self-lint accepts an empty baseline and stays clean
        # when linted against it — the workflow CI documents for
        # adopting the gate on a repo with pre-existing findings.
        baseline = str(tmp_path / "self-baseline.json")
        assert main(["lint", "--self", "--write-baseline", baseline]) == 0
        assert "0 fingerprint(s)" in capsys.readouterr().out
        assert main(["lint", "--self", "--baseline", baseline,
                     "--fail-on", "warning"]) == 0

    def test_no_input_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["lint"])
