"""Four-way differential decision harness (DESIGN.md §15).

Every matcher backend must be *decision-identical*: the classic
bucketed :class:`FilterEngine`, the Aho–Corasick :class:`ACTrieEngine`,
the :class:`CombinedRegexEngine` alternation prefilter, and an engine
round-tripped through a ``repro compile-lists`` snapshot are four
implementations of one contract.  Hypothesis generates filter lists and
URL/content-type/page-host workloads; every generated decision is
compared across all four paths, asserting not just the tri-state
outcome but the *identity* (text + list attribution) of the blocking
and exception filters — the paper's EasyList-vs-EasyPrivacy
attribution (§6) rides on which filter matched, not only whether one
did.

Shrunk counterexamples from harness development are committed below as
:class:`TestRegressions` so the exact divergences that once existed
can never silently return.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filterlist.actrie import ACTrieEngine
from repro.filterlist.combined import CombinedRegexEngine
from repro.filterlist.engine import FilterEngine, RequestContext
from repro.filterlist.filter import Filter
from repro.filterlist.options import ContentType
from repro.filterlist.snapshot import load_snapshot, write_snapshot

# ---------------------------------------------------------------------------
# strategies: a small closed world so filters and URLs actually collide
# ---------------------------------------------------------------------------

_HOSTS = (
    "ads.example",
    "cdn.ads.example",
    "track.example",
    "pub.example",
    "news.example",
    "static.example",
)
_TOKENS = ("ad", "banner", "pixel", "track", "adserver", "promo", "img", "js")
_EXTS = ("gif", "js", "png", "html", "css")

_host = st.sampled_from(_HOSTS)
_token = st.sampled_from(_TOKENS)


@st.composite
def _filter_text(draw) -> str:
    """One syntactically valid ABP filter over the closed world."""
    kind = draw(st.sampled_from(
        ("host", "host_path", "substring", "sep_token", "wildcard", "anchor")
    ))
    if kind == "host":
        body = f"||{draw(_host)}^"
    elif kind == "host_path":
        body = f"||{draw(_host)}/{draw(_token)}/"
    elif kind == "substring":
        body = f"/{draw(_token)}/"
    elif kind == "sep_token":
        body = f"&{draw(_token)}="
    elif kind == "wildcard":
        body = f"/{draw(_token)}/*.{draw(st.sampled_from(_EXTS))}"
    else:
        body = f"|http://{draw(_host)}/"

    options = draw(st.sampled_from(
        ("", "$script", "$image", "$third-party", "$~third-party",
         "$script,image", "$domain=news.example", "$domain=~news.example")
    ))
    exception = draw(st.booleans())
    text = body + options
    if exception:
        text = "@@" + text
        if draw(st.booleans()):
            text = text.rstrip("^") + "^$document"
    return text


@st.composite
def _lists(draw) -> dict[str, list[str]]:
    names = draw(st.sampled_from((("easylist",), ("easylist", "easyprivacy"))))
    return {
        name: draw(st.lists(_filter_text(), min_size=1, max_size=12))
        for name in names
    }


@st.composite
def _url(draw) -> str:
    host = draw(_host)
    segments = draw(st.lists(_token, min_size=0, max_size=3))
    path = "/".join(segments)
    ext = draw(st.sampled_from(_EXTS))
    query = draw(st.sampled_from(("", f"?{draw(_token)}={draw(_token)}", "?x=1")))
    return f"http://{host}/{path}{'/' if path else ''}f.{ext}{query}"


_context = st.builds(
    RequestContext,
    content_type=st.sampled_from(
        (ContentType.IMAGE, ContentType.SCRIPT, ContentType.DOCUMENT, ContentType.OTHER)
    ),
    page_url=st.sampled_from(
        ("http://news.example/", "http://ads.example/", "http://pub.example/a", "")
    ),
)

_workload = st.lists(st.tuples(_url(), _context), min_size=1, max_size=20)


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------


def _filter_key(filter_: Filter | None) -> tuple[str, str] | None:
    return None if filter_ is None else (filter_.text, filter_.list_name or "")


def _match_signature(result) -> tuple:
    return (
        result.decision,
        _filter_key(result.blocking_filter),
        _filter_key(result.exception_filter),
    )


def _classify_signature(classification) -> tuple:
    return (
        _filter_key(classification.blacklist_filter),
        _filter_key(classification.whitelist_filter),
        classification.blacklist_lists,
    )


def _build_engines(lines: dict[str, list[str]], tmp_path):
    """All four decision paths, loaded with the same filters."""
    base = FilterEngine()
    actrie = ACTrieEngine()
    combined = CombinedRegexEngine()
    for name, texts in lines.items():
        filters = [Filter.parse(text) for text in texts]
        base.add_filters(filters, list_name=name)
        actrie.add_filters([Filter.parse(text) for text in texts], list_name=name)
        combined.add_filters([Filter.parse(text) for text in texts], list_name=name)
    snapshot_path = str(tmp_path / "engine.snap")
    write_snapshot(snapshot_path, base)
    restored = load_snapshot(snapshot_path).engine
    return {"buckets": base, "actrie": actrie, "combined": combined, "snapshot": restored}


def _assert_identical(engines, url: str, context: RequestContext) -> None:
    match_signatures = {
        name: _match_signature(engine.match(url, context))
        for name, engine in engines.items()
    }
    assert len(set(match_signatures.values())) == 1, (url, context, match_signatures)
    classify_signatures = {
        name: _classify_signature(engine.classify(url, context))
        for name, engine in engines.items()
    }
    assert len(set(classify_signatures.values())) == 1, (url, context, classify_signatures)


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(lines=_lists(), workload=_workload)
    def test_four_way_decision_identity(self, lines, workload, tmp_path_factory):
        engines = _build_engines(lines, tmp_path_factory.mktemp("snap"))
        for url, context in workload:
            _assert_identical(engines, url, context)

    @settings(max_examples=25, deadline=None)
    @given(lines=_lists(), workload=_workload)
    def test_snapshot_restores_every_matcher_identically(
        self, lines, workload, tmp_path_factory
    ):
        """One artifact, three matchers: decisions must not depend on backend."""
        base = FilterEngine()
        for name, texts in lines.items():
            base.add_filters([Filter.parse(t) for t in texts], list_name=name)
        path = str(tmp_path_factory.mktemp("snap") / "engine.snap")
        write_snapshot(path, base)
        engines = {
            matcher: load_snapshot(path, matcher=matcher).engine
            for matcher in ("buckets", "actrie", "combined")
        }
        engines["direct"] = base
        for url, context in workload:
            _assert_identical(engines, url, context)


class TestEcosystemDifferential:
    """The same four-way identity over realistic synthetic-ecosystem traffic."""

    def test_four_way_identity_on_ecosystem_pages(self, ecosystem, lists, tmp_path):
        from repro.web.page import build_page
        import random

        lines = {
            name: [f.text for f in lst.filters] for name, lst in lists.items()
        }
        engines = _build_engines(lines, tmp_path)
        rng = random.Random(23)
        publishers = [p for p in ecosystem.publishers if p.ad_networks]
        checked = 0
        for _ in range(20):
            page = build_page(rng.choice(publishers), ecosystem, rng)
            for obj in page.objects:
                _assert_identical(
                    engines, obj.url, RequestContext(obj.abp_type, page.page_url)
                )
                checked += 1
        assert checked > 400


# ---------------------------------------------------------------------------
# committed shrunk counterexamples (regression fixtures)
# ---------------------------------------------------------------------------

# Each entry is (filters-by-list, url, content_type, page_url) — minimal
# inputs that once produced a cross-backend divergence during harness
# development.  They run as plain assertions so the fix can never rot.
_REGRESSIONS = [
    # actrie host-bucket probe once indexed the empty host, diverging on
    # schemeless/hostless URLs against keywordless host filters.
    pytest.param(
        {"easylist": ["||ads.example^"]},
        "x", ContentType.OTHER, "",
        id="actrie-empty-host-probe",
    ),
    # combined's inner engine once ran without the keyword index, so a
    # URL matched by several filters attributed a *different* (equally
    # valid) filter than the bucketed path — same decision, wrong
    # identity, which breaks EasyList-vs-EasyPrivacy attribution.
    pytest.param(
        {"easylist": ["/ad/", "||ads.example^"], "easyprivacy": ["/track/"]},
        "http://ads.example/ad/track/f.gif", ContentType.IMAGE, "http://news.example/",
        id="combined-multi-match-attribution",
    ),
    # $document exceptions are page-sensitive: the snapshot must carry
    # page_sensitive_documents or restored engines silently stop
    # whitelisting whole pages.
    pytest.param(
        {"easylist": ["||ads.example^", "@@||news.example^$document"]},
        "http://ads.example/f.gif", ContentType.IMAGE, "http://news.example/",
        id="snapshot-document-exception",
    ),
    # $~third-party against an empty page_url: party-ness is undecidable,
    # every backend must fall the same way.
    pytest.param(
        {"easylist": ["||ads.example^$~third-party"]},
        "http://ads.example/f.gif", ContentType.IMAGE, "",
        id="first-party-option-empty-page",
    ),
]


class TestRegressions:
    @pytest.mark.parametrize("lines,url,content_type,page_url", _REGRESSIONS)
    def test_shrunk_counterexample(self, lines, url, content_type, page_url, tmp_path):
        engines = _build_engines(lines, tmp_path)
        _assert_identical(engines, url, RequestContext(content_type, page_url))
