"""Unit tests for repro.core.referrer_map (§3.1 page reconstruction)."""

from __future__ import annotations

from repro.core.referrer_map import ReferrerMap

_PAGE = "http://news.example/story.html"


class TestBasicChains:
    def test_direct_navigation_is_root(self):
        rmap = ReferrerMap()
        attribution = rmap.observe(_PAGE, None, looks_like_document=True)
        assert attribution.page_url == _PAGE
        assert attribution.is_page_root
        assert attribution.via == "root"

    def test_children_attach_to_page(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        child = rmap.observe(
            "http://static.news.example/a.css", _PAGE, looks_like_document=False
        )
        assert child.page_url == _PAGE
        assert not child.is_page_root

    def test_transitive_chain(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        script = "http://ads.example/tag.js"
        rmap.observe(script, _PAGE, looks_like_document=False)
        pixel = rmap.observe(
            "http://ads.example/pixel.gif", script, looks_like_document=False
        )
        assert pixel.page_url == _PAGE

    def test_unseen_referer_becomes_root(self):
        rmap = ReferrerMap()
        child = rmap.observe(
            "http://cdn.example/x.js", "http://unseen.example/page", looks_like_document=False
        )
        assert child.page_url == "http://unseen.example/page"

    def test_iframe_html_stays_in_page(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        iframe = rmap.observe(
            "http://ads.example/frame.html", _PAGE, looks_like_document=True
        )
        assert iframe.page_url == _PAGE
        assert not iframe.is_page_root


class TestLocationRepair:
    def test_redirect_followup_attaches(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        rmap.observe(
            "http://ads.example/click?x=1",
            _PAGE,
            looks_like_document=False,
            location="http://cdn.ads.example/banner.gif",
        )
        followup = rmap.observe(
            "http://cdn.ads.example/banner.gif", None, looks_like_document=False
        )
        assert followup.page_url == _PAGE
        assert followup.via == "location"

    def test_without_location_chain_breaks(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        rmap.observe("http://ads.example/click?x=1", _PAGE, looks_like_document=False)
        followup = rmap.observe(
            "http://cdn.ads.example/banner.gif", None, looks_like_document=False
        )
        assert followup.page_url == "http://cdn.ads.example/banner.gif"
        assert followup.via == "root"

    def test_pending_redirect_consumed_once(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        rmap.observe(
            "http://r.example/r", _PAGE, looks_like_document=False,
            location="http://t.example/x",
        )
        first = rmap.observe("http://t.example/x", None, looks_like_document=False)
        second = rmap.observe("http://t.example/x", None, looks_like_document=False)
        assert first.via == "location"
        assert second.via == "root"


class TestEmbeddedRepair:
    def test_embedded_url_attaches(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        rmap.observe(
            "http://r.example/go?redirect=http://target.example/ad.gif",
            _PAGE,
            looks_like_document=False,
        )
        followup = rmap.observe(
            "http://target.example/ad.gif", None, looks_like_document=False
        )
        assert followup.page_url == _PAGE
        assert followup.via == "embedded"

    def test_embedded_tracking_disabled(self):
        rmap = ReferrerMap(track_embedded=False)
        rmap.observe(_PAGE, None, looks_like_document=True)
        rmap.observe(
            "http://r.example/go?redirect=http://target.example/ad.gif",
            _PAGE,
            looks_like_document=False,
        )
        followup = rmap.observe(
            "http://target.example/ad.gif", None, looks_like_document=False
        )
        assert followup.via == "root"


class TestPruning:
    def test_prune_keeps_recent_entries(self):
        rmap = ReferrerMap()
        rmap.observe(_PAGE, None, looks_like_document=True)
        for index in range(100_001):
            rmap.observe(f"http://x.example/{index}", _PAGE, looks_like_document=False)
        # Recent attribution still resolvable.
        recent = rmap.page_of("http://x.example/100000")
        assert recent == _PAGE

    def test_page_of_unknown(self):
        assert ReferrerMap().page_of("http://nowhere.example/") is None
