"""Unit tests for repro.filterlist.filter (pattern compilation/matching)."""

from __future__ import annotations

import pytest

from repro.filterlist.filter import (
    ElementHidingRule,
    Filter,
    FilterKind,
    compile_pattern,
    extract_keywords,
)
from repro.filterlist.options import ContentType


def _matches(pattern: str, url: str, **kwargs) -> bool:
    return compile_pattern(pattern, **kwargs).search(url) is not None


class TestPatternCompilation:
    def test_plain_substring(self):
        assert _matches("/adserver/", "http://x.com/adserver/img.gif")
        assert not _matches("/adserver/", "http://x.com/content/img.gif")

    def test_wildcard(self):
        assert _matches("/banner/*/img", "http://x.com/banner/123/img.png")
        assert not _matches("/banner/*/img", "http://x.com/banner/123/script.js")

    def test_separator_matches_non_url_chars(self):
        assert _matches("/ads^", "http://x.com/ads?x=1")
        assert _matches("/ads^", "http://x.com/ads/")
        assert _matches("/ads^", "http://x.com/ads")  # end of URL
        assert not _matches("/ads^", "http://x.com/adserver")  # letter follows

    def test_start_anchor(self):
        assert _matches("|http://ads.", "http://ads.example.com/x")
        assert not _matches("|http://ads.", "http://www.example.com/http://ads.x")

    def test_end_anchor(self):
        assert _matches("swf|", "http://x.com/movie.swf")
        assert not _matches("swf|", "http://x.com/movie.swf?x=1")

    def test_domain_anchor(self):
        assert _matches("||ads.example.com^", "http://ads.example.com/x")
        assert _matches("||example.com^", "http://sub.example.com/x")
        assert _matches("||example.com^", "https://example.com/")
        assert not _matches("||example.com^", "http://badexample.com/")
        assert not _matches("||example.com^", "http://example.com.evil.net/")

    def test_case_insensitive_by_default(self):
        assert _matches("/ADS/", "http://x.com/ads/1")
        assert not _matches("/ADS/", "http://x.com/ads/1", match_case=True)

    def test_collapsed_wildcards(self):
        assert _matches("a***b", "http://x.com/a-and-b")


class TestKeywordExtraction:
    def test_simple(self):
        assert "adserver" in extract_keywords("/adserver/*")

    def test_skips_runs_adjacent_to_wildcard(self):
        # ABP's keyword regex requires non-* boundaries on both sides.
        assert extract_keywords("/ban*ner/") == []
        assert extract_keywords("/ban*ner/img/") == ["img"]

    def test_options_not_included(self):
        keywords = extract_keywords("/track.js$script,third-party")
        assert "script" not in keywords
        assert "third" not in keywords
        assert "track" in keywords

    def test_exception_marker_stripped(self):
        assert "gstatic" in extract_keywords("@@||gstatic.com^$document")

    def test_short_runs_skipped(self):
        assert extract_keywords("/a/*") == []


class TestFilterParse:
    def test_blocking_filter(self):
        filter_ = Filter.parse("||ads.example.com^$third-party", list_name="easylist")
        assert filter_.kind is FilterKind.BLOCKING
        assert filter_.options.third_party is True
        assert filter_.list_name == "easylist"

    def test_exception_filter(self):
        filter_ = Filter.parse("@@||good.example.com/player/$script")
        assert filter_.is_exception
        assert filter_.options.type_mask == ContentType.SCRIPT

    def test_dollar_in_pattern_not_options(self):
        # A trailing $ followed by a path-like string is not an option list.
        filter_ = Filter.parse("/x$/path")
        assert filter_.pattern == "/x$/path"

    def test_matches_respects_type(self):
        filter_ = Filter.parse("/ads/banner.$image")
        assert filter_.matches(
            "http://x.com/ads/banner.gif", ContentType.IMAGE, "x.com", third_party=False
        )
        assert not filter_.matches(
            "http://x.com/ads/banner.js", ContentType.SCRIPT, "x.com", third_party=False
        )

    def test_matches_respects_third_party(self):
        filter_ = Filter.parse("||ad.example^$third-party")
        assert filter_.matches(
            "http://ad.example/x", ContentType.IMAGE, "news.example", third_party=True
        )
        assert not filter_.matches(
            "http://ad.example/x", ContentType.IMAGE, "ad.example", third_party=False
        )

    def test_matches_respects_domain_option(self):
        filter_ = Filter.parse("/ads/serve/*$domain=news.example")
        assert filter_.matches(
            "http://news.example/ads/serve/1.js", ContentType.SCRIPT,
            "news.example", third_party=False,
        )
        assert not filter_.matches(
            "http://other.example/ads/serve/1.js", ContentType.SCRIPT,
            "other.example", third_party=False,
        )

    def test_document_exception_matching(self):
        filter_ = Filter.parse("@@||gstatic-like.com^$document")
        assert filter_.matches_document("http://cdn.gstatic-like.com/f.woff",
                                        "cdn.gstatic-like.com")
        assert not filter_.matches_document("http://other.com/", "other.com")
        blocking = Filter.parse("||x.com^")
        assert not blocking.matches_document("http://x.com/", "x.com")


class TestElementHiding:
    def test_generic_rule(self):
        rule = ElementHidingRule.parse("##.banner-ad-row")
        assert rule.selector == ".banner-ad-row"
        assert not rule.is_exception
        assert rule.applies_to("any.example")

    def test_domain_scoped_rule(self):
        rule = ElementHidingRule.parse("news.example,blog.example##.textad")
        assert rule.applies_to("news.example")
        assert rule.applies_to("sub.news.example")
        assert not rule.applies_to("other.example")

    def test_excluded_domain(self):
        rule = ElementHidingRule.parse("~vip.example##.ad")
        assert rule.applies_to("news.example")
        assert not rule.applies_to("vip.example")

    def test_exception_rule(self):
        rule = ElementHidingRule.parse("site.example#@#.ad")
        assert rule.is_exception

    def test_not_a_hiding_rule(self):
        with pytest.raises(ValueError):
            ElementHidingRule.parse("||plain.filter^")
